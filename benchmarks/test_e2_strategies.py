"""E2 — the strategy comparison the paper promised: registers, spill
operations, false dependences and scheduled cycles for the three phase
orderings, over the kernel suite and a random-block sweep.

Expected shape (recorded in EXPERIMENTS.md): with ample registers the
combined strategy matches the best makespan with zero false
dependences; alloc-first minimizes registers but pays in false
dependences and cycles; sched-first matches cycles but inflates
register demand.
"""

import pytest

from repro.machine.presets import two_unit_superscalar
from repro.pipeline.strategies import run_all_strategies
from repro.workloads import ALL_KERNELS, pressure_sweep, random_block

MACHINE = two_unit_superscalar()
REGISTERS = 16  # ample: isolates the phase-ordering effect


def comparison_rows(functions):
    rows = []
    for label, fn in functions:
        for result in run_all_strategies(fn, MACHINE, num_registers=REGISTERS):
            row = {"workload": label}
            row.update(result.as_row())
            rows.append(row)
    return rows


def test_e2_kernel_suite(benchmark, emit):
    functions = [(name, ALL_KERNELS[name]()) for name in sorted(ALL_KERNELS)]

    rows = benchmark.pedantic(
        comparison_rows, args=(functions,), rounds=1, iterations=1
    )

    emit("E2: strategy comparison on the kernel suite (r=16)", rows)

    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["strategy"]] = row
    for label, strategies in by_workload.items():
        pinter = strategies["pinter"]
        alloc_first = strategies["alloc-then-sched"]
        sched_first = strategies["sched-then-alloc"]
        # Theorem 1 regime: no spills, no false deps for the framework.
        assert pinter["false_deps"] == 0, label
        assert pinter["spill_ops"] == 0, label
        # And never slower than allocate-first.
        assert pinter["cycles"] <= alloc_first["cycles"], label
        # Schedule-first keeps cycles but not registers: it never beats
        # the combined framework on makespan here.
        assert pinter["cycles"] <= sched_first["cycles"] + 1, label


def test_e2_random_sweep(benchmark, emit):
    points = pressure_sweep(sizes=(12, 24), windows=(4, 10), seeds=(1, 2))
    functions = [(p.label, random_block(p.config)) for p in points]

    rows = benchmark.pedantic(
        comparison_rows, args=(functions,), rounds=1, iterations=1
    )

    emit("E2: strategy comparison on the random sweep (r=16)", rows)

    pinter_rows = [r for r in rows if r["strategy"] == "pinter"]
    alloc_rows = [r for r in rows if r["strategy"] == "alloc-then-sched"]
    assert all(r["false_deps"] == 0 for r in pinter_rows)
    # Aggregate shape: the framework wins or ties cycles on every point.
    for p_row, a_row in zip(pinter_rows, alloc_rows):
        assert p_row["cycles"] <= a_row["cycles"], p_row["workload"]
    # Alloc-first pays in false dependences somewhere in the sweep.
    assert sum(r["false_deps"] for r in alloc_rows) > 0
