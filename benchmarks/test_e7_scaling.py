"""E7 — construction-cost scaling.

The parallelizable interference graph costs a transitive closure plus a
complement — O(n^2)-ish per block.  This bench measures PIG
construction and the full allocator across block sizes, confirming the
approach stays practical at realistic block sizes.
"""

import time

import pytest

from repro.core.allocator import PinterAllocator
from repro.core.parallel_interference import build_parallel_interference_graph
from repro.machine.presets import two_unit_superscalar
from repro.workloads import RandomBlockConfig, random_block

MACHINE = two_unit_superscalar()

SIZES = (8, 16, 32, 64, 128, 256)


def test_e7_pig_construction_scaling(benchmark, emit):
    functions = {
        size: random_block(RandomBlockConfig(size=size, window=8, seed=size))
        for size in SIZES
    }

    def build_all():
        timings = []
        for size, fn in functions.items():
            start = time.perf_counter()
            pig = build_parallel_interference_graph(fn, MACHINE)
            elapsed = time.perf_counter() - start
            timings.append({
                "block size": size,
                "webs": len(pig.webs),
                "edges": pig.graph.number_of_edges(),
                "ms": round(elapsed * 1000, 2),
            })
        return timings

    rows = benchmark.pedantic(build_all, rounds=3, iterations=1)
    emit("E7: PIG construction scaling", rows)
    assert [row["block size"] for row in rows] == list(SIZES)
    # Edge count grows with block size (complement structure).
    assert rows[-1]["edges"] > rows[0]["edges"]


@pytest.mark.parametrize("size", [16, 64])
def test_e7_allocator_scaling(benchmark, size, emit):
    fn = random_block(RandomBlockConfig(size=size, window=8, seed=99))
    allocator = PinterAllocator(MACHINE, num_registers=16)

    outcome = benchmark(allocator.run, fn)

    emit(
        "E7b: full allocator at block size {}".format(size),
        [{
            "registers": outcome.registers_used,
            "cycles": outcome.total_cycles,
            "false_deps": len(outcome.false_dependences),
        }],
    )
    assert outcome.registers_used <= 16


def test_e7_largest_block(benchmark, emit):
    fn = random_block(RandomBlockConfig(size=128, window=10, seed=7))

    pig = benchmark(build_parallel_interference_graph, fn, MACHINE)

    emit(
        "E7c: 128-instruction block PIG",
        [{
            "webs": len(pig.webs),
            "edges": pig.graph.number_of_edges(),
            "parallelism degree": round(
                pig.false_graphs[0].parallelism_degree, 3
            ),
        }],
    )
    assert len(pig.webs) > 0
