"""F4 — Figure 4: the interference graph of Example 2 needs only three
registers — but a 3-register coloring necessarily destroys co-issue
options the machine offers (the paper: "there is no restriction to
assign the same register, for example, to operations S8 and S3 ...
thus preventing the possible parallel scheduling").
"""

from repro.pipeline.verify import count_false_dependences
from repro.regalloc.assignment import apply_assignment, make_assignment
from repro.regalloc.chaitin import chaitin_color, exact_chromatic_number
from repro.regalloc.interference import build_interference_graph
from repro.workloads import example2, example2_machine_model

FIG4_EDGES = sorted([
    ("s1", "s2"), ("s1", "s3"), ("s2", "s3"), ("s3", "s4"),
    ("s5", "s6"), ("s5", "s7"), ("s5", "s8"), ("s6", "s7"),
])


def test_figure4_interference_graph(benchmark, emit):
    fn = example2()
    ig = benchmark(build_interference_graph, fn)
    edges = sorted(
        tuple(sorted((str(a.register), str(b.register))))
        for a, b in ig.edge_list()
    )
    emit(
        "Figure 4: the interference graph of Example 2 (chi = 3)",
        [{"edge": "{{{}, {}}}".format(a, b)} for a, b in edges],
    )
    assert edges == FIG4_EDGES
    assert exact_chromatic_number(ig.graph) == 3


def test_figure4_three_register_coloring_costs_parallelism(benchmark, emit):
    """Every 3-register Chaitin allocation of Example 2 introduces at
    least one false dependence on the two-arithmetic-unit machine."""
    fn = example2()
    machine = example2_machine_model()

    def three_register_allocation():
        ig = build_interference_graph(fn)
        result = chaitin_color(ig.graph, 3)
        assert not result.has_spills
        assignment = make_assignment(ig, result.coloring)
        return apply_assignment(assignment)

    allocated = benchmark(three_register_allocation)
    violations = count_false_dependences(fn, allocated, machine)
    emit(
        "Figure 4 consequence: 3-register coloring of Example 2",
        [
            {"registers": 3, "false_dependences": violations}
        ],
    )
    assert violations >= 1
