"""E6 — the global/region extension (Section 3 of the paper).

Compares per-block against region-level operation on structured CFGs:
region scheduling exposes cross-block parallelism, and the global
parallelizable interference graph protects it through allocation.
"""

import pytest

from repro.core.allocator import PinterAllocator
from repro.core.parallel_interference import build_parallel_interference_graph
from repro.ir import equivalent
from repro.machine.presets import two_unit_superscalar
from repro.sched.global_scheduler import simulate_regions
from repro.sched.simulator import simulate_function
from repro.workloads import diamond_chain, figure6_diamond

MACHINE = two_unit_superscalar()


def test_e6_region_scheduling_gain(benchmark, emit):
    workloads = [
        ("diamond1", diamond_chain(1, block_size=6, seed=1)),
        ("diamond2", diamond_chain(2, block_size=6, seed=2)),
        ("diamond3", diamond_chain(3, block_size=8, seed=3)),
    ]

    def measure():
        rows = []
        for label, fn in workloads:
            per_block = simulate_function(fn, MACHINE).total_cycles
            per_region = simulate_regions(fn, MACHINE).total_cycles
            rows.append({
                "workload": label,
                "per-block cycles": per_block,
                "per-region cycles": per_region,
                "gain": per_block - per_region,
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("E6: per-block vs. region-level scheduling", rows)
    for row in rows:
        assert row["per-region cycles"] <= row["per-block cycles"]
    # The chained glue blocks offer real cross-block overlap somewhere.
    assert any(row["gain"] > 0 for row in rows)


def _two_straightline_blocks():
    """Two control-equivalent blocks whose instructions are mutually
    independent — the cross-block co-issue case only the region form
    can see."""
    from repro.ir.builder import FunctionBuilder

    fb = FunctionBuilder("straightline")
    a = fb.block("a", entry=True)
    x = a.load("x")
    x2 = a.add(x, 1)
    a.br("b")
    b = fb.block("b")
    y = b.fload("y")
    y2 = b.fadd(y, y)
    b.ret()
    fb.edge("a", "b")
    return fb.function(live_out=[x2, y2])


def test_e6_global_allocation_region_vs_block(benchmark, emit):
    """The global PIG (regions on) sees cross-block co-issue pairs the
    per-block form misses, at the price of extra edges."""
    fn = _two_straightline_blocks()

    def measure():
        with_regions = build_parallel_interference_graph(
            fn, MACHINE, use_regions=True
        )
        without = build_parallel_interference_graph(
            fn, MACHINE, use_regions=False
        )
        def stats(pig):
            return {
                "false_only": len(pig.false_only_edges()),
                "shared": len(pig.shared_edges()),
                "interference": len(pig.interference_edges()),
            }
        return stats(with_regions), stats(without)

    regional, blockwise = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "E6b: global PIG edge census",
        [
            dict(form="regions", **regional),
            dict(form="per-block", **blockwise),
        ],
    )
    # The region form strictly gains cross-block false edges here (the
    # fixed-point chain of block a can co-issue with the float chain
    # of block b), while the per-block form sees none.
    assert (
        regional["false_only"] + regional["shared"]
        > blockwise["false_only"] + blockwise["shared"]
    )


def test_e6_global_allocation_correct(benchmark, emit):
    fn = diamond_chain(3, block_size=6, seed=5)
    allocator = PinterAllocator(MACHINE, num_registers=10)

    outcome = benchmark(allocator.run, fn)

    emit(
        "E6c: global allocation of a 3-diamond CFG",
        [{
            "registers": outcome.registers_used,
            "spill_ops": outcome.spill_operations,
            "false_deps": len(outcome.false_dependences),
            "cycles": outcome.total_cycles,
        }],
    )
    assert outcome.false_dependences == []
    assert equivalent(fn, outcome.allocated_function)
