"""E4 — ablation of the h* spill metric and its edge weights
(Lemmas 2 and 3).

Compares, under pressure, the traditional h (false edges weighted 0)
against the paper's h* with the default Lemma 2/3 prices, measuring
spill traffic and final cycles over a workload bundle.
"""

import pytest

from repro.core.allocator import PinterAllocator
from repro.core.edge_weights import (
    DEFAULT_CONFIG,
    TRADITIONAL_CONFIG,
    EdgeWeightConfig,
)
from repro.machine.presets import two_unit_superscalar
from repro.utils.errors import AllocationError
from repro.workloads import RandomBlockConfig, fir_filter, matmul_tile, random_block

MACHINE = two_unit_superscalar()

CONFIGS = {
    "traditional-h": TRADITIONAL_CONFIG,
    "h*-default": DEFAULT_CONFIG,
    "h*-parallel-heavy": EdgeWeightConfig(1.0, 4.0, 5.0),
}


def bundle():
    fns = [fir_filter(6), matmul_tile(2)]
    fns += [random_block(RandomBlockConfig(size=24, window=12, seed=s))
            for s in (1, 2, 3)]
    return fns


def run_config(name, config, functions, r):
    total_spills = 0
    total_cycles = 0
    total_false = 0
    solved = 0
    for fn in functions:
        try:
            outcome = PinterAllocator(
                MACHINE, num_registers=r, weight_config=config
            ).run(fn)
        except AllocationError:
            continue
        solved += 1
        total_spills += outcome.spill_operations
        total_cycles += outcome.total_cycles
        total_false += len(outcome.false_dependences)
    return {
        "metric": name,
        "solved": solved,
        "spill_ops": total_spills,
        "false_deps": total_false,
        "cycles": total_cycles,
    }


def test_e4_hstar_ablation(benchmark, emit):
    functions = bundle()
    r = 6

    def run_all():
        return [
            run_config(name, config, functions, r)
            for name, config in CONFIGS.items()
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("E4: spill-metric ablation (r={})".format(r), rows)

    by_name = {row["metric"]: row for row in rows}
    # All variants solve the bundle.
    assert all(row["solved"] == len(functions) for row in rows)
    # The ablation axis exists: some measurable difference between the
    # traditional and weighted metric on this bundle.
    trad = by_name["traditional-h"]
    weighted = by_name["h*-default"]
    assert (
        trad["spill_ops"] != weighted["spill_ops"]
        or trad["cycles"] != weighted["cycles"]
        or trad["false_deps"] != weighted["false_deps"]
        or trad == weighted  # degenerate tie is acceptable, recorded
    )


def test_e4_edge_policy_ablation(benchmark, emit):
    """Node-local vs. global false-edge sacrifice under pressure."""
    functions = bundle()
    r = 5

    def run_policies():
        rows = []
        for policy in ("node", "global", "lazy"):
            total = {"policy": policy, "edges_sacrificed": 0,
                     "false_deps": 0, "cycles": 0, "solved": 0}
            for fn in functions:
                try:
                    outcome = PinterAllocator(
                        MACHINE, num_registers=r, edge_policy=policy
                    ).run(fn)
                except AllocationError:
                    continue
                total["solved"] += 1
                total["edges_sacrificed"] += outcome.parallelism_sacrificed
                total["false_deps"] += len(outcome.false_dependences)
                total["cycles"] += outcome.total_cycles
            rows.append(total)
        return rows

    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    emit("E4b: false-edge sacrifice policy ablation (r={})".format(r), rows)
    assert all(row["solved"] >= len(functions) - 1 for row in rows)
    # The lazy policy removes edges only when a selection-time color
    # actually violates them, so it retains strictly more parallelism
    # than the eager policies on this pressured bundle.
    by_policy = {row["policy"]: row for row in rows}
    assert (
        by_policy["lazy"]["edges_sacrificed"]
        < by_policy["node"]["edges_sacrificed"]
    )
