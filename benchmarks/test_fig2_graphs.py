"""F2 — Figure 2: (a) the data-dependence edges of Example 1's schedule
graph, (b) the constraint set E_t, and (c) the interference graph G_r.
"""

from repro.deps.datadeps import DependenceKind, register_dependences
from repro.deps.false_dependence import block_false_dependence_graph
from repro.regalloc.interference import build_interference_graph
from repro.workloads import example1, example1_machine_model

FIG2A_DATA_DEPS = sorted([("s1", "s4"), ("s1", "s5"), ("s2", "s3"), ("s3", "s5")])
FIG2B_ET = sorted([
    ("s1", "s3"), ("s1", "s4"), ("s1", "s5"), ("s2", "s3"),
    ("s2", "s5"), ("s3", "s5"), ("s4", "s5"),
])
FIG2B_EF = sorted([("s1", "s2"), ("s2", "s4"), ("s3", "s4")])
FIG2C_INTERFERENCE = sorted([
    ("s1", "s2"), ("s1", "s3"), ("s1", "s4"), ("s3", "s4"), ("s4", "s5"),
])


def _pair_names(fn, pairs):
    names = {i: str(i.dest) for i in fn.entry}
    return sorted(
        tuple(sorted((names[a], names[b]))) for a, b in pairs
    )


def test_figure2a_data_dependences(benchmark, emit):
    fn = example1()
    deps = benchmark(register_dependences, fn.entry.instructions)
    names = {i.uid: str(i.dest) for i in fn.entry}
    edges = sorted(
        (names[d.source.uid], names[d.target.uid])
        for d in deps
        if d.kind is DependenceKind.FLOW
    )
    emit(
        "Figure 2(a): data dependence edges of G_s, Example 1",
        [{"edge": "{} -> {}".format(a, b)} for a, b in edges],
    )
    assert edges == FIG2A_DATA_DEPS


def test_figure2b_et_set(benchmark, emit):
    fn = example1()
    machine = example1_machine_model()
    fdg = benchmark(block_false_dependence_graph, fn.entry, machine)
    et = _pair_names(fn, fdg.et_pairs)
    ef = _pair_names(fn, fdg.ef_pairs)
    emit(
        "Figure 2(b): the edges in the set E_t (machine edges "
        "{s1,s3} and {s4,s5} included)",
        [{"pair": "{{{}, {}}}".format(a, b)} for a, b in et],
    )
    assert et == FIG2B_ET
    assert ef == FIG2B_EF


def test_figure2c_interference_graph(benchmark, emit):
    fn = example1()
    ig = benchmark(build_interference_graph, fn)
    edges = sorted(
        tuple(sorted((str(a.register), str(b.register))))
        for a, b in ig.edge_list()
    )
    emit(
        "Figure 2(c): the interference graph G_r of Example 1",
        [{"edge": "{{{}, {}}}".format(a, b)} for a, b in edges],
    )
    assert edges == FIG2C_INTERFERENCE
