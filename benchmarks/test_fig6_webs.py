"""F6 — Figure 6: three live intervals of one variable reaching a
single use are combined into one web (right number of names), the
combination gets one register, and the merge costs no parallelism
(Claim 2: constituents of one web never execute in parallel).
"""

from repro.analysis.webs import build_webs
from repro.core.allocator import PinterAllocator
from repro.core.parallel_interference import build_parallel_interference_graph
from repro.ir import equivalent
from repro.machine.presets import two_unit_superscalar
from repro.workloads import figure6_diamond


def test_figure6_web_merge(benchmark, emit):
    fn = figure6_diamond()

    webs = benchmark(build_webs, fn)

    rows = [
        {
            "web": w.name,
            "register": str(w.register),
            "definitions": len(w.definitions),
            "uses": len(w.uses),
        }
        for w in webs
    ]
    emit("Figure 6: webs of the diamond CFG", rows)
    merged = [w for w in webs if len(w.definitions) > 1]
    assert len(merged) == 1
    assert str(merged[0].register) == "x"
    assert len(merged[0].definitions) == 2  # the two arm definitions


def test_figure6_claim2_no_parallelism_lost(benchmark, emit):
    """Claim 2: instructions whose definitions share a web may never
    execute in parallel — so the merged web has no internal false
    edge to lose, and allocation stays false-dependence-free."""
    fn = figure6_diamond()
    machine = two_unit_superscalar()
    allocator = PinterAllocator(machine, num_registers=4)

    outcome = benchmark(allocator.run, fn)

    allocated = outcome.allocated_function
    arm_defs = {
        str(i.dest)
        for name in ("left", "right")
        for i in allocated.block(name)
        if i.dests
    }
    emit(
        "Figure 6 consequence: one register for the combined interval",
        [
            {"arm definitions share": "/".join(sorted(arm_defs)),
             "false_dependences": len(outcome.false_dependences)}
        ],
    )
    assert len(arm_defs) == 1
    assert outcome.false_dependences == []
    assert equivalent(fn, allocated)


def test_figure6_pig_regions(benchmark, emit):
    fn = figure6_diamond()
    machine = two_unit_superscalar()
    pig = benchmark(build_parallel_interference_graph, fn, machine)
    emit(
        "Figure 6: scheduling regions of the diamond",
        [{"region": str(r)} for r in pig.regions],
    )
    # entry+join fuse; arms stay separate.
    assert len(pig.regions) == 3
