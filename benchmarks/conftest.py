"""Shared benchmark helpers: row formatting for the paper-style tables.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated figures/tables alongside the timing numbers.  Every bench
asserts its experiment's claims, so a plain ``pytest benchmarks/`` run
doubles as a reproduction check.
"""

from typing import Dict, List

import pytest


def format_table(title: str, rows: List[Dict[str, object]]) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "{}\n(no rows)".format(title)
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), max(len(str(r[h])) for r in rows))
        for h in headers
    }
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        lines.append(
            "  ".join(str(row[h]).ljust(widths[h]) for h in headers)
        )
    return "\n".join(lines)


@pytest.fixture
def emit():
    """Print a paper-style table (visible with ``-s``)."""

    def _emit(title: str, rows: List[Dict[str, object]]) -> None:
        print("\n" + format_table(title, rows) + "\n")

    return _emit
