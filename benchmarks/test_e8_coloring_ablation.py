"""E8 — coloring-engine ablation: pessimistic Chaitin vs. Briggs
optimistic coloring, on interference graphs and on the parallelizable
interference graph, across tight register counts.

Also compares the Goodman–Hsu IPS baseline ([10]) against the three
main strategies under pressure — the regime where the related-work
tradeoffs actually differ.
"""

import pytest

from repro.core.parallel_interference import build_parallel_interference_graph
from repro.machine.presets import two_unit_superscalar
from repro.pipeline.strategies import extended_strategies
from repro.regalloc.briggs import briggs_color
from repro.regalloc.chaitin import chaitin_color
from repro.regalloc.interference import build_interference_graph
from repro.utils.errors import AllocationError
from repro.workloads import (
    ALL_KERNELS,
    RandomBlockConfig,
    random_block,
)

MACHINE = two_unit_superscalar()


def spill_counts(graph, r_values):
    rows = []
    for r in r_values:
        try:
            chaitin_spills = len(chaitin_color(graph, r).spilled)
        except AllocationError:
            chaitin_spills = "-"
        try:
            briggs_spills = len(briggs_color(graph, r).spilled)
        except AllocationError:
            briggs_spills = "-"
        rows.append({
            "r": r,
            "chaitin spills": chaitin_spills,
            "briggs spills": briggs_spills,
        })
    return rows


def test_e8_briggs_vs_chaitin_on_ig(benchmark, emit):
    fn = random_block(RandomBlockConfig(size=30, window=14, seed=21))
    ig = build_interference_graph(fn)

    rows = benchmark.pedantic(
        spill_counts, args=(ig.graph, range(2, 9)), rounds=1, iterations=1
    )
    emit("E8: Chaitin vs. Briggs spill candidates (interference graph)", rows)
    for row in rows:
        if row["chaitin spills"] != "-" and row["briggs spills"] != "-":
            assert row["briggs spills"] <= row["chaitin spills"]


def test_e8_briggs_vs_chaitin_on_pig(benchmark, emit):
    fn = random_block(RandomBlockConfig(size=30, window=14, seed=22))
    pig = build_parallel_interference_graph(fn, MACHINE)

    rows = benchmark.pedantic(
        spill_counts, args=(pig.graph, range(3, 10)), rounds=1, iterations=1
    )
    emit("E8b: Chaitin vs. Briggs on the PIG", rows)
    gains = sum(
        1
        for row in rows
        if row["chaitin spills"] != "-"
        and row["briggs spills"] != "-"
        and row["briggs spills"] < row["chaitin spills"]
    )
    # optimism should win at least once across the sweep
    assert gains >= 1


def test_e8_four_way_strategy_pressure(benchmark, emit):
    """All four strategies (incl. IPS) under pressure (r=8)."""
    workloads = [(name, ALL_KERNELS[name]()) for name in ("dot4", "mm2", "estrin7")]

    def run():
        rows = []
        for label, fn in workloads:
            for strategy in extended_strategies():
                try:
                    result = strategy.run(fn, MACHINE, num_registers=8)
                except AllocationError:
                    continue
                row = {"workload": label}
                row.update(result.as_row())
                rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("E8c: four-way comparison under pressure (r=8)", rows)
    strategies = {row["strategy"] for row in rows}
    assert "goodman-hsu-ips" in strategies
    # all strategies completed on all three workloads
    assert len(rows) == 12
