"""F5 — Figure 5: Example 2 on the parallelizable interference graph
needs four registers; the paper's concrete assignment is reproduced and
validated (proper on the PIG, zero false dependences).
"""

from repro.core.allocator import PinterAllocator
from repro.core.parallel_interference import build_parallel_interference_graph
from repro.ir import equivalent
from repro.pipeline.verify import count_false_dependences
from repro.regalloc.chaitin import exact_chromatic_number
from repro.workloads import (
    apply_name_mapping,
    example2,
    example2_machine_model,
    figure5_mapping,
)


def test_figure5_pig_needs_four(benchmark, emit):
    fn = example2()
    machine = example2_machine_model()
    pig = benchmark(build_parallel_interference_graph, fn, machine)
    chi = exact_chromatic_number(pig.graph)
    emit(
        "Figure 5 premise: chromatic numbers of Example 2's graphs",
        [
            {"graph": "interference G_r",
             "chi": exact_chromatic_number(pig.interference.graph)},
            {"graph": "parallelizable G", "chi": chi},
        ],
    )
    assert chi == 4


def test_figure5_paper_assignment_is_valid(benchmark, emit):
    fn = example2()
    machine = example2_machine_model()

    allocated = benchmark(apply_name_mapping, fn, figure5_mapping())

    violations = count_false_dependences(fn, allocated, machine)
    emit(
        "Figure 5: the paper's 4-register assignment of Example 2",
        [{"instruction": str(i)} for i in allocated.instructions()],
    )
    assert violations == 0
    assert equivalent(fn, allocated)
    registers = {
        str(r)
        for i in allocated.instructions()
        for r in list(i.defs()) + list(i.uses())
    }
    assert len(registers) == 4


def test_figure5_allocator_matches(benchmark, emit):
    """Our combined allocator independently finds a 4-register,
    zero-false-dependence allocation."""
    fn = example2()
    machine = example2_machine_model()
    allocator = PinterAllocator(machine, num_registers=4, preschedule=False)

    outcome = benchmark(allocator.run, fn)

    emit(
        "Figure 5 (reproduced by the allocator)",
        [
            {"instruction": str(i)}
            for i in outcome.allocated_function.instructions()
        ],
    )
    assert outcome.registers_used == 4
    assert outcome.false_dependences == []
    assert equivalent(fn, outcome.allocated_function)
