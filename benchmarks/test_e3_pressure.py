"""E3 — register-pressure sweep: the Section 4 regime.

As r shrinks below chi(PIG) the combined coloring first sheds false
edges (trading parallelism, no memory traffic), and only below chi(IG)
does it spill.  The sweep records registers, sacrificed edges, spill
operations, false dependences and cycles per r.
"""

import pytest

from repro.core.allocator import PinterAllocator
from repro.core.parallel_interference import build_parallel_interference_graph
from repro.machine.presets import two_unit_superscalar
from repro.regalloc.chaitin import greedy_chromatic_upper_bound
from repro.utils.errors import AllocationError
from repro.workloads import dot_product, fir_filter

MACHINE = two_unit_superscalar()


def sweep(fn, r_values):
    rows = []
    for r in r_values:
        try:
            outcome = PinterAllocator(MACHINE, num_registers=r).run(fn)
        except AllocationError:
            rows.append({
                "r": r, "registers": "-", "edges_sacrificed": "-",
                "spill_ops": "-", "false_deps": "-", "cycles": "infeasible",
            })
            continue
        rows.append({
            "r": r,
            "registers": outcome.registers_used,
            "edges_sacrificed": outcome.parallelism_sacrificed,
            "spill_ops": outcome.spill_operations,
            "false_deps": len(outcome.false_dependences),
            "cycles": outcome.total_cycles,
        })
    return rows


def test_e3_pressure_sweep_dot(benchmark, emit):
    fn = dot_product(6)
    pig = build_parallel_interference_graph(fn, MACHINE)
    chi_hint = greedy_chromatic_upper_bound(pig.graph)

    rows = benchmark.pedantic(
        sweep, args=(fn, list(range(3, 13))), rounds=1, iterations=1
    )

    emit(
        "E3: pressure sweep on dot6 (greedy chi(PIG) = {})".format(chi_hint),
        rows,
    )
    feasible = [r for r in rows if r["cycles"] != "infeasible"]
    assert feasible
    # With plenty of registers: clean allocation.
    top = feasible[-1]
    assert top["edges_sacrificed"] == 0
    assert top["false_deps"] == 0
    # Somewhere in the sweep pressure bites: edges get sacrificed or
    # spills appear.
    assert any(
        row["edges_sacrificed"] not in (0, "-") or row["spill_ops"] not in (0, "-")
        for row in feasible
    )
    # Cycles are monotone-ish: the most constrained feasible point is
    # no faster than the unconstrained one.
    assert feasible[0]["cycles"] >= top["cycles"]


def test_e3_pressure_sweep_fir(benchmark, emit):
    fn = fir_filter(6)

    rows = benchmark.pedantic(
        sweep, args=(fn, [4, 6, 8, 10, 12, 14]), rounds=1, iterations=1
    )

    emit("E3: pressure sweep on fir6", rows)
    feasible = [r for r in rows if r["cycles"] != "infeasible"]
    # fir6 keeps 12 values live: low r must spill.
    low = feasible[0]
    assert low["spill_ops"] > 0
    high = feasible[-1]
    assert high["spill_ops"] == 0 and high["false_deps"] == 0
    assert low["cycles"] >= high["cycles"]
