"""F1 — Figure 1: the dependence edges of Example 2's schedule graph.

Regenerates the exact edge list the paper draws and benchmarks schedule
graph construction.
"""

from repro.deps.schedule_graph import block_schedule_graph
from repro.workloads import example2, example2_machine_model

#: Figure 1's edges, as drawn in the paper.
FIGURE1_EDGES = sorted([
    ("s1", "s3"), ("s2", "s3"),
    ("s1", "s4"), ("s2", "s4"),
    ("s3", "s5"), ("s4", "s5"),
    ("s6", "s8"), ("s7", "s8"),
    ("s5", "s9"), ("s8", "s9"),
])


def test_figure1_schedule_graph(benchmark, emit):
    fn = example2()
    machine = example2_machine_model()

    sg = benchmark(block_schedule_graph, fn.entry, machine)

    names = {i: str(i.dest) for i in fn.entry}
    edge_rows = sorted(
        ((names[u], names[v]), sg.delay(u, v)) for u, v in sg.edges()
    )
    emit(
        "Figure 1: dependence edges of the schedule graph of Example 2",
        [
            {"edge": "{} -> {}".format(a, b), "delay": delay}
            for (a, b), delay in edge_rows
        ],
    )
    assert [edge for edge, _delay in edge_rows] == FIGURE1_EDGES
