"""E1 — the Example 1 headline tradeoff.

Naive reuse (allocation (c)) introduces a false dependence between the
second and fourth instructions, destroying their co-issue option; the
combined allocator finds a 3-register allocation with no false
dependence and a makespan at least as good.
"""

from repro.core.allocator import PinterAllocator
from repro.deps.schedule_graph import block_schedule_graph
from repro.deps.transitive import ordered_pair, transitive_closure_pairs
from repro.pipeline.verify import count_false_dependences
from repro.sched.simulator import simulate_function
from repro.workloads import (
    apply_name_mapping,
    example1,
    example1_machine_model,
    example1_naive_mapping,
)


def test_e1_headline_tradeoff(benchmark, emit):
    fn = example1()
    machine = example1_machine_model()
    naive = apply_name_mapping(fn, example1_naive_mapping())
    allocator = PinterAllocator(machine, num_registers=3, preschedule=False)

    outcome = benchmark(allocator.run, fn)

    def coissue_2_4(program):
        sg = block_schedule_graph(program.entry, machine=machine)
        i2 = program.entry.instructions[1]
        i4 = program.entry.instructions[3]
        return ordered_pair(i2, i4) not in transitive_closure_pairs(sg)

    naive_cycles = simulate_function(naive, machine).total_cycles
    rows = [
        {
            "allocation": "naive (paper (c))",
            "registers": 3,
            "false_deps": count_false_dependences(fn, naive, machine),
            "instr 2&4 co-issueable": coissue_2_4(naive),
            "cycles": naive_cycles,
        },
        {
            "allocation": "combined (PIG coloring)",
            "registers": outcome.registers_used,
            "false_deps": len(outcome.false_dependences),
            "instr 2&4 co-issueable": coissue_2_4(
                outcome.allocated_function
            ),
            "cycles": outcome.total_cycles,
        },
    ]
    emit("E1: Example 1 — naive reuse vs. the combined framework", rows)

    assert rows[0]["false_deps"] == 1
    assert rows[1]["false_deps"] == 0
    assert rows[0]["instr 2&4 co-issueable"] is False
    assert rows[1]["instr 2&4 co-issueable"] is True
    assert outcome.registers_used == 3
    assert outcome.total_cycles <= naive_cycles
