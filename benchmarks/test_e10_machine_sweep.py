"""E10 — machine-width sweep: how the machine shapes the graph.

The framework's register demand is machine-dependent by construction:
"the more edges are present in [E_t] the better the results will be" —
a narrower machine has more contention edges, hence fewer false edges,
hence a sparser parallelizable interference graph and fewer registers.
On a single-issue machine E_f is empty and chi(PIG) = chi(IG).

This sweep measures |E_f|, the PIG edge count, the registers the
combined allocator actually uses, and the scheduled cycles for each
kernel across four machine widths.
"""

import pytest

from repro.core import PinterAllocator, build_parallel_interference_graph
from repro.deps import block_false_dependence_graph
from repro.machine.presets import (
    rs6000,
    single_issue,
    two_unit_superscalar,
    wide_issue,
)
from repro.workloads import ALL_KERNELS

MACHINES = [
    ("single-issue", single_issue),
    ("two-unit", two_unit_superscalar),
    ("rs6000", rs6000),
    ("wide-2x", lambda: wide_issue(fixed=2, floats=2, memory=2, issue_width=6)),
]

KERNELS = ("dot4", "stencil3", "estrin7")


def sweep_rows():
    rows = []
    for kernel in KERNELS:
        for label, factory in MACHINES:
            fn = ALL_KERNELS[kernel]()
            machine = factory()
            fdg = block_false_dependence_graph(fn.entry, machine)
            pig = build_parallel_interference_graph(fn, machine)
            outcome = PinterAllocator(
                machine, num_registers=16, preschedule=False
            ).run(fn)
            rows.append({
                "kernel": kernel,
                "machine": label,
                "|E_f|": len(fdg.ef_pairs),
                "PIG edges": pig.graph.number_of_edges(),
                "registers": outcome.registers_used,
                "cycles": outcome.total_cycles,
                "false_deps": len(outcome.false_dependences),
            })
    return rows


def test_e10_machine_width_sweep(benchmark, emit):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    emit("E10: machine-width sweep (r=16, input order)", rows)

    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row["kernel"], {})[row["machine"]] = row
    for kernel, machines in by_kernel.items():
        narrow = machines["single-issue"]
        wide = machines["wide-2x"]
        # E_f grows monotonically from single-issue (empty) to wide.
        assert narrow["|E_f|"] == 0, kernel
        assert wide["|E_f|"] >= machines["two-unit"]["|E_f|"], kernel
        # Register demand never shrinks as the machine widens.
        assert wide["registers"] >= narrow["registers"], kernel
        # Cycles never grow as the machine widens.
        assert wide["cycles"] <= narrow["cycles"], kernel
        # Theorem 1 holds on every machine.
        assert all(m["false_deps"] == 0 for m in machines.values()), kernel


def test_e10_single_issue_pig_equals_ig(benchmark, emit):
    """Degenerate case: on a single-issue machine the PIG adds nothing
    over the interference graph — the framework collapses to Chaitin."""
    machine = single_issue()

    def measure():
        rows = []
        for kernel in KERNELS:
            fn = ALL_KERNELS[kernel]()
            pig = build_parallel_interference_graph(fn, machine)
            rows.append({
                "kernel": kernel,
                "PIG edges": pig.graph.number_of_edges(),
                "IG edges": pig.interference.graph.number_of_edges(),
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("E10b: single-issue degenerate case", rows)
    for row in rows:
        assert row["PIG edges"] == row["IG edges"]
