"""F3 — Figure 3: the parallelizable interference graph of Example 1
and a 3-register allocation without false dependences.
"""

from repro.core.allocator import PinterAllocator
from repro.core.parallel_interference import build_parallel_interference_graph
from repro.ir import equivalent
from repro.regalloc.chaitin import exact_chromatic_number
from repro.workloads import example1, example1_machine_model

FIG3_PIG_EDGES = sorted([
    ("s1", "s2"), ("s1", "s3"), ("s1", "s4"),
    ("s2", "s4"), ("s3", "s4"), ("s4", "s5"),
])


def test_figure3_pig_edges(benchmark, emit):
    fn = example1()
    machine = example1_machine_model()
    pig = benchmark(build_parallel_interference_graph, fn, machine)
    edges = sorted(
        tuple(sorted((str(a.register), str(b.register))))
        for a, b in pig.all_edges()
    )
    emit(
        "Figure 3(a): the parallelizable interference graph of Example 1",
        [
            {
                "edge": "{{{}, {}}}".format(a, b),
                "origin": pig.origin(
                    pig.interference.web_by_register_name(a),
                    pig.interference.web_by_register_name(b),
                ).name,
            }
            for a, b in edges
        ],
    )
    assert edges == FIG3_PIG_EDGES
    assert exact_chromatic_number(pig.graph) == 3


def test_figure3_allocation(benchmark, emit):
    """The paper's possible register allocation: 3 registers, no false
    dependence, semantics preserved."""
    fn = example1()
    machine = example1_machine_model()
    allocator = PinterAllocator(machine, num_registers=3, preschedule=False)

    outcome = benchmark(allocator.run, fn)

    emit(
        "Figure 3(b): a 3-register allocation of Example 1",
        [
            {"instruction": str(i)}
            for i in outcome.allocated_function.instructions()
        ],
    )
    assert outcome.registers_used == 3
    assert outcome.false_dependences == []
    assert outcome.spill_rounds == 0
    assert equivalent(fn, outcome.allocated_function)
