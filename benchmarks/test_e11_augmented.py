"""E11 — the augmented graph as a scheduler's availability relation.

The paper's augmented parallelizable interference graph exists so that
"at each node v the edges {v, u} ∈ E_f ∩ E provide the list of
available instructions (with v) as used in list scheduling algorithms
such as in [9]".  This bench runs the E_f-driven scheduler against the
classic Gibbons–Muchnick list scheduler across the kernels, asserting
(a) every co-issued pair is an E_f pair, and (b) makespans match the
classic scheduler's (the availability information is complete).
"""

import pytest

from repro.deps import (
    block_false_dependence_graph,
    block_schedule_graph,
    ordered_pair,
)
from repro.machine.presets import two_unit_superscalar
from repro.sched import augmented_schedule, list_schedule
from repro.workloads import ALL_KERNELS

MACHINE = two_unit_superscalar()


def test_e11_augmented_vs_classic(benchmark, emit):
    def run_all():
        rows = []
        for name in sorted(ALL_KERNELS):
            fn = ALL_KERNELS[name]()
            sg = block_schedule_graph(fn.entry, machine=MACHINE)
            fdg = block_false_dependence_graph(fn.entry, MACHINE)
            augmented = augmented_schedule(sg, fdg, MACHINE)
            classic = list_schedule(sg, MACHINE)
            coissues = augmented.parallel_pairs()
            rows.append({
                "kernel": name,
                "classic cycles": classic.makespan,
                "augmented cycles": augmented.makespan,
                "co-issued pairs": len(coissues),
                "all pairs in E_f": all(
                    ordered_pair(a, b) in fdg.ef_pairs for a, b in coissues
                ),
            })
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("E11: E_f-driven scheduling vs. classic list scheduling", rows)
    for row in rows:
        assert row["all pairs in E_f"], row["kernel"]
        assert row["augmented cycles"] <= row["classic cycles"] + 2, row["kernel"]
    # the availability relation is complete: on most kernels the
    # makespans are identical.
    identical = sum(
        1 for row in rows
        if row["augmented cycles"] == row["classic cycles"]
    )
    assert identical >= len(rows) - 2
