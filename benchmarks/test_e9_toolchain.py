"""E9 — toolchain extensions: optimizer (LVN/copy-prop/DCE) and mov
coalescing, measured end to end on frontend-compiled programs.

Beyond the paper's scope, but exactly what a production adoption of
the framework would run: source → optimize → combined allocator
(+ coalescing) → cycles.
"""

import pytest

from repro.core import PinterAllocator
from repro.frontend import compile_source
from repro.ir import run_function
from repro.machine.presets import two_unit_superscalar
from repro.opt import optimize
from repro.utils.errors import AllocationError
from repro.workloads import SourceFuzzConfig, random_input_memory, random_source

MACHINE = two_unit_superscalar()

PROGRAMS = {
    "poly": (
        "input x;"
        "y = ((x * x) * x) + 3 * (x * x) + 3 * x + 1;"
        "output y;"
    ),
    "redundant": (
        "input a, b;"
        "p = (a + b) * (a + b);"
        "q = (a + b) * (a + b);"
        "r = p + q + 0;"
        "s = r * 1;"
        "output s;"
    ),
    "loopsum": (
        "input n;"
        "s = 0; i = 0;"
        "while (i < n) { s = s + i * 4; i = i + 1; }"
        "output s;"
    ),
    "branchy": (
        "input a, b;"
        "if (a > b) { m = a; } else { m = b; }"
        "if (m > 10) { m = m - 10; } else { m = m + 1; }"
        "output m;"
    ),
}


def run_toolchain(source, do_optimize, do_coalesce, registers=10):
    fn = compile_source(source)
    if do_optimize:
        optimize(fn)
    outcome = PinterAllocator(
        MACHINE, num_registers=registers, coalesce=do_coalesce
    ).run(fn)
    instructions = sum(
        len(b) for b in outcome.allocated_function.blocks()
    )
    return {
        "instructions": instructions,
        "cycles": outcome.total_cycles,
        "registers": outcome.registers_used,
        "movs_removed": outcome.identity_moves_removed,
        "false_deps": len(outcome.false_dependences),
    }


def test_e9_optimizer_and_coalescing(benchmark, emit):
    def run_matrix():
        rows = []
        for name, source in PROGRAMS.items():
            baseline = run_toolchain(source, False, False)
            full = run_toolchain(source, True, True)
            rows.append({
                "program": name,
                "instrs (raw)": baseline["instructions"],
                "instrs (opt+coalesce)": full["instructions"],
                "cycles (raw)": baseline["cycles"],
                "cycles (opt+coalesce)": full["cycles"],
                "movs removed": full["movs_removed"],
            })
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    emit("E9: optimizer + coalescing, end to end", rows)
    for row in rows:
        assert row["instrs (opt+coalesce)"] <= row["instrs (raw)"]
        assert row["cycles (opt+coalesce)"] <= row["cycles (raw)"]
    # the redundancy-heavy program shrinks strictly.
    redundant = next(r for r in rows if r["program"] == "redundant")
    assert redundant["instrs (opt+coalesce)"] < redundant["instrs (raw)"]


def test_e9_correctness_on_fuzzed_sources(benchmark, emit):
    """The toolchain computes identical outputs with and without the
    extensions, over a seeded fuzz corpus."""
    configs = [SourceFuzzConfig(seed=s, num_statements=8) for s in range(8)]

    def run_corpus():
        checked = 0
        for config in configs:
            source = random_source(config)
            fn_plain = compile_source(source)
            reference = fn_plain.copy()
            try:
                plain = PinterAllocator(MACHINE, num_registers=12).run(fn_plain)
                fn_full = compile_source(source)
                optimize(fn_full)
                full = PinterAllocator(
                    MACHINE, num_registers=12, coalesce=True
                ).run(fn_full)
            except AllocationError:
                continue
            memory = random_input_memory(config, 0)
            expected = run_function(reference, dict(memory)).live_out_values
            assert run_function(
                plain.allocated_function, dict(memory)
            ).live_out_values == expected
            assert run_function(
                full.allocated_function, dict(memory)
            ).live_out_values == expected
            checked += 1
        return checked

    checked = benchmark.pedantic(run_corpus, rounds=1, iterations=1)
    emit(
        "E9b: fuzz corpus equivalence",
        [{"programs checked": checked, "of": len(configs)}],
    )
    assert checked >= len(configs) - 1
