"""E5 — ablation of the EP pre-scheduling pass.

"Since the interference graph of the code uses the sequential ordering
of the instructions we will add a preliminary scheduling heuristic for
selecting one such order."  On adversarially-ordered inputs (all loads
first, maximizing simultaneous live ranges), the allocator with
pre-scheduling should need no more registers/spills than without, at
equal or better cycles.
"""

import pytest

from repro.core.allocator import PinterAllocator
from repro.machine.presets import two_unit_superscalar
from repro.utils.errors import AllocationError
from repro.workloads import RandomBlockConfig, adversarial_serial_order

MACHINE = two_unit_superscalar()


def run_pair(fn, r):
    results = {}
    for label, flag in (("ep-preschedule", True), ("input-order", False)):
        try:
            outcome = PinterAllocator(
                MACHINE, num_registers=r, preschedule=flag
            ).run(fn)
            results[label] = {
                "order": label,
                "registers": outcome.registers_used,
                "spill_ops": outcome.spill_operations,
                "false_deps": len(outcome.false_dependences),
                "cycles": outcome.total_cycles,
            }
        except AllocationError:
            results[label] = {
                "order": label, "registers": "-", "spill_ops": "-",
                "false_deps": "-", "cycles": "infeasible",
            }
    return results


def test_e5_preschedule_ablation(benchmark, emit):
    seeds = (3, 5, 8, 13)
    r = 8

    def run_sweep():
        rows = []
        for seed in seeds:
            fn = adversarial_serial_order(
                RandomBlockConfig(size=20, window=10, seed=seed)
            )
            results = run_pair(fn, r)
            for label in ("ep-preschedule", "input-order"):
                row = {"seed": seed}
                row.update(results[label])
                rows.append(row)
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("E5: EP pre-scheduling ablation on adversarial orders (r=8)", rows)

    total = {"ep-preschedule": 0, "input-order": 0}
    for row in rows:
        if row["cycles"] != "infeasible":
            total[row["order"]] += row["cycles"]
    # Aggregate cycles with pre-scheduling are competitive (within 10%).
    assert total["ep-preschedule"] <= total["input-order"] * 1.10


def test_e5_ep_order_is_schedulable_order(benchmark, emit):
    """The EP linear order itself is already a near-greedy schedule:
    simulating the prescheduled code in strict program order should be
    close to the list scheduler's makespan."""
    from repro.sched.prescheduler import preschedule_function
    from repro.sched.simulator import simulate_function

    fn = adversarial_serial_order(RandomBlockConfig(size=24, window=12, seed=2))

    def measure():
        work = fn.copy()
        preschedule_function(work, MACHINE)
        inorder = simulate_function(work, MACHINE, reorder=False).total_cycles
        reordered = simulate_function(work, MACHINE, reorder=True).total_cycles
        original_inorder = simulate_function(
            fn, MACHINE, reorder=False
        ).total_cycles
        return inorder, reordered, original_inorder

    inorder, reordered, original_inorder = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "E5b: EP order quality (in-order issue of the EP order)",
        [{
            "original in-order": original_inorder,
            "EP-order in-order": inorder,
            "list-scheduled": reordered,
        }],
    )
    assert inorder <= original_inorder
    assert reordered <= inorder
