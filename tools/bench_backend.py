#!/usr/bin/env python
"""Benchmark the compact back-end kernels against their reference
twins, phase by phase, as bench_compare-compatible rows.

Workloads:

* ``backend-n<SIZE>`` — one large straight-line block (default n=2048,
  operand window 96: wide webs, a dense conflict graph, heavy spill
  pressure at r=8).  Phases, each timed compact-vs-reference
  *interleaved* over ``--repeats`` rounds keeping per-phase minima
  (so a load spike hits both sides instead of skewing the ratio):

  - ``interference_compact`` / ``interference_reference`` —
    :func:`build_compact_interference` vs
    :func:`build_interference_graph` (same webs, same edges; checked
    bit-identical before any timing is trusted);
  - ``color_compact`` / ``color_reference`` — the worklist bitmask
    colorer vs the networkx Chaitin round at r=8 (same spill order,
    same coloring, checked);
  - ``sched_compact`` / ``sched_reference`` — the array-based
    augmented scheduler vs the dict/graph one on the same schedule
    graph + E_f (same cycle map, checked).

* ``backend-cfg-d<D>`` — a diamond chain with a real CFG fixpoint.
  Phases ``liveness_rows`` / ``liveness_sets`` compare the packed
  bitrow solver to the frozenset solver (results checked equal).  No
  floor is enforced on liveness: at these function sizes the fixpoint
  is microseconds either way — the representation exists to feed the
  interference kernel its masks, not to win this row.

The PR-10 acceptance floor (``--check``, and the committed
``BENCH_pr10.json`` via ``make bench-backend-check``): compact must be
>= 3x faster than reference on BOTH the interference and coloring
phases of the large-block workload.

Run:  PYTHONPATH=src python tools/bench_backend.py -o BENCH_backend_current.json
      PYTHONPATH=src python tools/bench_backend.py --check
Exit: 0 on success (and, with --check, floors hold), 1 otherwise.
"""

import argparse
import json
import sys
import time

from repro.analysis.liveness import live_variables, live_variables_rows
from repro.deps.false_dependence import block_false_dependence_graph
from repro.deps.schedule_graph import block_schedule_graph
from repro.machine.presets import two_unit_superscalar
from repro.regalloc.chaitin import chaitin_color
from repro.regalloc.compact import (
    build_compact_interference,
    compact_chaitin_color,
)
from repro.regalloc.interference import build_interference_graph
from repro.sched.augmented import augmented_schedule, compact_augmented_schedule
from repro.workloads import RandomBlockConfig, random_block
from repro.workloads.generator import diamond_chain

#: PR-10 acceptance floor: compact must be >= 3x faster than reference
#: on the interference and coloring phases of the large block.
COMPACT_OVER_REFERENCE_MIN = 3.0

#: Registers for the coloring phase — low enough that the dense block
#: spills hard, exercising the victim scan, not just simplification.
COLORS = 8


def timed(thunk):
    started = time.perf_counter()
    result = thunk()
    return time.perf_counter() - started, result


def _cycles(schedule):
    return {instr.uid: cycle for instr, cycle in schedule.cycle_of.items()}


def bench_large_block(size, window, repeats, rows):
    """Interference + coloring + scheduling on one dense block.

    Returns {phase_pair_name: speedup} for the floor check.
    """
    machine = two_unit_superscalar()
    fn = random_block(
        RandomBlockConfig(size=size, seed=size, window=window,
                          load_fraction=0.3)
    )
    n_instrs = sum(len(b) for b in fn.blocks())
    workload = "backend-n{}".format(size)

    # -- equivalence first: timings of diverging kernels are garbage.
    reference = build_interference_graph(fn)
    compact = build_compact_interference(fn)
    ref_edges = {
        tuple(sorted((a.index, b.index))) for a, b in reference.edge_list()
    }
    if set(
        tuple(sorted(e)) for e in compact.graph.edge_list()
    ) != ref_edges:
        raise SystemExit(
            "bench_backend: compact and reference interference disagree "
            "on {} — timings would be meaningless".format(workload)
        )
    ref_color = chaitin_color(reference.graph, COLORS)
    compact_color = compact_chaitin_color(compact.graph, COLORS)
    if (
        [w.index for w in ref_color.spilled]
        != compact_color.spilled
        or {w.index: c for w, c in ref_color.coloring.items()}
        != {
            i: c
            for i, c in enumerate(compact_color.colors)
            if c is not None
        }
    ):
        raise SystemExit(
            "bench_backend: compact and reference coloring disagree on "
            "{} — timings would be meaningless".format(workload)
        )
    block = fn.entry
    sg = block_schedule_graph(block, machine=machine)
    fdg = block_false_dependence_graph(block, machine)
    if _cycles(augmented_schedule(sg, fdg, machine)) != _cycles(
        compact_augmented_schedule(sg, fdg, machine)
    ):
        raise SystemExit(
            "bench_backend: compact and reference schedulers disagree on "
            "{} — timings would be meaningless".format(workload)
        )

    # -- interleaved timing, per-phase minima.
    pairs = {
        "interference": (
            lambda: build_compact_interference(fn),
            lambda: build_interference_graph(fn),
        ),
        "color": (
            lambda: compact_chaitin_color(compact.graph, COLORS),
            lambda: chaitin_color(reference.graph, COLORS),
        ),
        "sched": (
            lambda: compact_augmented_schedule(sg, fdg, machine),
            lambda: augmented_schedule(sg, fdg, machine),
        ),
    }
    walls = {}
    for _ in range(repeats):
        for name, (fast, slow) in pairs.items():
            wall, _ = timed(fast)
            key = "{}_compact".format(name)
            walls[key] = min(walls.get(key, float("inf")), wall)
            wall, _ = timed(slow)
            key = "{}_reference".format(name)
            walls[key] = min(walls.get(key, float("inf")), wall)

    speedups = {}
    for name in pairs:
        for suffix in ("compact", "reference"):
            phase = "{}_{}".format(name, suffix)
            rows.append({
                "workload": workload,
                "phase": phase,
                "wall_s": round(walls[phase], 6),
                "n_instrs": n_instrs,
            })
            print("{:<16} {:<24} {:>9.3f}s".format(
                workload, phase, walls[phase]))
        compact_wall = walls["{}_compact".format(name)]
        reference_wall = walls["{}_reference".format(name)]
        speedup = (
            reference_wall / compact_wall if compact_wall else float("inf")
        )
        speedups[name] = speedup
        print("{:<16} {} compact speedup: {:.2f}x".format(
            workload, name, speedup))
    return speedups


def bench_cfg_liveness(diamonds, block_size, repeats, rows):
    """Packed vs set-based liveness over a real CFG fixpoint."""
    fn = diamond_chain(num_diamonds=diamonds, block_size=block_size, seed=10)
    n_instrs = sum(len(b) for b in fn.blocks())
    workload = "backend-cfg-d{}".format(diamonds)

    info = live_variables(fn)
    packed = live_variables_rows(fn)
    materialized = packed.to_info()
    if (
        materialized.live_in != info.live_in
        or materialized.live_out != info.live_out
    ):
        raise SystemExit(
            "bench_backend: packed and set liveness disagree on {} — "
            "timings would be meaningless".format(workload)
        )

    wall_rows = wall_sets = float("inf")
    for _ in range(repeats):
        wall, _ = timed(lambda: live_variables_rows(fn))
        wall_rows = min(wall_rows, wall)
        wall, _ = timed(lambda: live_variables(fn))
        wall_sets = min(wall_sets, wall)
    for phase, wall in (
        ("liveness_rows", wall_rows), ("liveness_sets", wall_sets)
    ):
        rows.append({
            "workload": workload,
            "phase": phase,
            "wall_s": round(wall, 6),
            "n_instrs": n_instrs,
        })
        print("{:<16} {:<24} {:>9.3f}s".format(workload, phase, wall))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--size", type=int, default=2048, metavar="N",
        help="large-block instruction count (default 2048)",
    )
    parser.add_argument(
        "--window", type=int, default=96, metavar="W",
        help="operand reuse window of the large block (default 96)",
    )
    parser.add_argument(
        "--diamonds", type=int, default=80, metavar="D",
        help="diamonds in the CFG liveness workload (default 80)",
    )
    parser.add_argument(
        "--block-size", type=int, default=16, metavar="B",
        help="instructions per diamond arm (default 16)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="R",
        help="take each phase's minimum wall time over R interleaved "
        "runs (default 3; noise robustness)",
    )
    parser.add_argument(
        "--skip-cfg", action="store_true",
        help="emit only the large-block rows (fast CI mode)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless compact >= {:.0f}x reference on interference "
        "and coloring".format(COMPACT_OVER_REFERENCE_MIN),
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write bench_compare-compatible JSON rows to FILE",
    )
    args = parser.parse_args(argv)
    if args.size < 256:
        raise SystemExit(
            "bench_backend: --size below 256 is all timer noise"
        )
    if args.repeats < 1:
        raise SystemExit("bench_backend: --repeats must be at least 1")

    rows = []
    speedups = bench_large_block(args.size, args.window, args.repeats, rows)
    if not args.skip_cfg:
        bench_cfg_liveness(args.diamonds, args.block_size, args.repeats,
                           rows)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(args.output))

    if args.check:
        failed = [
            name for name in ("interference", "color")
            if speedups[name] < COMPACT_OVER_REFERENCE_MIN
        ]
        if failed:
            print(
                "bench_backend: FAIL — compact below the {:.0f}x floor "
                "on: {}".format(
                    COMPACT_OVER_REFERENCE_MIN, ", ".join(failed)
                ),
                file=sys.stderr,
            )
            return 1
        print("bench_backend: floors hold (interference {:.2f}x, "
              "color {:.2f}x)".format(
                  speedups["interference"], speedups["color"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
