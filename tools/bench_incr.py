#!/usr/bin/env python
"""Benchmark region-grain incremental compilation (PR 9).

Two measurement tiers, both against a region cache rooted in a
throwaway directory:

**End-to-end** — ``driver.compile_function`` on a multi-region
diamond-chain function:

* ``cold`` — first compile against an empty store: every region kernel
  is a miss, and the store is being populated;
* ``warm`` — the identical source re-parsed and recompiled: every
  region kernel is served from the cache (proves the digest is a pure
  function of the printed form, not of object identity);
* ``incr`` — the edit-recompile loop: one constant in one arm block is
  changed, so exactly the edited region's kernels are rebuilt and every
  other region hits.

End-to-end recompiles also pay the phases the region cache cannot
touch — interference/web construction, coloring, assignment, and final
list scheduling are whole-function work redone on every compile — so
the end-to-end guard is a regression floor (``incr`` >=
``E2E_INCR_OVER_COLD_MIN`` x faster than ``cold``), not the headline
number.

**Region compile path** — the subsystem this PR adds: a
:func:`~repro.pipeline.incremental.cached_region_fdg_ir` sweep over
every scheduling region, with the whole-function dependence graph
prebuilt exactly as the driver shares it across phases:

* ``kernel_cold`` / ``kernel_warm`` / ``kernel_incr`` — same three
  store states as above.

This is where the acceptance floor lives: a one-region edit must
recompile the region kernels >= ``INCR_OVER_COLD_MIN`` x faster than
the cold sweep, because only the edited region's kernels are rebuilt.

Rows are bench_compare-compatible ``{workload, phase, wall_s, ...}``
objects; the committed baseline is ``BENCH_pr9.json``.  ``--check``
enforces both floors in-process; CI applies the same floors to the
emitted rows via ``bench_compare.py --ratio-max``, which keeps the
guard machine-independent.

Run:  PYTHONPATH=src python tools/bench_incr.py -o BENCH_pr9.json
      PYTHONPATH=src python tools/bench_incr.py --check
"""

import argparse
import json
import re
import shutil
import sys
import tempfile
import time

from repro.analysis.regions import schedule_regions
from repro.deps.global_deps import shared_function_dependence_graph
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.presets import wide_issue
from repro.pipeline.driver import CompilationDriver, DriverConfig
from repro.pipeline.incremental import (
    cached_region_fdg_ir,
    region_cache_for,
    reset_region_caches,
)
from repro.workloads.generator import diamond_chain

#: PR-9 acceptance floor: after a single-region edit, the per-region
#: kernel sweep must beat the cold sweep by this factor.
INCR_OVER_COLD_MIN = 3.0

#: End-to-end regression floor: whole-function phases (interference,
#: coloring, scheduling) bound the achievable ratio well below the
#: kernel-path floor.
E2E_INCR_OVER_COLD_MIN = 1.4

#: A source line whose trailing integer immediate we can bump without
#: changing the dependence structure of any region.
_EDITABLE = re.compile(r"^(\s+\S+ = (?:add|sub|mul) \S+, )(\d+)$")


def one_region_edit(text):
    """Return ``text`` with one immediate changed inside one arm block.

    The edit is applied to the first editable instruction *after* the
    second block label, so it always lands inside a single non-entry
    region of the diamond chain.
    """
    lines = text.splitlines()
    blocks_seen = 0
    for index, line in enumerate(lines):
        if line.startswith("block "):
            blocks_seen += 1
            continue
        if blocks_seen < 2:
            continue
        match = _EDITABLE.match(line)
        if match:
            bumped = int(match.group(2)) + 1
            lines[index] = "{}{}".format(match.group(1), bumped)
            return "\n".join(lines) + "\n"
    raise SystemExit("bench_incr: no editable immediate found")


def timed_compile(driver, text, name):
    fn = parse_function(text)
    started = time.perf_counter()
    outcome = driver.compile_function(fn)
    wall = time.perf_counter() - started
    if not outcome.ok:
        raise SystemExit(
            "bench_incr: {} compile failed: {}".format(
                name, outcome.report.as_dict()
            )
        )
    return wall


def timed_region_sweep(text, machine, engine, cache):
    """Wall time of the per-region compile path over every region.

    The whole-function dependence graph is built *before* the clock
    starts: the driver pays it once per compile regardless (the
    interference build walks the same def-use chains), so the sweep
    isolates the marginal cost of classify-and-rebuild.
    """
    fn = parse_function(text)
    regions = schedule_regions(fn)
    shared_function_dependence_graph(fn)
    started = time.perf_counter()
    for region in regions:
        cached_region_fdg_ir(
            fn, region, machine, engine, cache,
            dependence_graph=lambda: shared_function_dependence_graph(fn),
        )
    return time.perf_counter() - started


def run_once(base_text, edited_text, machine, engine, store_dir):
    """One cold/warm/incr cycle against a fresh store; returns walls
    and per-phase cache-delta stats."""
    reset_region_caches()
    driver = CompilationDriver(
        machine,
        config=DriverConfig(
            engine=engine,
            region_cache=True,
            region_cache_dir=store_dir,
        ),
    )
    cache = region_cache_for(store_dir)
    walls, stats = {}, {}
    for phase, text in (
        ("cold", base_text),
        ("warm", base_text),
        ("incr", edited_text),
    ):
        before = cache.snapshot()
        walls[phase] = timed_compile(driver, text, phase)
        after = cache.snapshot()
        stats[phase] = {
            "hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"],
        }
    return walls, stats


def run_sweep_once(base_text, edited_text, machine, engine, store_dir):
    """One kernel_cold/kernel_warm/kernel_incr cycle on a fresh store."""
    reset_region_caches()
    cache = region_cache_for(store_dir)
    walls, stats = {}, {}
    for phase, text in (
        ("kernel_cold", base_text),
        ("kernel_warm", base_text),
        ("kernel_incr", edited_text),
    ):
        before = cache.snapshot()
        walls[phase] = timed_region_sweep(text, machine, engine, cache)
        after = cache.snapshot()
        stats[phase] = {
            "hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"],
        }
    return walls, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--diamonds", type=int, default=5, metavar="N",
        help="diamonds in the chain, ~2N+2 regions (default 5)",
    )
    parser.add_argument(
        "--block-size", type=int, default=48, metavar="K",
        help="instructions per block (default 48)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed"
    )
    parser.add_argument(
        "--engine", default="bitset", choices=("bitset", "vector"),
        help="dependence engine (default bitset)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="R",
        help="best-of-R timing (default 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless the region-path one-edit sweep is >= "
        "{:.0f}x and the end-to-end recompile >= {:.1f}x faster "
        "than cold".format(INCR_OVER_COLD_MIN, E2E_INCR_OVER_COLD_MIN),
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write bench_compare-compatible JSON rows to FILE",
    )
    args = parser.parse_args(argv)

    fn = diamond_chain(
        num_diamonds=args.diamonds,
        block_size=args.block_size,
        seed=args.seed,
    )
    base_text = format_function(fn)
    edited_text = one_region_edit(base_text)
    machine = wide_issue()
    workload = "incr-diamond-{}x{}".format(args.diamonds, args.block_size)

    best, best_stats = {}, {}
    try:
        for _ in range(max(args.repeats, 1)):
            for runner in (run_once, run_sweep_once):
                store_dir = tempfile.mkdtemp(prefix="bench-incr-store-")
                try:
                    walls, stats = runner(
                        base_text, edited_text, machine, args.engine,
                        store_dir,
                    )
                finally:
                    shutil.rmtree(store_dir, ignore_errors=True)
                for phase, wall in walls.items():
                    if phase not in best or wall < best[phase]:
                        best[phase] = wall
                        best_stats[phase] = stats[phase]
    finally:
        reset_region_caches()

    rows = []
    for phase in (
        "cold", "warm", "incr",
        "kernel_cold", "kernel_warm", "kernel_incr",
    ):
        wall = best[phase]
        stat = best_stats[phase]
        rows.append({
            "workload": workload,
            "phase": phase,
            "wall_s": round(wall, 6),
            "engine": args.engine,
            "diamonds": args.diamonds,
            "block_size": args.block_size,
            "region_hits": stat["hits"],
            "region_misses": stat["misses"],
        })
        print("{:<12} {:>9.3f}s  ({} region hits, {} misses)".format(
            phase, wall, stat["hits"], stat["misses"]))

    print("end-to-end: warm {:.2f}x, one-region edit {:.2f}x over "
          "cold".format(best["cold"] / best["warm"],
                        best["cold"] / best["incr"]))
    print("region path: warm {:.2f}x, one-region edit {:.2f}x over "
          "cold".format(best["kernel_cold"] / best["kernel_warm"],
                        best["kernel_cold"] / best["kernel_incr"]))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print("wrote {}".format(args.output))

    if args.check:
        failed = False
        if best["kernel_incr"] * INCR_OVER_COLD_MIN > best["kernel_cold"]:
            print(
                "FAIL: kernel_incr {:.4f}s is not {:.0f}x faster than "
                "kernel_cold {:.4f}s".format(
                    best["kernel_incr"], INCR_OVER_COLD_MIN,
                    best["kernel_cold"],
                )
            )
            failed = True
        if best["incr"] * E2E_INCR_OVER_COLD_MIN > best["cold"]:
            print(
                "FAIL: incr {:.3f}s is not {:.1f}x faster than cold "
                "{:.3f}s".format(
                    best["incr"], E2E_INCR_OVER_COLD_MIN, best["cold"]
                )
            )
            failed = True
        if failed:
            return 1
        print("incremental-recompile floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
