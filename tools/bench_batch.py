#!/usr/bin/env python
"""Benchmark batch transports: fork-per-task vs warm pool vs cache.

Runs the same deterministic fuzz batch through three configurations of
:class:`repro.service.BatchRunner` and reports tasks/second:

* ``fork_cold`` — the PR-4 transport: one forked worker process per
  attempt (interpreter + import cost paid 200 times);
* ``pool_cold`` — the persistent warm pool: N workers import the
  pipeline once and serve every task over pipes (the cache is being
  *populated* but never hits);
* ``pool_warm_cache`` — the same batch again against the now-warm
  compile cache: every task is served without dispatching a worker;
* ``disk_warm`` — the same batch against a *fresh* cache instance
  pointed at the populated on-disk store: the memory tier is empty,
  so every hit walks the digest-prefix-sharded disk layout (PR 8).

Rows are bench_compare-compatible ``{workload, phase, wall_s, ...}``
objects; the committed baselines are ``BENCH_pr5.json`` (first three
phases) and ``BENCH_pr8.json`` (adds ``disk_warm``).  ``--check``
enforces the floors in-process (pool >= 2x fork-per-task, warm cache
>= 10x cold pool, sharded disk hits >= 5x cold pool); CI applies the
same floors to the emitted rows via ``bench_compare.py --ratio-max``,
which keeps the guard machine-independent.

Run:  PYTHONPATH=src python tools/bench_batch.py -o BENCH_pr8.json
      PYTHONPATH=src python tools/bench_batch.py --check
"""

import argparse
import json
import shutil
import sys
import tempfile
import time

from repro.cache import CompileCache
from repro.service import BatchRunner, fuzz_tasks

#: PR-5 acceptance floors (speedup factors).
POOL_OVER_FORK_MIN = 2.0
WARM_OVER_COLD_MIN = 10.0
#: PR-8 floor: pure sharded-disk hits (no memory tier, no worker
#: dispatch) must still beat the cold pool by this factor.
DISK_OVER_COLD_MIN = 5.0


def run_config(tasks, workers, label, **runner_kwargs):
    runner = BatchRunner(max_workers=workers, **runner_kwargs)
    started = time.perf_counter()
    summary = runner.run(tasks)
    wall = time.perf_counter() - started
    counts = summary.counts
    if counts["failed"] or counts["pending"]:
        raise SystemExit(
            "bench_batch: {} run did not complete cleanly: {}".format(
                label, counts
            )
        )
    return wall, counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tasks", type=int, default=200, metavar="N",
        help="fuzz batch size (default 200)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="K",
        help="worker processes per run (default 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fuzz stream seed"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless pool >= {:.0f}x fork and warm cache >= "
        "{:.0f}x cold pool".format(POOL_OVER_FORK_MIN, WARM_OVER_COLD_MIN),
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write bench_compare-compatible JSON rows to FILE",
    )
    args = parser.parse_args(argv)

    tasks = fuzz_tasks(args.tasks, seed=args.seed)
    workload = "batch-fuzz-{}".format(args.tasks)
    store_dir = tempfile.mkdtemp(prefix="bench-batch-store-")
    cache = CompileCache(capacity=max(args.tasks, 1), directory=store_dir)
    # A fresh instance over the same sharded store: its memory tier
    # starts empty, so every lookup is a pure disk hit.
    disk_cache = CompileCache(
        capacity=max(args.tasks, 1), directory=store_dir
    )

    configs = [
        ("fork_cold", {"use_pool": False, "cache": None}),
        ("pool_cold", {"use_pool": True, "cache": cache}),
        ("pool_warm_cache", {"use_pool": True, "cache": cache}),
        ("disk_warm", {"use_pool": True, "cache": disk_cache}),
    ]
    rows = []
    walls = {}
    try:
        for phase, kwargs in configs:
            wall, counts = run_config(tasks, args.workers, phase, **kwargs)
            walls[phase] = wall
            rows.append({
                "workload": workload,
                "phase": phase,
                "wall_s": round(wall, 6),
                "tasks": args.tasks,
                "workers": args.workers,
                "tasks_per_s": round(args.tasks / wall, 3) if wall else None,
            })
            print("{:<16} {:>9.3f}s  {:>9.1f} tasks/s  ({} compiled, "
                  "{} cached)".format(
                      phase, wall, args.tasks / wall if wall else 0.0,
                      counts["compiled"], counts["cached"]))
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    if walls["pool_cold"]:
        print("pool speedup over fork: {:.2f}x".format(
            walls["fork_cold"] / walls["pool_cold"]))
    if walls["pool_warm_cache"]:
        print("warm-cache speedup over cold pool: {:.2f}x".format(
            walls["pool_cold"] / walls["pool_warm_cache"]))
    if walls["disk_warm"]:
        print("sharded-disk speedup over cold pool: {:.2f}x".format(
            walls["pool_cold"] / walls["disk_warm"]))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print("wrote {}".format(args.output))

    if args.check:
        problems = []
        if walls["pool_cold"] * POOL_OVER_FORK_MIN > walls["fork_cold"]:
            problems.append(
                "pool_cold {:.3f}s is not {:.0f}x faster than "
                "fork_cold {:.3f}s".format(
                    walls["pool_cold"], POOL_OVER_FORK_MIN,
                    walls["fork_cold"],
                )
            )
        if walls["pool_warm_cache"] * WARM_OVER_COLD_MIN \
                > walls["pool_cold"]:
            problems.append(
                "pool_warm_cache {:.3f}s is not {:.0f}x faster than "
                "pool_cold {:.3f}s".format(
                    walls["pool_warm_cache"], WARM_OVER_COLD_MIN,
                    walls["pool_cold"],
                )
            )
        if walls["disk_warm"] * DISK_OVER_COLD_MIN > walls["pool_cold"]:
            problems.append(
                "disk_warm {:.3f}s is not {:.0f}x faster than "
                "pool_cold {:.3f}s".format(
                    walls["disk_warm"], DISK_OVER_COLD_MIN,
                    walls["pool_cold"],
                )
            )
        if problems:
            for problem in problems:
                print("FAIL: {}".format(problem))
            return 1
        print("throughput floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
