#!/usr/bin/env python
"""Batch-service smoke: the `make batch-smoke` / CI entry point.

Exercises the full `repro batch` contract end to end in a few seconds:

1. a clean batch (manifest + fuzz stream) exits 0 and journals every
   task;
2. resuming the same batch recompiles nothing;
3. a batch with `service.worker:crash` armed retries, fails, and exits
   3 — with every worker pid reaped;
4. an invalid manifest exits 2.

Run:  PYTHONPATH=src python tools/batch_smoke.py
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
SMOKE_SRC = os.path.join(ROOT, "examples", "smoke.src")


def run_batch(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "batch", "--json-summary"]
        + list(args),
        env=env, cwd=cwd, capture_output=True, text=True,
    )
    summary = None
    if proc.stdout.strip().startswith("{"):
        summary = json.loads(proc.stdout)
    return proc.returncode, summary, proc.stderr


def expect(condition, what):
    if not condition:
        raise SystemExit("batch-smoke FAILED: {}".format(what))
    print("  ok: {}".format(what))


def pid_is_live(pid):
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def main():
    workdir = tempfile.mkdtemp(prefix="batch-smoke-")
    try:
        manifest = os.path.join(workdir, "manifest.txt")
        with open(manifest, "w") as handle:
            handle.write(SMOKE_SRC + "\n")
        ledger = os.path.join(workdir, "run.jsonl")

        print("[1/4] clean batch (manifest + fuzz)")
        code, summary, stderr = run_batch(
            manifest, "--ledger", ledger, cwd=workdir
        )
        expect(code == 0, "manifest batch exits 0 (stderr: %r)" % stderr)
        code, summary, stderr = run_batch(
            "--fuzz", "10", "--ledger", ledger,
            "--task-timeout", "30", cwd=workdir,
        )
        expect(code == 0, "fuzz batch exits 0")
        expect(summary["counts"]["ok"] + summary["counts"]["degraded"]
               == 10, "all 10 fuzz tasks succeeded")

        print("[2/4] resume recompiles nothing")
        code, summary, _ = run_batch(
            "--fuzz", "10", "--resume", ledger, cwd=workdir
        )
        expect(code == 0, "resumed batch exits 0")
        expect(summary["counts"]["resumed"] == 10, "all 10 tasks resumed")
        expect(summary["counts"]["compiled"] == 0, "zero recompiles")

        print("[3/4] worker crashes are contained")
        crash_ledger = os.path.join(workdir, "crash.jsonl")
        code, summary, _ = run_batch(
            "--fuzz", "4", "--retries", "1",
            "--inject-fault", "service.worker:crash",
            "--ledger", crash_ledger, cwd=workdir,
        )
        expect(code == 3, "crashing batch exits 3")
        expect(summary["counts"]["failed"] == 4, "every task failed")
        tasks = summary["tasks"]
        expect(all(t["attempts"] == 2 for t in tasks),
               "each task was retried once")
        pids = [p for t in tasks for p in t["pids"]]
        expect(pids and not any(pid_is_live(p) for p in pids),
               "no orphan workers ({} pids reaped)".format(len(pids)))

        print("[4/4] invalid manifest exits 2")
        bad = os.path.join(workdir, "bad.json")
        with open(bad, "w") as handle:
            handle.write('{"tasks": [}')
        code, _, stderr = run_batch(bad, cwd=workdir)
        expect(code == 2, "invalid manifest exits 2")
        expect("not valid JSON" in stderr, "defect is named on stderr")

        print("batch-smoke PASSED")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
