#!/usr/bin/env python
"""Compare two BENCH_*.json files and fail on wall-time regressions.

Rows are matched on (workload, phase).  A row regresses when its
wall_s exceeds the baseline's by more than the threshold (default
20%).  Tiny rows (baseline under --min-wall seconds) are ignored —
sub-millisecond phases are all timer noise.

Run:  python tools/bench_compare.py BASELINE.json CURRENT.json
Exit: 0 when no regression, 1 otherwise (for make bench-check / CI).
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as handle:
        rows = json.load(handle)
    return {(r["workload"], r["phase"]): r for r in rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed fractional wall_s growth (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--min-wall", type=float, default=0.001,
        help="ignore rows whose baseline wall_s is below this (seconds)",
    )
    args = parser.parse_args(argv)

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            print("MISSING  {}/{} not in {}".format(key[0], key[1], args.current))
            regressions.append(key)
            continue
        base, cur = base_row["wall_s"], cur_row["wall_s"]
        if base < args.min_wall:
            continue
        ratio = cur / base if base else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            regressions.append(key)
        print(
            "{:<9} {:<10} {:<28} {:.6f}s -> {:.6f}s ({:+.1f}%)".format(
                status, key[0], key[1], base, cur, (ratio - 1.0) * 100
            )
        )

    if regressions:
        print(
            "\n{} row(s) regressed beyond {:.0f}%".format(
                len(regressions), args.threshold * 100
            )
        )
        return 1
    print("\nno regressions beyond {:.0f}%".format(args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
