#!/usr/bin/env python
"""Compare two BENCH_*.json files and fail on wall-time regressions.

Rows are matched on (workload, phase).  A row regresses when its
wall_s exceeds the baseline's by more than the threshold (default
20%).  Tiny rows (baseline under --min-wall seconds) are ignored —
sub-millisecond phases are all timer noise.

The baseline may be the literal ``auto``: the newest committed
``BENCH_pr*.json`` (highest PR number) whose rows overlap the current
file's (workload, phase) keys is used, so one Makefile line keeps
working as new per-PR baselines land.  Auto mode compares only the
keys the two files share — newly introduced workloads/phases (and
retired ones) are reported as skipped, never as regressions — and when
*no* committed baseline overlaps at all (a brand-new benchmark tool's
first run) it proceeds with ratio guards only.  An explicitly named
baseline stays strict: every baseline key must be present.  The
literal ``none`` skips the baseline comparison entirely — useful when
only ``--ratio-max`` guards matter.

``--ratio-max WORKLOAD:PHASE_A/PHASE_B=LIMIT`` (repeatable) asserts
``wall_s(PHASE_A) / wall_s(PHASE_B) <= LIMIT`` *within the current
file*.  Ratios compare two phases of the same run on the same machine,
so they express machine-independent speedup floors (e.g. the warm
compile cache must stay >= 10x faster than a cold pool run:
``batch-fuzz-200:pool_warm_cache/pool_cold=0.1``).

Run:  python tools/bench_compare.py BASELINE.json CURRENT.json
      python tools/bench_compare.py auto CURRENT.json
      python tools/bench_compare.py none CURRENT.json --ratio-max ...
Exit: 0 when no regression, 1 otherwise (for make bench-check / CI).
"""

import argparse
import glob
import json
import os
import re
import sys


def load_rows(path):
    with open(path) as handle:
        rows = json.load(handle)
    return {(r["workload"], r["phase"]): r for r in rows}


def resolve_auto_baseline(current_path, current_rows):
    """The newest committed BENCH_pr*.json sharing row keys with the
    current file (searched next to the current file, then in the cwd).

    'Newest' is the highest PR number, not mtime — a fresh checkout
    gives every file the same mtime.
    """
    roots = []
    current_dir = os.path.dirname(os.path.abspath(current_path))
    roots.append(current_dir)
    if os.path.abspath(os.getcwd()) != current_dir:
        roots.append(os.getcwd())
    candidates = []
    for root in roots:
        for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
            match = re.search(r"BENCH_pr(\d+)\.json$", path)
            if match and os.path.abspath(path) != \
                    os.path.abspath(current_path):
                candidates.append((int(match.group(1)), path))
    for _, path in sorted(candidates, reverse=True):
        try:
            rows = load_rows(path)
        except (OSError, ValueError, KeyError, TypeError):
            continue
        if set(rows) & set(current_rows):
            return path, rows
    # A current file made entirely of freshly introduced keys (a new
    # benchmark tool's first run) has no meaningful baseline yet;
    # auto mode proceeds with ratio guards only instead of failing.
    print(
        "auto baseline: none found — no committed BENCH_pr*.json "
        "shares rows with {!r} (searched {}); baseline comparison "
        "skipped".format(current_path, ", ".join(roots))
    )
    return None, {}


def parse_ratio_spec(text):
    """'WORKLOAD:PHASE_A/PHASE_B=LIMIT' -> (workload, a, b, limit)."""
    match = re.match(r"^([^:]+):([^/]+)/([^=]+)=(.+)$", text)
    if not match:
        raise SystemExit(
            "bench_compare: bad --ratio-max {!r} (want "
            "WORKLOAD:PHASE_A/PHASE_B=LIMIT)".format(text)
        )
    workload, phase_a, phase_b, limit_text = match.groups()
    try:
        limit = float(limit_text)
    except ValueError:
        raise SystemExit(
            "bench_compare: --ratio-max limit {!r} is not a "
            "number".format(limit_text)
        )
    if limit <= 0:
        raise SystemExit(
            "bench_compare: --ratio-max limit must be positive, "
            "got {}".format(limit)
        )
    return workload, phase_a, phase_b, limit


def check_ratios(current, specs):
    """Apply --ratio-max guards to the current rows; returns the list
    of failed spec strings (missing rows count as failures)."""
    failures = []
    for spec in specs:
        workload, phase_a, phase_b, limit = parse_ratio_spec(spec)
        row_a = current.get((workload, phase_a))
        row_b = current.get((workload, phase_b))
        if row_a is None or row_b is None:
            missing = phase_a if row_a is None else phase_b
            print("MISSING  {}/{} for --ratio-max {}".format(
                workload, missing, spec))
            failures.append(spec)
            continue
        wall_a, wall_b = row_a["wall_s"], row_b["wall_s"]
        ratio = wall_a / wall_b if wall_b else float("inf")
        status = "ok"
        if ratio > limit:
            status = "VIOLATED"
            failures.append(spec)
        print(
            "{:<9} {:<10} {}/{} = {:.6f}s/{:.6f}s = {:.4f} "
            "(limit {:g})".format(
                status, workload, phase_a, phase_b, wall_a, wall_b,
                ratio, limit,
            )
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline",
        help="committed BENCH_*.json, 'auto' (newest committed "
        "BENCH_pr*.json with overlapping rows), or 'none'",
    )
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed fractional wall_s growth (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--min-wall", type=float, default=0.001,
        help="ignore rows whose baseline wall_s is below this (seconds)",
    )
    parser.add_argument(
        "--ratio-max", action="append", default=[], metavar="SPEC",
        help="assert wall_s(PHASE_A)/wall_s(PHASE_B) <= LIMIT within "
        "the current file; SPEC is WORKLOAD:PHASE_A/PHASE_B=LIMIT "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    current = load_rows(args.current)
    regressions = []
    auto_mode = args.baseline == "auto"

    if args.baseline == "none":
        baseline = {}
    elif auto_mode:
        baseline_path, baseline = resolve_auto_baseline(
            args.current, current
        )
        if baseline_path is not None:
            print("auto baseline: {}".format(baseline_path))
    else:
        baseline = load_rows(args.baseline)

    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            if auto_mode:
                # Auto mode matches whatever keys the two files share;
                # a baseline-only key just means the key sets drifted
                # between PRs (new workloads/phases), not a regression.
                print("skipped  {}/{} not in {}".format(
                    key[0], key[1], args.current))
                continue
            print("MISSING  {}/{} not in {}".format(key[0], key[1], args.current))
            regressions.append(key)
            continue
        base, cur = base_row["wall_s"], cur_row["wall_s"]
        if base < args.min_wall:
            continue
        ratio = cur / base if base else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            regressions.append(key)
        print(
            "{:<9} {:<10} {:<28} {:.6f}s -> {:.6f}s ({:+.1f}%)".format(
                status, key[0], key[1], base, cur, (ratio - 1.0) * 100
            )
        )

    ratio_failures = check_ratios(current, args.ratio_max)

    if regressions or ratio_failures:
        print(
            "\n{} row(s) regressed beyond {:.0f}%, {} ratio guard(s) "
            "violated".format(
                len(regressions), args.threshold * 100,
                len(ratio_failures),
            )
        )
        return 1
    print("\nno regressions beyond {:.0f}%".format(args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
