#!/usr/bin/env python
"""Load-generate ``repro serve`` and measure its robustness envelope.

Each phase starts a real ``repro serve`` subprocess (the CLI path, not
an in-process shortcut) and drives it with concurrent HTTP clients:

* ``latency`` — N clients (>= 8) each stream unique-source wait-mode
  compiles; reports p50/p99 request latency and tasks/sec.
* ``coalesce`` — the pool is pinned by one slow job, then N clients
  concurrently submit byte-identical sources: the duplicates must
  coalesce onto **one** worker compile (coalesce counter == N-1).
* ``shed`` — a server with tiny admission bounds is flooded; every
  refusal must be a *typed* 429/503 shed response, never a hang or an
  unbounded queue.
* ``drain`` — SIGTERM mid-burst: the server must exit 0, leave zero
  orphan worker pids, and journal every accepted task to the ledger
  (settled, or ``interrupted`` = resumable).

Rows are bench_compare-compatible ``{workload, phase, ...}`` objects;
the committed snapshot is ``BENCH_pr7.json``.  ``--check`` enforces
the correctness assertions (coalesce-exactly-once, typed sheds,
zero-loss drain) in-process — latency itself is machine-dependent and
carries no floor.

Run:  PYTHONPATH=src python tools/bench_serve.py -o BENCH_pr7.json
      PYTHONPATH=src python tools/bench_serve.py --check
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

SOURCE = "input a, b;\nx = a * b + 3;\noutput x;\n"


def unique_source(index):
    return "input a, b;\nv = a * {} + b;\nw = v ^ {};\noutput w;\n".format(
        index + 2, index + 3
    )


class ServeProc:
    """One ``repro serve`` subprocess plus HTTP client helpers."""

    def __init__(self, *flags):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"]
            + list(flags),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        banner = self.proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if not match:
            self.proc.kill()
            raise SystemExit(
                "bench_serve: no listening banner, got {!r}".format(banner)
            )
        self.base = "http://127.0.0.1:{}".format(match.group(1))

    def post(self, path, doc, timeout=60.0):
        req = urllib.request.Request(
            self.base + path, data=json.dumps(doc).encode("utf-8"),
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get(self, path, timeout=30.0):
        with urllib.request.urlopen(
            self.base + path, timeout=timeout
        ) as resp:
            return resp.status, json.loads(resp.read())

    def healthz(self):
        return self.get("/healthz")[1]

    def drain(self):
        self.post("/drain", {})
        return self.wait()

    def sigterm(self):
        self.proc.send_signal(signal.SIGTERM)
        return self.wait()

    def wait(self, timeout=60.0):
        out, _ = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out

    def kill_if_alive(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def pid_is_live(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True


def percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[index]


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------

def phase_latency(clients, per_client, pool_size):
    server = ServeProc("--pool-size", str(pool_size),
                       "--max-queue-depth", str(clients * per_client + 8))
    latencies = []
    failures = []
    lock = threading.Lock()

    def client_main(client_index):
        for task_index in range(per_client):
            source = unique_source(client_index * per_client + task_index)
            started = time.perf_counter()
            status, doc = server.post("/submit", {
                "name": "c{}t{}".format(client_index, task_index),
                "text": source,
                "client": "client-{}".format(client_index),
                "wait": True,
            })
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if status != 200 or doc.get("status") != "ok":
                    failures.append((status, doc.get("status")))

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client_main, args=(i,))
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    code, _ = server.drain()
    total = clients * per_client
    ordered = sorted(latencies)
    row = {
        "workload": "serve-burst",
        "phase": "latency",
        "wall_s": round(wall, 6),
        "tasks": total,
        "clients": clients,
        "pool_size": pool_size,
        "tasks_per_s": round(total / wall, 3) if wall else None,
        "p50_ms": round(1000 * percentile(ordered, 0.50), 3),
        "p99_ms": round(1000 * percentile(ordered, 0.99), 3),
        "failures": len(failures),
        "exit_code": code,
    }
    problems = []
    if failures:
        problems.append(
            "latency: {} of {} requests failed: {}".format(
                len(failures), total, failures[:3]
            )
        )
    if code != 0:
        problems.append("latency: drain exited {}".format(code))
    return row, problems


def phase_coalesce(duplicates):
    server = ServeProc("--pool-size", "1", "--allow-request-faults",
                       "--no-cache")
    # Pin the single worker so the duplicates overlap while queued.
    server.post("/submit", {
        "name": "pin", "text": SOURCE,
        "faults": "service.worker:stall=2.0",
    })
    time.sleep(0.3)
    results = []
    lock = threading.Lock()
    dup_source = "input a;\ny = a + 7;\noutput y;\n"

    def submit_one(index):
        status, doc = server.post("/submit", {
            "name": "dup", "text": dup_source,
            "client": "client-{}".format(index),
        })
        with lock:
            results.append((status, doc))

    started = time.perf_counter()
    threads = [
        threading.Thread(target=submit_one, args=(i,))
        for i in range(duplicates)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    deadline = time.monotonic() + 30.0
    health = server.healthz()
    while time.monotonic() < deadline:
        health = server.healthz()
        if health["dispatcher"]["stats"]["completed"] >= duplicates + 1:
            break
        time.sleep(0.1)
    wall = time.perf_counter() - started
    stats = health["dispatcher"]["stats"]
    coalesced = stats["coalesced"]
    dispatched = stats["dispatched"]
    code, _ = server.drain()
    row = {
        "workload": "serve-coalesce",
        "phase": "coalesce",
        "wall_s": round(wall, 6),
        "duplicates": duplicates,
        "coalesced": coalesced,
        "dispatched": dispatched,
        "exit_code": code,
    }
    problems = []
    if coalesced != duplicates - 1:
        problems.append(
            "coalesce: expected {} coalesced submissions, saw {}".format(
                duplicates - 1, coalesced
            )
        )
    if dispatched != 2:  # the pin job + exactly one duplicate compile
        problems.append(
            "coalesce: expected exactly 2 dispatches (pin + one "
            "compile), saw {}".format(dispatched)
        )
    if any(status != 202 for status, _ in results):
        problems.append("coalesce: a duplicate submission was refused")
    return row, problems


def phase_shed(clients):
    # One token per client and a global bound below the client count:
    # with the pool pinned, first submits are admitted until the
    # global bound (typed 503 for the rest), and every second submit
    # from an admitted client trips its per-client bound (typed 429) —
    # both shed kinds are exercised deterministically.
    server = ServeProc("--pool-size", "1",
                       "--max-queue-depth", str(max(2, clients - 2)),
                       "--per-client-depth", "1",
                       "--allow-request-faults")
    # Pin the worker so nothing settles while the flood runs.
    server.post("/submit", {
        "name": "pin", "text": SOURCE, "client": "pin",
        "faults": "service.worker:stall=3.0",
    })
    time.sleep(0.2)
    outcomes = []
    lock = threading.Lock()

    def flood(index):
        # two submissions per client: the second must trip the
        # per-client bound even when the global queue has room
        for attempt in range(2):
            status, doc = server.post("/submit", {
                "name": "f{}a{}".format(index, attempt), "text": SOURCE,
                "client": "client-{}".format(index),
            })
            with lock:
                outcomes.append((status, doc.get("error")))

    started = time.perf_counter()
    threads = [
        threading.Thread(target=flood, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    code, _ = server.drain()
    accepted = sum(1 for status, _ in outcomes if status == 202)
    shed_429 = sum(1 for status, _ in outcomes if status == 429)
    shed_503 = sum(1 for status, _ in outcomes if status == 503)
    untyped = [
        (status, error) for status, error in outcomes
        if status not in (202, 429, 503)
        or (status in (429, 503) and not error)
    ]
    row = {
        "workload": "serve-shed",
        "phase": "shed",
        "wall_s": round(wall, 6),
        "requests": len(outcomes),
        "accepted": accepted,
        "shed_429": shed_429,
        "shed_503": shed_503,
        "exit_code": code,
    }
    problems = []
    if shed_429 == 0 or shed_503 == 0:
        problems.append(
            "shed: want both shed kinds, saw {} x 429 and "
            "{} x 503".format(shed_429, shed_503)
        )
    if untyped:
        problems.append(
            "shed: untyped responses: {}".format(untyped[:3])
        )
    return row, problems


def phase_drain(queued, ledger_path):
    server = ServeProc("--pool-size", "2", "--ledger", ledger_path,
                       "--allow-request-faults")
    accepted = []
    for index in range(2):
        status, doc = server.post("/submit", {
            "name": "slow{}".format(index), "text": SOURCE,
            "client": "drain", "faults": "service.worker:stall=3.0",
        })
        if status == 202:
            accepted.append(doc["job_id"])
    for index in range(queued):
        status, doc = server.post("/submit", {
            "name": "q{}".format(index),
            "text": unique_source(index),
            "client": "drain-{}".format(index),
        })
        if status == 202:
            accepted.append(doc["job_id"])
    worker_pids = server.healthz()["dispatcher"]["worker_pids"]
    started = time.perf_counter()
    code, _ = server.sigterm()
    wall = time.perf_counter() - started
    orphans = [pid for pid in worker_pids if pid_is_live(pid)]
    records = {}
    with open(ledger_path) as handle:
        for line in handle:
            if line.strip():
                record = json.loads(line)
                records[record["task_id"]] = record["status"]
    lost = [job_id for job_id in accepted if job_id not in records]
    row = {
        "workload": "serve-drain",
        "phase": "drain",
        "wall_s": round(wall, 6),
        "accepted": len(accepted),
        "ledgered": len([j for j in accepted if j in records]),
        "interrupted": sum(
            1 for j in accepted if records.get(j) == "interrupted"
        ),
        "orphans": len(orphans),
        "exit_code": code,
    }
    problems = []
    if code != 0:
        problems.append("drain: SIGTERM exited {}, want 0".format(code))
    if orphans:
        problems.append("drain: orphan worker pids {}".format(orphans))
    if lost:
        problems.append("drain: accepted tasks lost: {}".format(lost))
    return row, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent clients for the latency/shed phases "
        "(default 8; the acceptance floor)",
    )
    parser.add_argument(
        "--per-client", type=int, default=4, metavar="M",
        help="wait-mode compiles per client in the latency phase",
    )
    parser.add_argument(
        "--pool-size", type=int, default=4, metavar="K",
        help="server worker pool for the latency phase",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on any correctness problem (coalesce-exactly-once, "
        "typed sheds, zero-loss zero-orphan drain)",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write bench_compare-compatible JSON rows to FILE",
    )
    args = parser.parse_args(argv)
    if args.clients < 8:
        raise SystemExit("bench_serve: --clients must be >= 8")

    rows = []
    problems = []
    ledger_path = "/tmp/bench_serve_drain_{}.jsonl".format(os.getpid())
    if os.path.exists(ledger_path):
        os.unlink(ledger_path)
    phases = [
        ("latency", lambda: phase_latency(
            args.clients, args.per_client, args.pool_size)),
        ("coalesce", lambda: phase_coalesce(args.clients)),
        ("shed", lambda: phase_shed(args.clients)),
        ("drain", lambda: phase_drain(6, ledger_path)),
    ]
    try:
        for name, runner in phases:
            row, phase_problems = runner()
            rows.append(row)
            problems.extend(phase_problems)
            detail = {
                k: v for k, v in row.items()
                if k not in ("workload", "phase")
            }
            print("{:<10} {}".format(name, json.dumps(detail)))
    finally:
        if os.path.exists(ledger_path):
            os.unlink(ledger_path)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print("wrote {}".format(args.output))

    if problems:
        for problem in problems:
            print("FAIL: {}".format(problem))
        if args.check:
            return 1
    elif args.check:
        print("serve robustness assertions hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
