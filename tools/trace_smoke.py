#!/usr/bin/env python
"""Observability smoke: the `make trace-smoke` / CI entry point.

Exercises the tracing pipeline end to end in a few seconds:

1. a traced fuzz batch (`--trace run-trace.jsonl --metrics`) exits 0
   and folds its metrics snapshot into the JSON summary;
2. `repro stats --json --check` accepts the trace (every line
   validates, every span balances) and aggregates non-empty per-phase
   and per-rung tables covering every task;
3. the text renderer prints both tables;
4. a trace with a torn final line still aggregates (tolerant by
   default) but fails under `--check`.

Run:  PYTHONPATH=src python tools/trace_smoke.py
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

N_TASKS = 20


def run_repro(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro"] + list(args),
        env=env, cwd=cwd, capture_output=True, text=True,
    )


def expect(condition, what):
    if not condition:
        raise SystemExit("trace-smoke FAILED: {}".format(what))
    print("  ok: {}".format(what))


def main():
    workdir = tempfile.mkdtemp(prefix="trace-smoke-")
    try:
        trace = os.path.join(workdir, "run-trace.jsonl")

        print("[1/4] traced fuzz batch")
        proc = run_repro(
            "batch", "--fuzz", str(N_TASKS), "--trace", trace,
            "--metrics", "--json-summary", cwd=workdir,
        )
        expect(proc.returncode == 0,
               "traced batch exits 0 (stderr: %r)" % proc.stderr[-300:])
        summary = json.loads(proc.stdout)
        expect(summary["counts"]["ok"] + summary["counts"]["degraded"]
               == N_TASKS, "all {} tasks succeeded".format(N_TASKS))
        expect(summary["metrics"]["counters"].get("batch.dispatches", 0)
               >= N_TASKS, "metrics snapshot folded into the summary")

        print("[2/4] stats --json --check accepts and aggregates")
        proc = run_repro("stats", trace, "--json", "--check", cwd=workdir)
        expect(proc.returncode == 0,
               "stats --check exits 0 (stderr: %r)" % proc.stderr[-300:])
        stats = json.loads(proc.stdout)
        expect(stats["invalid_lines"] == [], "every trace line validates")
        expect(stats["span_problems"] == [], "every span balances")
        expect(len(stats["phases"]) >= 5,
               "per-phase rows are non-empty ({} phases)".format(
                   len(stats["phases"])))
        expect(all(row["count"] >= N_TASKS
                   for row in stats["phases"].values()),
               "every phase row covers every task")
        rung_tasks = sum(r["tasks"] for r in stats["rungs"].values())
        expect(stats["rungs"] and rung_tasks == N_TASKS,
               "per-rung rows cover all {} tasks".format(N_TASKS))

        print("[3/4] text renderer prints both tables")
        proc = run_repro("stats", trace, cwd=workdir)
        expect(proc.returncode == 0, "text stats exits 0")
        expect("per-phase:" in proc.stdout and "per-rung:" in proc.stdout,
               "both tables rendered")

        print("[4/4] torn final line: tolerant without --check, not with")
        with open(trace, "a") as handle:
            handle.write('{"v": 1, "kind": "counter", "na')
        proc = run_repro("stats", trace, cwd=workdir)
        expect(proc.returncode == 0, "torn trace still aggregates")
        proc = run_repro("stats", trace, "--check", cwd=workdir)
        expect(proc.returncode == 1, "torn trace fails --check")

        print("trace-smoke PASSED")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
