#!/usr/bin/env python
"""Benchmark the vectorized PIG kernel and the region-sharded build.

Two workload families, both emitted as bench_compare-compatible
``{workload, phase, wall_s, ...}`` rows:

* ``pig-n<SIZE>`` — one large straight-line region (default n=2048
  with operand window 32 and 45% loads: wide-reuse register pressure
  plus a dense memory-dependence web, the scale and shape where the
  bitset engine's quadratic big-int pair scans dominate).  Phases
  ``pig_vector`` and ``pig_bitset`` build the same PIG through
  :func:`build_parallel_interference_graph` with each engine; the two
  graphs are checked bit-identical before any timing is trusted.
  The engines are timed *interleaved* — vector then bitset, repeated
  ``--repeats`` times, each phase keeping its minimum — so a load
  spike on a busy machine hits both phases instead of skewing the
  ratio.  The PR-6 floor: the vector engine must be >= 3x faster
  than bitset on the same run (``pig_vector/pig_bitset <= 0.3333``).
* ``pig-shard-d<D>`` — a diamond-chain function with many scheduling
  regions.  Phase ``shard_local`` is the in-process vector build;
  ``shard_w<K>`` rows run :func:`repro.service.shard.build_sharded_pig`
  over a K-worker pool (each K gets a fresh pool so spawn cost is
  visible and runs are independent).  Sharded outputs are also checked
  bit-identical to the local build.  These rows record scaling with
  worker count for the committed artifact; no floor is enforced on
  them — per-region kernel work must outweigh process fan-out cost
  (and the host must actually have the cores) before sharding wins,
  so the honest numbers are machine-dependent.

Run:  PYTHONPATH=src python tools/bench_pig.py -o BENCH_pig_current.json
      PYTHONPATH=src python tools/bench_pig.py --check
Exit: 0 on success (and, with --check, floors hold), 1 otherwise.
"""

import argparse
import json
import sys
import time

from repro.core.parallel_interference import build_parallel_interference_graph
from repro.machine.presets import two_unit_superscalar
from repro.pipeline.driver import _pig_signature
from repro.service.pool import WorkerPool
from repro.service.shard import build_sharded_pig
from repro.workloads import RandomBlockConfig, random_block
from repro.workloads.generator import diamond_chain

#: PR-6 acceptance floor: vector must be >= 3x faster than bitset on
#: the large-region workload, same run, same machine.
VECTOR_OVER_BITSET_MIN = 3.0


def timed(thunk):
    started = time.perf_counter()
    result = thunk()
    return time.perf_counter() - started, result


def bench_large_region(size, rows, repeats):
    """The n>=2048 single-region workload: vector vs bitset."""
    machine = two_unit_superscalar()
    fn = random_block(
        RandomBlockConfig(size=size, seed=size, window=32, load_fraction=0.45)
    )
    n_instrs = sum(len(b) for b in fn.blocks())
    workload = "pig-n{}".format(size)

    # Warm caches (numpy import, allocator, analysis memoization)
    # outside the timed runs — same methodology as repro.bench — then
    # time the engines interleaved, keeping each phase's minimum.
    build_parallel_interference_graph(fn, machine, engine="vector")
    wall_vector = wall_bitset = float("inf")
    pig_vector = pig_bitset = None
    for _ in range(repeats):
        wall, pig_vector = timed(
            lambda: build_parallel_interference_graph(
                fn, machine, engine="vector"
            )
        )
        wall_vector = min(wall_vector, wall)
        wall, pig_bitset = timed(
            lambda: build_parallel_interference_graph(
                fn, machine, engine="bitset"
            )
        )
        wall_bitset = min(wall_bitset, wall)
    if _pig_signature(pig_vector) != _pig_signature(pig_bitset):
        raise SystemExit(
            "bench_pig: vector and bitset engines disagree on {} — "
            "timings would be meaningless".format(workload)
        )
    for phase, wall in (
        ("pig_vector", wall_vector), ("pig_bitset", wall_bitset)
    ):
        rows.append({
            "workload": workload,
            "phase": phase,
            "wall_s": round(wall, 6),
            "n_instrs": n_instrs,
        })
        print("{:<12} {:<12} {:>9.3f}s".format(workload, phase, wall))
    speedup = wall_bitset / wall_vector if wall_vector else float("inf")
    print("{:<12} vector speedup over bitset: {:.2f}x".format(
        workload, speedup))
    return speedup


def bench_sharded(diamonds, block_size, workers, rows):
    """The multi-region workload: in-process vs K-worker sharded."""
    machine = two_unit_superscalar()
    fn = diamond_chain(num_diamonds=diamonds, block_size=block_size, seed=6)
    n_instrs = sum(len(b) for b in fn.blocks())
    workload = "pig-shard-d{}".format(diamonds)

    wall_local, pig_local = timed(
        lambda: build_parallel_interference_graph(fn, machine, engine="vector")
    )
    rows.append({
        "workload": workload,
        "phase": "shard_local",
        "wall_s": round(wall_local, 6),
        "n_instrs": n_instrs,
    })
    print("{:<12} {:<12} {:>9.3f}s".format(workload, "shard_local",
                                           wall_local))
    reference_sig = _pig_signature(pig_local)
    for count in workers:
        with WorkerPool(size=count) as pool:
            wall, pig = timed(
                lambda: build_sharded_pig(
                    fn, machine, engine="vector", shards=count, pool=pool
                )
            )
        if _pig_signature(pig) != reference_sig:
            raise SystemExit(
                "bench_pig: {}-worker sharded build disagrees with the "
                "local build on {}".format(count, workload)
            )
        rows.append({
            "workload": workload,
            "phase": "shard_w{}".format(count),
            "wall_s": round(wall, 6),
            "n_instrs": n_instrs,
            "workers": count,
        })
        print("{:<12} {:<12} {:>9.3f}s".format(
            workload, "shard_w{}".format(count), wall))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--size", type=int, default=2048, metavar="N",
        help="large-region instruction count (default 2048)",
    )
    parser.add_argument(
        "--diamonds", type=int, default=24, metavar="D",
        help="diamonds in the multi-region workload (default 24)",
    )
    parser.add_argument(
        "--block-size", type=int, default=48, metavar="B",
        help="instructions per diamond arm (default 48)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        metavar="K", help="pool sizes for the sharded rows",
    )
    parser.add_argument(
        "--repeats", type=int, default=4, metavar="R",
        help="take each phase's minimum wall time over R interleaved "
        "runs (default 4; noise robustness)",
    )
    parser.add_argument(
        "--skip-shard", action="store_true",
        help="emit only the vector-vs-bitset rows (fast CI mode)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless vector >= {:.0f}x bitset on the large "
        "region".format(VECTOR_OVER_BITSET_MIN),
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write bench_compare-compatible JSON rows to FILE",
    )
    args = parser.parse_args(argv)
    if args.size < 64:
        raise SystemExit("bench_pig: --size below 64 is all timer noise")

    if args.repeats < 1:
        raise SystemExit("bench_pig: --repeats must be at least 1")

    rows = []
    speedup = bench_large_region(args.size, rows, args.repeats)
    if not args.skip_shard:
        # Sharding only has a rung for pool sizes >= 2; a w1 request
        # is reported as the local build under the sharded label so
        # the scaling table always has its serial anchor.
        workers = sorted({max(1, k) for k in args.workers})
        shard_workers = [k for k in workers if k >= 2]
        machine_rows_before = len(rows)
        bench_sharded(
            args.diamonds, args.block_size, shard_workers, rows
        )
        if 1 in workers:
            local_row = next(
                r for r in rows[machine_rows_before:]
                if r["phase"] == "shard_local"
            )
            w1 = dict(local_row)
            w1["phase"] = "shard_w1"
            w1["workers"] = 1
            rows.append(w1)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(args.output))

    if args.check:
        if speedup < VECTOR_OVER_BITSET_MIN:
            print(
                "FAIL: vector is only {:.2f}x faster than bitset at "
                "n={} (floor {:.0f}x)".format(
                    speedup, args.size, VECTOR_OVER_BITSET_MIN
                )
            )
            return 1
        print("vector/bitset floor holds ({:.2f}x >= {:.0f}x)".format(
            speedup, VECTOR_OVER_BITSET_MIN))
    return 0


if __name__ == "__main__":
    sys.exit(main())
