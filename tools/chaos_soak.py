#!/usr/bin/env python
"""Long-running chaos soak: many seeded campaigns back to back.

``repro chaos`` runs ONE seeded campaign (the fixed-seed quick
variant is the CI gate, ``make chaos-smoke``).  This wrapper is the
overnight/soak companion: it derives a stream of campaign seeds from
a base seed and keeps running full campaigns until the requested
count or time budget is exhausted, aggregating the per-campaign
invariants into one soak report.

Every campaign asserts the same four global invariants after its
drills (see ``repro.chaos``):

1. zero orphan pids — no worker or server process outlives its round;
2. every ledger passes ``repro ledger check``;
3. exactly-once settlement — no lost and no duplicated task;
4. cache honesty — a cached result never differs from a fresh compile.

A single RED campaign makes the soak RED.  By default the soak stops
at the first RED (the failing campaign's workdir is kept for autopsy
with ``--keep-failed``); ``--keep-going`` runs the remaining
campaigns anyway so one flake doesn't hide a second, different
failure mode.

Run:  PYTHONPATH=src python tools/chaos_soak.py --campaigns 10
      PYTHONPATH=src python tools/chaos_soak.py --minutes 30 --seed 7
"""

import argparse
import json
import os
import random
import sys
import time

# The campaigns spawn `python -m repro ...` subprocesses, so src/
# must be on PYTHONPATH for the children too, not just this process.
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
sys.path.insert(0, _SRC)
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + os.environ["PYTHONPATH"]
        if os.environ.get("PYTHONPATH") else _SRC
    )

from repro.chaos import run_campaign  # noqa: E402

EXIT_SOAK_FAILED = 1


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="run many seeded chaos campaigns back to back",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="base seed; campaign k runs with an rng(SEED) stream "
        "so the whole soak is reproducible (default 0)",
    )
    parser.add_argument(
        "--campaigns", type=int, default=5, metavar="N",
        help="number of campaigns to run (default 5)",
    )
    parser.add_argument(
        "--minutes", type=float, default=None, metavar="M",
        help="time budget: stop starting new campaigns after M "
        "minutes (overrides --campaigns as the stop condition)",
    )
    parser.add_argument(
        "--tasks", type=int, default=8, metavar="N",
        help="tasks per drill round inside each campaign (default 8)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the reduced quick drill matrix per campaign",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="run every scheduled campaign even after a RED one",
    )
    parser.add_argument(
        "--keep-failed", action="store_true",
        help="keep the workdir of any RED campaign for autopsy",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the aggregated soak report as JSON to PATH",
    )
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    if args.campaigns < 1:
        print("chaos-soak: --campaigns must be >= 1", file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    started = time.monotonic()
    deadline = (
        started + args.minutes * 60.0
        if args.minutes is not None else None
    )
    campaigns = []
    index = 0
    while True:
        if deadline is None and index >= args.campaigns:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        campaign_seed = rng.randrange(1 << 30)
        print("soak: campaign {} (seed {})".format(index, campaign_seed))
        summary = run_campaign(
            seed=campaign_seed,
            quick=args.quick,
            tasks_per_round=args.tasks,
            keep=args.keep_failed,
            progress=lambda line: print("  " + line),
        )
        campaigns.append(summary)
        if not summary["ok"]:
            print("soak: campaign {} (seed {}) RED".format(
                index, campaign_seed))
            if not args.keep_going:
                break
        index += 1

    report = {
        "base_seed": args.seed,
        "campaigns": len(campaigns),
        "green": sum(1 for c in campaigns if c["ok"]),
        "red_seeds": [c["seed"] for c in campaigns if not c["ok"]],
        "rounds": sum(len(c["rounds"]) for c in campaigns),
        "duration_s": round(time.monotonic() - started, 3),
        "ok": bool(campaigns) and all(c["ok"] for c in campaigns),
        "results": campaigns,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print("soak: report written to {}".format(args.output))
    print(
        "soak: {}/{} campaign(s) green, {} round(s) in {:.1f}s -> "
        "{}".format(
            report["green"], report["campaigns"], report["rounds"],
            report["duration_s"],
            "GREEN" if report["ok"] else
            "RED (seeds {})".format(report["red_seeds"]),
        )
    )
    return 0 if report["ok"] else EXIT_SOAK_FAILED


if __name__ == "__main__":
    sys.exit(main())
