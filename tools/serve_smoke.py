#!/usr/bin/env python
"""End-to-end smoke of ``repro serve``: the CI gate for the service.

One real ``repro serve`` subprocess is driven through the full
robustness story in a few seconds:

1. **start** — the server comes up on an ephemeral port and answers
   ``/healthz``.
2. **burst** — 8 concurrent clients submit wait-mode compiles; one of
   them carries a ``service.worker:crash`` fault, so its worker dies
   mid-request (exit 70).  The crashed job must settle as a typed
   ``failed`` result after the retry budget — never a hang — while
   every clean job still compiles ``ok`` on the respawned pool.
3. **shed** — a burst past the per-client token bound must answer
   with a typed 429, and the refusal must not leak a token.
4. **drain** — ``POST /drain`` with the pool warm: the server must
   exit 0, leave zero orphan worker pids, and journal every accepted
   job to the run ledger.

Any violated expectation prints ``FAIL: ...`` and exits 1, so this
script doubles as a CI gate (``make serve-smoke``).

Run:  PYTHONPATH=src python tools/serve_smoke.py
"""

import json
import os
import sys
import tempfile
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_serve import ServeProc, pid_is_live, unique_source  # noqa: E402

CLIENTS = 8
CRASH_CLIENT = 3  # the one burst client whose worker is killed


def main():
    problems = []
    ledger_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-serve-smoke-"), "serve.jsonl"
    )
    server = ServeProc(
        "--pool-size", "2",
        "--retries", "1",
        "--per-client-depth", "1",
        "--allow-request-faults",
        "--no-cache",
        "--ledger", ledger_path,
    )
    try:
        # -- 1. start ---------------------------------------------------
        health = server.healthz()
        print("healthz:", json.dumps({
            "status": health.get("status"),
            "draining": health.get("dispatcher", {}).get("draining"),
        }))
        if health.get("status") != "ok":
            problems.append("healthz status {!r}".format(health.get("status")))
        live_before = list(
            health.get("dispatcher", {}).get("worker_pids", [])
        )

        # -- 2. concurrent burst with one injected worker crash ---------
        results = [None] * CLIENTS

        def one_client(index):
            doc = {
                "name": "smoke-{}".format(index),
                "text": unique_source(index),
                "client": "client-{}".format(index),
                "wait": True,
            }
            if index == CRASH_CLIENT:
                doc["faults"] = "service.worker:crash"
            results[index] = server.post("/submit", doc, timeout=60.0)

        threads = [
            threading.Thread(target=one_client, args=(i,))
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        ok = crashed = 0
        accepted_ids = set()
        for index, entry in enumerate(results):
            if entry is None:
                problems.append("client {} got no response".format(index))
                continue
            status_code, body = entry
            if status_code != 200:
                problems.append(
                    "client {} got HTTP {}: {}".format(
                        index, status_code, body
                    )
                )
                continue
            accepted_ids.add(body.get("job_id"))
            if index == CRASH_CLIENT:
                if body.get("status") == "failed" and \
                        "crash" in body.get("kinds", []):
                    crashed += 1
                else:
                    problems.append(
                        "crash job settled {!r} (kinds {})".format(
                            body.get("status"), body.get("kinds")
                        )
                    )
            elif body.get("status") == "ok":
                ok += 1
            else:
                problems.append(
                    "clean job {} settled {!r}: {}".format(
                        index, body.get("status"), body.get("message")
                    )
                )
        print("burst:", json.dumps({
            "clients": CLIENTS, "ok": ok, "crash_contained": crashed,
        }))

        # The crash must have been contained: the pool replaced the
        # dead worker and still answers.
        health = server.healthz()
        live_after = list(
            health.get("dispatcher", {}).get("worker_pids", [])
        )
        if health.get("status") != "ok":
            problems.append("pool unhealthy after worker crash")
        dead_still_listed = [
            pid for pid in live_after if not pid_is_live(pid)
        ]
        if dead_still_listed:
            problems.append(
                "healthz lists dead worker pids {}".format(dead_still_listed)
            )

        # -- 3. typed shed past the per-client bound --------------------
        slow = {
            "name": "smoke-slow",
            "text": unique_source(100),
            "client": "greedy",
            "faults": "service.worker:stall=2.0",
        }
        status_code, body = server.post("/submit", slow, timeout=10.0)
        if status_code != 202:
            problems.append(
                "slow submit got HTTP {} (want 202)".format(status_code)
            )
        else:
            accepted_ids.add(body.get("job_id"))
        status_code, body = server.post("/submit", dict(slow), timeout=10.0)
        if status_code != 429 or body.get("error") != "client-queue-full":
            problems.append(
                "over-bound submit got HTTP {} / {!r} "
                "(want typed 429)".format(status_code, body.get("error"))
            )
        print("shed:", json.dumps({
            "status": status_code, "error": body.get("error"),
        }))

        # -- 4. graceful drain: exit 0, no orphans, full ledger ---------
        exit_code, tail = server.drain()
        print("drain:", json.dumps({"exit_code": exit_code}))
        if exit_code != 0:
            problems.append(
                "drain exit code {} (want 0); tail: {}".format(
                    exit_code, tail.strip().splitlines()[-3:]
                )
            )
        orphans = [
            pid for pid in set(live_before + live_after)
            if pid_is_live(pid)
        ]
        if orphans:
            problems.append("orphan worker pids after drain: {}".format(
                orphans
            ))
        with open(ledger_path) as handle:
            ledgered = {
                json.loads(line)["task_id"]
                for line in handle if line.strip()
            }
        missing = accepted_ids - ledgered
        if missing:
            problems.append("accepted jobs missing from ledger: {}".format(
                sorted(missing)
            ))
        print("ledger:", json.dumps({
            "accepted": len(accepted_ids),
            "ledgered": len(ledgered & accepted_ids),
        }))
    finally:
        server.kill_if_alive()

    if problems:
        for problem in problems:
            print("FAIL:", problem)
        return 1
    print("serve smoke passed: crash contained, typed shed, clean drain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
