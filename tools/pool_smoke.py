#!/usr/bin/env python
"""Warm-pool + compile-cache smoke: the `make pool-smoke` entry point.

Pushes a 200-task fuzz batch through `repro batch` on the persistent
worker pool with a small recycling bound (so max-tasks recycling
actually fires) and a disk cache, then proves the two reuse paths:

1. **cold** — 200 tasks compile on the pool, exit 0; recycling spawned
   more workers than ``--max-workers`` and reaped every one of them;
2. **resume** — the same batch against its own ledger recompiles
   nothing (the ledger wins before the cache is even consulted);
3. **warm cache** — a fresh ledger against the same ``--cache-dir``
   serves (almost) everything from the cache without dispatching a
   worker; only non-cacheable outcomes (degraded tasks) recompile.

Run:  PYTHONPATH=src python tools/pool_smoke.py
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

N_TASKS = 200
WORKERS = 4
MAX_TASKS_PER_WORKER = 30  # forces >= 7 recycles across 200 tasks


def run_batch(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "batch", "--json-summary",
         "--metrics", "--fuzz", str(N_TASKS),
         "--max-workers", str(WORKERS),
         "--max-tasks-per-worker", str(MAX_TASKS_PER_WORKER)]
        + list(args),
        env=env, cwd=cwd, capture_output=True, text=True,
    )
    summary = None
    if proc.stdout.strip().startswith("{"):
        summary = json.loads(proc.stdout)
    return proc.returncode, summary, proc.stderr


def expect(condition, what):
    if not condition:
        raise SystemExit("pool-smoke FAILED: {}".format(what))
    print("  ok: {}".format(what))


def pid_is_live(pid):
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def main():
    workdir = tempfile.mkdtemp(prefix="pool-smoke-")
    try:
        ledger = os.path.join(workdir, "run.jsonl")
        cache_dir = os.path.join(workdir, "cache")

        print("[1/3] cold batch on the pool (with recycling)")
        code, summary, stderr = run_batch(
            "--ledger", ledger, "--cache-dir", cache_dir, cwd=workdir
        )
        expect(code == 0, "cold batch exits 0 (stderr: %r)" % stderr[-200:])
        counts = summary["counts"]
        expect(counts["compiled"] == N_TASKS,
               "all {} tasks compiled".format(N_TASKS))
        expect(counts["cached"] == 0, "nothing served from a cold cache")
        expect(summary["cache"]["stores"] > 0, "the cache was populated")
        spawned = summary["metrics"]["counters"].get("pool.spawned", 0)
        expect(spawned > WORKERS,
               "max-tasks recycling spawned replacements "
               "({} workers for a pool of {})".format(int(spawned), WORKERS))
        pids = [p for t in summary["tasks"] for p in t["pids"]]
        expect(pids and not any(pid_is_live(p) for p in pids),
               "no orphan pool workers ({} pids reaped)".format(len(pids)))

        print("[2/3] resume recompiles nothing")
        code, summary, _ = run_batch(
            "--resume", ledger, "--cache-dir", cache_dir, cwd=workdir
        )
        expect(code == 0, "resumed batch exits 0")
        counts = summary["counts"]
        expect(counts["resumed"] == N_TASKS, "every task resumed")
        expect(counts["compiled"] == 0 and counts["cached"] == 0,
               "the ledger wins before the cache is consulted")

        print("[3/3] warm cache serves a fresh ledger")
        code, summary, _ = run_batch(
            "--ledger", os.path.join(workdir, "run2.jsonl"),
            "--cache-dir", cache_dir, cwd=workdir,
        )
        expect(code == 0, "warm batch exits 0")
        counts = summary["counts"]
        expect(counts["cached"] + counts["compiled"] == N_TASKS,
               "every task settled")
        expect(counts["cached"] >= N_TASKS - 10,
               "cache served {} of {} (only non-cacheable outcomes "
               "recompile)".format(counts["cached"], N_TASKS))
        expect(summary["cache"]["hits_disk"] == counts["cached"],
               "hits came from the disk tier")

        print("pool-smoke PASSED")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
