#!/usr/bin/env python
"""Run the pipeline benchmark and write a BENCH_*.json result file.

Thin wrapper over ``repro.bench`` (the same code behind
``python -m repro bench``) with the output path defaulted so Makefile
targets and CI stay one-liners.

Run:  PYTHONPATH=src python tools/bench_run.py [-o BENCH_pr1.json]
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench import DEFAULT_SIZES, format_bench, run_bench, write_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_pr1.json",
        help="result file (default: BENCH_pr1.json)",
    )
    parser.add_argument(
        "--sizes", default=None,
        help="comma-separated workload sizes (default: {})".format(
            ",".join(str(s) for s in DEFAULT_SIZES)
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    sizes = (
        tuple(int(s) for s in args.sizes.split(",")) if args.sizes
        else DEFAULT_SIZES
    )
    rows = run_bench(sizes=sizes, repeats=args.repeats)
    print(format_bench(rows))
    write_bench(args.output, rows)
    print("wrote {}".format(args.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
