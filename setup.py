"""Setuptools shim for environments without PEP 660 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["networkx>=2.6", "numpy>=1.20"],
)
