"""Region-level scheduling across plausible basic blocks.

Section 3 of the paper extends the framework "to cover scheduling
across basic block boundaries": within a region of control-equivalent
blocks the control-dependence edges are logically ignored and the
region is scheduled as one block.  This module provides

* :func:`schedule_region` — a joint schedule of a region's instructions
  (data dependences across the blocks respected, block boundaries
  ignored);
* :func:`simulate_regions` — region-level timing of a whole function,
  the global counterpart of :func:`repro.sched.simulator.simulate_function`;
* :func:`merge_plausible_blocks` — a normalization pass that physically
  fuses a region of straight-line-connected blocks into one block, so
  the single-block machinery applies verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.regions import Region, schedule_regions
from repro.deps.schedule_graph import region_schedule_graph
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.machine.model import MachineDescription
from repro.sched.list_scheduler import Schedule, list_schedule


@dataclass
class RegionTiming:
    """Joint timing of one region."""

    region: Region
    schedule: Schedule
    critical_path: int

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


@dataclass
class GlobalSimulationResult:
    """Region-level timing for a function."""

    function: str
    machine: MachineDescription
    regions: List[RegionTiming] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(r.makespan for r in self.regions)


def schedule_region(
    fn: Function,
    region: Region,
    machine: MachineDescription,
) -> RegionTiming:
    """Jointly schedule all instructions of *region*."""
    sg = region_schedule_graph(fn, region.blocks, machine=machine)
    schedule = list_schedule(sg, machine)
    return RegionTiming(
        region=region,
        schedule=schedule,
        critical_path=sg.critical_path_length(),
    )


def simulate_regions(
    fn: Function, machine: MachineDescription
) -> GlobalSimulationResult:
    """Time *fn* region by region (regions found via dom/postdom
    plausibility); the benefit over per-block timing is exactly the
    cross-block parallelism region scheduling exposes."""
    result = GlobalSimulationResult(function=fn.name, machine=machine)
    for region in schedule_regions(fn):
        blocks = [fn.block(name) for name in region.blocks]
        if any(b.instructions for b in blocks):
            result.regions.append(schedule_region(fn, region, machine))
    return result


def merge_plausible_blocks(fn: Function) -> Function:
    """Fuse regions of consecutive blocks linked by unconditional
    branches into single blocks.

    Only the safest shape is fused: block A ends in ``br B`` (or falls
    through), B is A's sole successor, A is B's sole predecessor, and
    both are in one plausibility region.  The intermediate branch is
    dropped.  The result lets the per-block parallelizable interference
    graph see the whole region, which is how the paper's global
    extension is exercised end to end.
    """
    regions = schedule_regions(fn)
    region_of = {}
    for region in regions:
        for name in region.blocks:
            region_of[name] = region.index

    merged = Function(fn.name, live_out=fn.live_out)
    skip = set()
    name_map = {}

    blocks = fn.blocks()
    for block in blocks:
        if block.name in skip:
            continue
        chain = [block]
        current = block
        while True:
            succs = fn.successors(current)
            if len(succs) != 1:
                break
            nxt = succs[0]
            if len(fn.predecessors(nxt)) != 1:
                break
            if region_of.get(nxt.name) != region_of.get(block.name):
                break
            term = current.terminator
            if term is not None and term.opcode is not Opcode.BR:
                break
            chain.append(nxt)
            skip.add(nxt.name)
            current = nxt

        fused = BasicBlock(block.name)
        for idx, member in enumerate(chain):
            instrs = member.instructions
            if idx < len(chain) - 1 and member.terminator is not None:
                instrs = instrs[:-1]  # drop the intermediate branch
            fused.instructions.extend(instrs)
        merged.add_block(fused, entry=(block.name == fn.entry.name))
        for member in chain:
            name_map[member.name] = block.name

    for block in blocks:
        if block.name in skip:
            continue
        tail = block
        # The chain's last member determines outgoing edges.
        while True:
            succs = fn.successors(tail)
            if (
                len(succs) == 1
                and len(fn.predecessors(succs[0])) == 1
                and succs[0].name in skip
                and name_map.get(succs[0].name) == block.name
            ):
                tail = succs[0]
            else:
                break
        for succ in fn.successors(tail):
            merged.add_edge(block.name, name_map.get(succ.name, succ.name))
    return merged
