"""Cycle-level execution measurement of (allocated) programs.

The paper's promised evaluation compares machine utilization across
phase orderings.  This module supplies the measurement substrate the
original authors had in hardware: given a program *as it stands* (with
whatever anti/output dependences its register assignment created),
build its dependence graph, schedule it, and report cycles.

Two issue models:

* :func:`simulate_block` / :func:`simulate_function` — a post-pass list
  scheduler reorders freely within dependences (the compiler-scheduler
  model, default);
* ``reorder=False`` — strict in-order issue (shows the raw cost of
  false dependences without any scheduler help).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.deps.schedule_graph import block_schedule_graph
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.machine.model import MachineDescription
from repro.sched.list_scheduler import (
    Schedule,
    inorder_issue_schedule,
    list_schedule,
)


@dataclass
class BlockTiming:
    """Timing of one block under the chosen issue model."""

    block: str
    schedule: Schedule
    critical_path: int

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def utilization(self) -> float:
        """Issued instructions per issue cycle, normalized by width."""
        span = self.schedule.issue_span
        if span == 0:
            return 0.0
        width = self.schedule.machine.issue_width
        return len(self.schedule.cycle_of) / (span * width)


@dataclass
class SimulationResult:
    """Aggregate timing of a function.

    ``total_cycles`` sums block makespans in layout order — the
    straight-line execution estimate used by the strategy benches
    (block frequencies are all 1; the workload generators produce
    acyclic programs where that is exact for one pass).
    ``weighted_cycles`` scales each block by ``10 ** loop_depth``,
    matching the spill-cost model: loop bodies dominate runtime.
    """

    function: str
    machine: MachineDescription
    blocks: List[BlockTiming] = field(default_factory=list)
    block_weights: Dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return sum(b.makespan for b in self.blocks)

    @property
    def weighted_cycles(self) -> int:
        return sum(
            b.makespan * self.block_weights.get(b.block, 1)
            for b in self.blocks
        )

    @property
    def critical_path(self) -> int:
        return sum(b.critical_path for b in self.blocks)

    def block_timing(self, name: str) -> BlockTiming:
        for timing in self.blocks:
            if timing.block == name:
                return timing
        raise KeyError(name)


def simulate_block(
    block: BasicBlock,
    machine: MachineDescription,
    reorder: bool = True,
) -> BlockTiming:
    """Time one block: dependence graph of the code *as written* (so an
    allocated block carries its anti/output edges), then schedule."""
    sg = block_schedule_graph(block, machine=machine)
    if reorder:
        schedule = list_schedule(sg, machine)
    else:
        schedule = inorder_issue_schedule(block.instructions, sg, machine)
    return BlockTiming(
        block=block.name,
        schedule=schedule,
        critical_path=sg.critical_path_length(),
    )


def simulate_function(
    fn: Function,
    machine: MachineDescription,
    reorder: bool = True,
) -> SimulationResult:
    """Time every block of *fn* independently and aggregate.

    ``result.block_weights`` carries ``10 ** loop_depth`` per block so
    ``weighted_cycles`` reflects that loop bodies run many times.
    """
    from repro.analysis.loops import loop_nesting_depth

    depth = loop_nesting_depth(fn)
    result = SimulationResult(
        function=fn.name,
        machine=machine,
        block_weights={
            name: 10 ** d for name, d in depth.items()
        },
    )
    for block in fn.blocks():
        if block.instructions:
            result.blocks.append(simulate_block(block, machine, reorder=reorder))
    return result
