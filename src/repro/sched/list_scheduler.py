"""List scheduling under machine resource constraints.

The Gibbons–Muchnick-style scheduler the paper cites ([9]): walk cycles
forward; at each cycle issue, in priority order, ready instructions the
reservation table accepts.  Priority is critical-path height (longest
delay-weighted path to any sink), the standard choice; ties break on
program order for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.machine.resources import ReservationTable
from repro.utils.errors import SchedulingError

PriorityFn = Callable[[Instruction], float]


@dataclass
class Schedule:
    """A complete cycle assignment for one instruction sequence.

    Attributes:
        cycle_of: Instruction → issue cycle (0-based).
        machine: The machine it was scheduled for.
    """

    cycle_of: Dict[Instruction, int]
    machine: MachineDescription

    @property
    def makespan(self) -> int:
        """Completion time in cycles: latest issue plus its latency."""
        if not self.cycle_of:
            return 0
        return max(
            cycle + self.machine.latency_of(instr)
            for instr, cycle in self.cycle_of.items()
        )

    @property
    def issue_span(self) -> int:
        """Number of issue cycles used (last issue cycle + 1)."""
        if not self.cycle_of:
            return 0
        return max(self.cycle_of.values()) + 1

    def cycles(self) -> List[List[Instruction]]:
        """Instructions grouped by issue cycle (uid-ordered in a cycle)."""
        result: List[List[Instruction]] = [[] for _ in range(self.issue_span)]
        for instr, cycle in self.cycle_of.items():
            result[cycle].append(instr)
        for group in result:
            group.sort(key=lambda i: i.uid)
        return result

    def instructions_in_order(self) -> List[Instruction]:
        """Flat instruction list in (cycle, uid) order."""
        return [instr for group in self.cycles() for instr in group]

    def parallel_pairs(self) -> List[Tuple[Instruction, Instruction]]:
        """Instruction pairs issued in the same cycle."""
        pairs = []
        for group in self.cycles():
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    pairs.append((a, b))
        return pairs

    def verify(self, sg: ScheduleGraph) -> None:
        """Check every dependence edge and resource constraint holds.

        Raises:
            SchedulingError: on the first violation.
        """
        for u, v in sg.edges():
            required = self.cycle_of[u] + sg.delay(u, v)
            if self.cycle_of[v] < required:
                raise SchedulingError(
                    "edge {} -> {} violated: {} < {}".format(
                        u, v, self.cycle_of[v], required
                    )
                )
        table = ReservationTable(self.machine)
        for instr, cycle in sorted(
            self.cycle_of.items(), key=lambda kv: (kv[1], kv[0].uid)
        ):
            table.issue(instr, cycle)  # raises if over-subscribed

    def format_timeline(self) -> str:
        """Human-readable cycle-by-cycle listing for the examples."""
        lines = []
        for cycle, group in enumerate(self.cycles()):
            text = "; ".join(str(i) for i in group) if group else "(stall)"
            lines.append("cycle {:>3}: {}".format(cycle, text))
        return "\n".join(lines)


def critical_path_priority(sg: ScheduleGraph) -> PriorityFn:
    """Priority = delay-weighted height above the sinks; instructions
    heading long chains schedule first."""
    height: Dict[Instruction, float] = {}
    for instr in reversed(sg.topological_order()):
        best = float(
            sg.machine.latency_of(instr) if sg.machine else instr.latency
        )
        for succ in sg.graph.successors(instr):
            best = max(best, sg.delay(instr, succ) + height[succ])
        height[instr] = best

    def priority(instr: Instruction) -> float:
        return height[instr]

    return priority


def list_schedule(
    sg: ScheduleGraph,
    machine: MachineDescription,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Schedule *sg* onto *machine*.

    Returns a verified :class:`Schedule` (every dependence delay and
    resource constraint respected).
    """
    sg.check_acyclic()
    if priority is None:
        priority = critical_path_priority(sg)

    table = ReservationTable(machine)
    cycle_of: Dict[Instruction, int] = {}
    ready_at: Dict[Instruction, int] = {}
    remaining_preds: Dict[Instruction, int] = {
        instr: sg.graph.in_degree(instr) for instr in sg.instructions
    }
    ready: List[Instruction] = [
        instr for instr in sg.instructions if remaining_preds[instr] == 0
    ]
    for instr in ready:
        ready_at[instr] = 0

    cycle = 0
    unscheduled = len(sg.instructions)
    guard = 0
    max_cycles = (
        sum(machine.latency_of(i) for i in sg.instructions) + len(sg.instructions) + 1
    )
    while unscheduled:
        guard += 1
        if guard > max_cycles * 2 + 10:
            raise SchedulingError("list scheduler failed to make progress")
        # Issue until the cycle saturates.  The inner repeat matters
        # for delay-0 (anti) edges: issuing u may make v ready in the
        # *same* cycle — exactly the co-issue the open-interval
        # convention allows.
        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (i for i in ready if ready_at[i] <= cycle),
                key=lambda i: (-priority(i), i.uid),
            )
            for instr in candidates:
                if table.can_issue(instr, cycle):
                    table.issue(instr, cycle)
                    cycle_of[instr] = cycle
                    ready.remove(instr)
                    unscheduled -= 1
                    progress = True
                    for succ in sg.graph.successors(instr):
                        remaining_preds[succ] -= 1
                        earliest = cycle + sg.delay(instr, succ)
                        ready_at[succ] = max(ready_at.get(succ, 0), earliest)
                        if remaining_preds[succ] == 0:
                            ready.append(succ)
        cycle += 1

    schedule = Schedule(cycle_of=cycle_of, machine=machine)
    schedule.verify(sg)
    return schedule


class _CompactReservation:
    """Index-domain twin of :class:`ReservationTable`: unit kind,
    capacity, latency, and memory flags are precomputed into flat
    arrays, so ``can_issue`` is counter lookups instead of repeated
    machine-model dispatch.  Same admission semantics, including the
    missing-unit error and the same-address memory constraint."""

    def __init__(self, machine: MachineDescription, instructions) -> None:
        self.machine = machine
        self.instrs = list(instructions)
        self.kind = [machine.unit_for(i) for i in self.instrs]
        self.cap = [machine.unit_count(k) for k in self.kind]
        self.lat = [machine.latency_of(i) for i in self.instrs]
        self.is_mem = [i.is_memory_access for i in self.instrs]
        self.width = machine.issue_width
        self.pipelined = machine.pipelined
        self._issued: Dict[int, int] = {}
        self._unit_busy: Dict[Tuple[int, object], int] = {}
        self._mem_in_cycle: Dict[int, List[int]] = {}

    def _occupancy(self, idx: int, cycle: int):
        if self.pipelined:
            return (cycle,)
        return range(cycle, cycle + self.lat[idx])

    def can_issue(self, idx: int, cycle: int) -> bool:
        if self._issued.get(cycle, 0) >= self.width:
            return False
        if self.cap[idx] < 1:
            raise SchedulingError(
                "machine {!r} has no {} unit for {}".format(
                    self.machine.name,
                    self.kind[idx].value,
                    self.instrs[idx],
                )
            )
        busy = self._unit_busy
        kind = self.kind[idx]
        for c in self._occupancy(idx, cycle):
            if busy.get((c, kind), 0) >= self.cap[idx]:
                return False
        if self.is_mem[idx]:
            conflict = MachineDescription._same_address_conflict
            instr = self.instrs[idx]
            for other in self._mem_in_cycle.get(cycle, ()):
                if conflict(instr, self.instrs[other]):
                    return False
        return True

    def issue(self, idx: int, cycle: int) -> None:
        self._issued[cycle] = self._issued.get(cycle, 0) + 1
        kind = self.kind[idx]
        busy = self._unit_busy
        for c in self._occupancy(idx, cycle):
            busy[(c, kind)] = busy.get((c, kind), 0) + 1
        if self.is_mem[idx]:
            self._mem_in_cycle.setdefault(cycle, []).append(idx)


def compact_list_schedule(
    sg: ScheduleGraph,
    machine: MachineDescription,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Array-based fast path of :func:`list_schedule`.

    Bit-identical output (the equivalence suite pins it): same
    priority, same (-priority, uid) candidate order, same per-cycle
    pass semantics.  The speed comes from three changes that provably
    cannot alter the result: candidates wait in a heap keyed by ready
    cycle instead of being re-filtered and re-sorted from the whole
    ready list every pass; a candidate the reservation table rejects is
    not retried within the same cycle (table occupancy only grows
    during a cycle, so a failed ``can_issue`` cannot succeed until the
    cycle advances); and cycles with no ready candidates are skipped in
    one step instead of iterated.

    *priority* must be a pure function of the instruction (the default
    critical-path priority is); it is evaluated once per instruction.
    """
    sg.check_acyclic()
    if priority is None:
        priority = critical_path_priority(sg)

    import heapq

    instrs = list(sg.instructions)
    n = len(instrs)
    if not n:
        return Schedule(cycle_of={}, machine=machine)
    pos = {instr: k for k, instr in enumerate(instrs)}
    neg_prio = [-float(priority(i)) for i in instrs]
    uids = [i.uid for i in instrs]
    succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    indeg = [0] * n
    for u, v in sg.edges():
        ui, vi = pos[u], pos[v]
        succs[ui].append((vi, sg.delay(u, v)))
        indeg[vi] += 1

    table = _CompactReservation(machine, instrs)
    ready_at = [0] * n
    cycle_of_idx = [-1] * n
    pending: List[Tuple[int, float, int, int]] = [
        (0, neg_prio[k], uids[k], k) for k in range(n) if indeg[k] == 0
    ]
    heapq.heapify(pending)
    blocked: List[Tuple[float, int, int]] = []

    cycle = 0
    scheduled = 0
    max_cycles = sum(table.lat) + n + 1
    while scheduled < n:
        if cycle > max_cycles * 2 + 10:
            raise SchedulingError("list scheduler failed to make progress")
        batch = blocked
        blocked = []
        while pending and pending[0][0] <= cycle:
            _, negp, uid, idx = heapq.heappop(pending)
            batch.append((negp, uid, idx))
        if not batch:
            if not pending:
                raise SchedulingError(
                    "list scheduler failed to make progress"
                )
            cycle = max(cycle + 1, pending[0][0])
            continue
        batch.sort()
        current = batch
        while current:
            fresh: List[Tuple[float, int, int]] = []
            for entry in current:
                idx = entry[2]
                if not table.can_issue(idx, cycle):
                    blocked.append(entry)
                    continue
                table.issue(idx, cycle)
                cycle_of_idx[idx] = cycle
                scheduled += 1
                for s, delay in succs[idx]:
                    earliest = cycle + delay
                    if ready_at[s] < earliest:
                        ready_at[s] = earliest
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        if ready_at[s] <= cycle:
                            fresh.append((neg_prio[s], uids[s], s))
                        else:
                            heapq.heappush(
                                pending,
                                (ready_at[s], neg_prio[s], uids[s], s),
                            )
            fresh.sort()
            current = fresh
        cycle += 1

    schedule = Schedule(
        cycle_of={instrs[k]: cycle_of_idx[k] for k in range(n)},
        machine=machine,
    )
    schedule.verify(sg)
    return schedule


def inorder_issue_schedule(
    instructions: Sequence[Instruction],
    sg: ScheduleGraph,
    machine: MachineDescription,
) -> Schedule:
    """Schedule *instructions* in strict program order (no reordering).

    Models an in-order superscalar front end: each instruction issues
    at the earliest cycle >= its predecessors' requirements, resources
    permitting, and never before an earlier instruction's issue cycle.
    This is the "no scheduler" baseline — the cost of false dependences
    shows up here directly as lost dual-issue.
    """
    table = ReservationTable(machine)
    cycle_of: Dict[Instruction, int] = {}
    floor = 0
    for instr in instructions:
        earliest = floor
        for pred in sg.graph.predecessors(instr):
            if pred in cycle_of:
                earliest = max(earliest, cycle_of[pred] + sg.delay(pred, instr))
        cycle = earliest
        while not table.can_issue(instr, cycle):
            cycle += 1
        table.issue(instr, cycle)
        cycle_of[instr] = cycle
        floor = cycle  # later instructions may co-issue but not jump back
    schedule = Schedule(cycle_of=cycle_of, machine=machine)
    schedule.verify(sg)
    return schedule
