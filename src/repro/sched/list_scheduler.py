"""List scheduling under machine resource constraints.

The Gibbons–Muchnick-style scheduler the paper cites ([9]): walk cycles
forward; at each cycle issue, in priority order, ready instructions the
reservation table accepts.  Priority is critical-path height (longest
delay-weighted path to any sink), the standard choice; ties break on
program order for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.machine.resources import ReservationTable
from repro.utils.errors import SchedulingError

PriorityFn = Callable[[Instruction], float]


@dataclass
class Schedule:
    """A complete cycle assignment for one instruction sequence.

    Attributes:
        cycle_of: Instruction → issue cycle (0-based).
        machine: The machine it was scheduled for.
    """

    cycle_of: Dict[Instruction, int]
    machine: MachineDescription

    @property
    def makespan(self) -> int:
        """Completion time in cycles: latest issue plus its latency."""
        if not self.cycle_of:
            return 0
        return max(
            cycle + self.machine.latency_of(instr)
            for instr, cycle in self.cycle_of.items()
        )

    @property
    def issue_span(self) -> int:
        """Number of issue cycles used (last issue cycle + 1)."""
        if not self.cycle_of:
            return 0
        return max(self.cycle_of.values()) + 1

    def cycles(self) -> List[List[Instruction]]:
        """Instructions grouped by issue cycle (uid-ordered in a cycle)."""
        result: List[List[Instruction]] = [[] for _ in range(self.issue_span)]
        for instr, cycle in self.cycle_of.items():
            result[cycle].append(instr)
        for group in result:
            group.sort(key=lambda i: i.uid)
        return result

    def instructions_in_order(self) -> List[Instruction]:
        """Flat instruction list in (cycle, uid) order."""
        return [instr for group in self.cycles() for instr in group]

    def parallel_pairs(self) -> List[Tuple[Instruction, Instruction]]:
        """Instruction pairs issued in the same cycle."""
        pairs = []
        for group in self.cycles():
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    pairs.append((a, b))
        return pairs

    def verify(self, sg: ScheduleGraph) -> None:
        """Check every dependence edge and resource constraint holds.

        Raises:
            SchedulingError: on the first violation.
        """
        for u, v in sg.edges():
            required = self.cycle_of[u] + sg.delay(u, v)
            if self.cycle_of[v] < required:
                raise SchedulingError(
                    "edge {} -> {} violated: {} < {}".format(
                        u, v, self.cycle_of[v], required
                    )
                )
        table = ReservationTable(self.machine)
        for instr, cycle in sorted(
            self.cycle_of.items(), key=lambda kv: (kv[1], kv[0].uid)
        ):
            table.issue(instr, cycle)  # raises if over-subscribed

    def format_timeline(self) -> str:
        """Human-readable cycle-by-cycle listing for the examples."""
        lines = []
        for cycle, group in enumerate(self.cycles()):
            text = "; ".join(str(i) for i in group) if group else "(stall)"
            lines.append("cycle {:>3}: {}".format(cycle, text))
        return "\n".join(lines)


def critical_path_priority(sg: ScheduleGraph) -> PriorityFn:
    """Priority = delay-weighted height above the sinks; instructions
    heading long chains schedule first."""
    height: Dict[Instruction, float] = {}
    for instr in reversed(sg.topological_order()):
        best = float(
            sg.machine.latency_of(instr) if sg.machine else instr.latency
        )
        for succ in sg.graph.successors(instr):
            best = max(best, sg.delay(instr, succ) + height[succ])
        height[instr] = best

    def priority(instr: Instruction) -> float:
        return height[instr]

    return priority


def list_schedule(
    sg: ScheduleGraph,
    machine: MachineDescription,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Schedule *sg* onto *machine*.

    Returns a verified :class:`Schedule` (every dependence delay and
    resource constraint respected).
    """
    sg.check_acyclic()
    if priority is None:
        priority = critical_path_priority(sg)

    table = ReservationTable(machine)
    cycle_of: Dict[Instruction, int] = {}
    ready_at: Dict[Instruction, int] = {}
    remaining_preds: Dict[Instruction, int] = {
        instr: sg.graph.in_degree(instr) for instr in sg.instructions
    }
    ready: List[Instruction] = [
        instr for instr in sg.instructions if remaining_preds[instr] == 0
    ]
    for instr in ready:
        ready_at[instr] = 0

    cycle = 0
    unscheduled = len(sg.instructions)
    guard = 0
    max_cycles = (
        sum(machine.latency_of(i) for i in sg.instructions) + len(sg.instructions) + 1
    )
    while unscheduled:
        guard += 1
        if guard > max_cycles * 2 + 10:
            raise SchedulingError("list scheduler failed to make progress")
        # Issue until the cycle saturates.  The inner repeat matters
        # for delay-0 (anti) edges: issuing u may make v ready in the
        # *same* cycle — exactly the co-issue the open-interval
        # convention allows.
        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (i for i in ready if ready_at[i] <= cycle),
                key=lambda i: (-priority(i), i.uid),
            )
            for instr in candidates:
                if table.can_issue(instr, cycle):
                    table.issue(instr, cycle)
                    cycle_of[instr] = cycle
                    ready.remove(instr)
                    unscheduled -= 1
                    progress = True
                    for succ in sg.graph.successors(instr):
                        remaining_preds[succ] -= 1
                        earliest = cycle + sg.delay(instr, succ)
                        ready_at[succ] = max(ready_at.get(succ, 0), earliest)
                        if remaining_preds[succ] == 0:
                            ready.append(succ)
        cycle += 1

    schedule = Schedule(cycle_of=cycle_of, machine=machine)
    schedule.verify(sg)
    return schedule


def inorder_issue_schedule(
    instructions: Sequence[Instruction],
    sg: ScheduleGraph,
    machine: MachineDescription,
) -> Schedule:
    """Schedule *instructions* in strict program order (no reordering).

    Models an in-order superscalar front end: each instruction issues
    at the earliest cycle >= its predecessors' requirements, resources
    permitting, and never before an earlier instruction's issue cycle.
    This is the "no scheduler" baseline — the cost of false dependences
    shows up here directly as lost dual-issue.
    """
    table = ReservationTable(machine)
    cycle_of: Dict[Instruction, int] = {}
    floor = 0
    for instr in instructions:
        earliest = floor
        for pred in sg.graph.predecessors(instr):
            if pred in cycle_of:
                earliest = max(earliest, cycle_of[pred] + sg.delay(pred, instr))
        cycle = earliest
        while not table.can_issue(instr, cycle):
            cycle += 1
        table.issue(instr, cycle)
        cycle_of[instr] = cycle
        floor = cycle  # later instructions may co-issue but not jump back
    schedule = Schedule(cycle_of=cycle_of, machine=machine)
    schedule.verify(sg)
    return schedule
