"""EP numbers — earliest-possible scheduling times with machine-driven
postponement.

From the paper's Section 4: the graph "is first extended by adding to
every node v a number EP(v) representing the earliest possible time for
scheduling v (in [7] EP stands for early partition).  The EP numbers
are computed from the scheduling graph (G_s); during this stage the
delay numbers on the edges ... may be used for generating more
accurate EP numbers."  The refinement loop then handles machine
limitations: "Whenever all the operations with the same EP number
cannot be scheduled together (machine limitations) select the
operations to be postponed; increase the EP number of each node in the
postponed set and update the EP numbers on all the paths (in G_s)
leaving the node."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.deps.schedule_graph import ScheduleGraph
from repro.deps.transitive import earliest_start_times, slack
from repro.ir.instructions import Instruction
from repro.ir.opcodes import UnitKind
from repro.machine.model import MachineDescription
from repro.utils.errors import SchedulingError


def initial_ep(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """EP before machine refinement: delay-weighted ASAP times."""
    return earliest_start_times(sg)


def _select_postponed(
    group: List[Instruction],
    machine: MachineDescription,
    keep_priority: Callable[[Instruction], float],
    sg: Optional[ScheduleGraph] = None,
) -> List[Instruction]:
    """Choose which of *group* (all sharing an EP value) to postpone.

    Greedy admission in priority order: an instruction stays if the
    issue width and its unit still have a free slot; everyone else is
    postponed.  Higher *keep_priority* is admitted first (the paper
    suggests favoring instructions "last on a critical path", i.e.
    least slack).

    Instructions with a delay-0 predecessor inside the group are
    admitted last: postponing such a predecessor would drag its
    successor along through propagation (EP[succ] >= EP[pred]) and the
    pair would chase each other forever; postponing the successor
    separates them in one step.
    """
    admitted: List[Instruction] = []
    unit_load: Dict[UnitKind, int] = {}
    postponed: List[Instruction] = []
    group_set = set(group)
    zero_pred_in_group: Dict[Instruction, bool] = {}
    for instr in group:
        zero_pred_in_group[instr] = bool(sg) and any(
            pred in group_set and sg.delay(pred, instr) == 0
            for pred in sg.graph.predecessors(instr)
        )
    ordered = sorted(
        group,
        key=lambda i: (zero_pred_in_group[i], -keep_priority(i), i.uid),
    )
    for instr in ordered:
        kind = machine.unit_for(instr)
        capacity = machine.unit_count(kind)
        if capacity < 1:
            raise SchedulingError(
                "machine {!r} cannot execute {}".format(machine.name, instr)
            )
        if len(admitted) >= machine.issue_width or unit_load.get(kind, 0) >= capacity:
            postponed.append(instr)
            continue
        same_address = any(
            MachineDescription._same_address_conflict(instr, other)
            for other in admitted
        )
        if same_address:
            postponed.append(instr)
            continue
        admitted.append(instr)
        unit_load[kind] = unit_load.get(kind, 0) + 1

    # Closure: an admitted instruction whose delay-0 predecessor was
    # postponed must follow it — otherwise propagation immediately
    # drags it to the next slot anyway and the group never shrinks.
    if sg is not None and postponed:
        changed = True
        while changed:
            changed = False
            postponed_set = set(postponed)
            for instr in list(admitted):
                if any(
                    pred in postponed_set
                    and sg.delay(pred, instr) == 0
                    for pred in sg.graph.predecessors(instr)
                ):
                    admitted.remove(instr)
                    postponed.append(instr)
                    changed = True
    return postponed


def refined_ep(
    sg: ScheduleGraph,
    machine: MachineDescription,
    keep_priority: Optional[Callable[[Instruction], float]] = None,
) -> Dict[Instruction, int]:
    """EP numbers after the paper's postponement fixpoint.

    Args:
        sg: Symbolic-register schedule graph.
        machine: Supplies issue width and unit capacities.
        keep_priority: Instructions to *keep* at their EP slot when the
            slot overflows; defaults to negative slack (critical-path
            instructions stay, slack-rich ones are postponed).

    Returns:
        A map with the property that every EP-equal group fits the
        machine's single-cycle capacity, and every edge (u, v) of G_s
        satisfies ``EP[v] >= EP[u] + delay(u, v)``.
    """
    ep = dict(initial_ep(sg))
    if keep_priority is None:
        slack_map = slack(sg)

        def keep_priority(instr: Instruction) -> float:  # noqa: F811
            return -float(slack_map[instr])

    # Each round slips at least one EP value by one; no EP can exceed
    # N * max_delay, so the fixpoint arrives within N^2 * max_delay.
    max_delay = max(
        (data["delay"] for _u, _v, data in sg.graph.edges(data=True)),
        default=1,
    )
    n = len(sg.instructions)
    max_rounds = n * n * max_delay + n + 1
    for _round in range(max_rounds):
        groups: Dict[int, List[Instruction]] = {}
        for instr in sg.instructions:
            groups.setdefault(ep[instr], []).append(instr)
        overflow_time = None
        for time in sorted(groups):
            postponed = _select_postponed(
                groups[time], machine, keep_priority, sg=sg
            )
            if postponed:
                overflow_time = time
                for instr in postponed:
                    ep[instr] = time + 1
                #

                # Propagate along all paths leaving the postponed nodes.
                _propagate(sg, ep, postponed)
                break
        if overflow_time is None:
            return ep
    raise SchedulingError("EP refinement failed to converge")


def _propagate(
    sg: ScheduleGraph,
    ep: Dict[Instruction, int],
    sources: Sequence[Instruction],
) -> None:
    """Push increased EP values forward through G_s."""
    worklist = list(sources)
    while worklist:
        node = worklist.pop()
        for succ in sg.graph.successors(node):
            required = ep[node] + sg.delay(node, succ)
            if ep[succ] < required:
                ep[succ] = required
                worklist.append(succ)


def ep_linear_order(
    sg: ScheduleGraph, ep: Dict[Instruction, int]
) -> List[Instruction]:
    """A linear order "consistent with the partial order of the new EP
    numbers": a topological sort of G_s keyed by (EP, original
    position).

    For symbolic-register graphs every edge carries delay >= 1, so EP
    strictly increases along edges and this equals a stable sort by EP;
    the explicit topological sort also stays correct for graphs with
    delay-0 (anti) edges.
    """
    import networkx as nx

    position = {instr: idx for idx, instr in enumerate(sg.instructions)}
    return list(
        nx.lexicographical_topological_sort(
            sg.graph, key=lambda i: (ep[i], position[i])
        )
    )


@dataclass
class EPAnalysis:
    """EP numbers before and after machine refinement, plus the derived
    linear order — everything the pre-scheduling pass needs."""

    initial: Dict[Instruction, int]
    refined: Dict[Instruction, int]
    order: List[Instruction]

    def postponements(self) -> int:
        """Total EP slips caused by machine limitations."""
        return sum(
            self.refined[i] - self.initial[i] for i in self.refined
        )


def analyze_ep(
    sg: ScheduleGraph, machine: MachineDescription
) -> EPAnalysis:
    """Run the full EP pipeline on *sg*."""
    first = initial_ep(sg)
    refined = refined_ep(sg, machine)
    order = ep_linear_order(sg, refined)
    return EPAnalysis(initial=first, refined=refined, order=order)
