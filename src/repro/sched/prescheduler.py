"""The EP-driven pre-scheduling pass.

"Since the interference graph of the code uses the sequential ordering
of the instructions we will add a preliminary scheduling heuristic for
selecting one such order" — the interference relation (hence the
parallelizable interference graph, hence the allocation) is relative to
input order, so a parallelism-aware order is chosen *before* building
the graphs: compute refined EP numbers and "select a linear order which
is consistent with the partial order of the new EP numbers and reorder
the program segment accordingly".
"""

from __future__ import annotations


from repro.deps.schedule_graph import block_schedule_graph
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.machine.model import MachineDescription
from repro.sched.ep import analyze_ep


def preschedule_block(
    block: BasicBlock, machine: MachineDescription
) -> BasicBlock:
    """Reorder *block* in place by refined EP numbers.

    Returns the same block for chaining.  The new order is a
    topological order of the block's schedule graph, so semantics are
    preserved; the terminator keeps its final position because control
    edges give it the largest EP.
    """
    if len(block.instructions) < 2:
        return block
    sg = block_schedule_graph(block, machine=machine)
    analysis = analyze_ep(sg, machine)
    block.reorder(analysis.order)
    return block


def preschedule_function(
    fn: Function, machine: MachineDescription
) -> Function:
    """EP-reorder every block of *fn* in place; returns *fn*."""
    for block in fn.blocks():
        preschedule_block(block, machine)
    return fn
