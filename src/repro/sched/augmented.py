"""List scheduling driven by the augmented parallelizable interference
graph.

The paper's augmented graph exists for exactly this: "at each node v
the edges {v, u} ∈ E_f ∩ E provide the list of available instructions
(with v) as used in list scheduling algorithms such as in [9]".  This
scheduler builds each cycle around a seed instruction and fills the
remaining issue slots only with the seed's E_f-neighbors (instructions
provably co-issueable with it), consulting the reservation table for
joint feasibility (pairwise co-issueability does not imply a whole
group fits, e.g. three fixed-point ops on two fixed units).

It produces the same class of legal schedules as the plain list
scheduler — the value is methodological: it demonstrates that E_f is
precisely the availability relation a scheduler needs, and its
makespan is asserted (in tests) to match the classic scheduler's on
the worked examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.deps.false_dependence import FalseDependenceGraph
from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.machine.resources import ReservationTable
from repro.obs import get_metrics, get_tracer
from repro.sched.list_scheduler import (
    PriorityFn,
    Schedule,
    _CompactReservation,
    critical_path_priority,
)
from repro.utils.errors import SchedulingError
from repro.utils.faults import trip


def augmented_schedule(
    sg: ScheduleGraph,
    fdg: FalseDependenceGraph,
    machine: MachineDescription,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Schedule *sg* using E_f as the per-cycle availability relation.

    Args:
        sg: The (symbolic-register) schedule graph.
        fdg: Its false-dependence graph — E_f membership (bit tests
            against ``fdg.coissue_mask`` when kernel-backed) drives
            which instructions may join a started cycle.
        machine: Resource model (joint feasibility still checked).
        priority: Seed selection priority; defaults to critical path.

    Returns:
        A verified :class:`Schedule`.
    """
    trip("sched.augmented")
    sg.check_acyclic()
    if priority is None:
        priority = critical_path_priority(sg)

    table = ReservationTable(machine)
    cycle_of: Dict[Instruction, int] = {}
    ready_at: Dict[Instruction, int] = {}
    remaining_preds = {
        instr: sg.graph.in_degree(instr) for instr in sg.instructions
    }
    ready: List[Instruction] = [
        instr for instr in sg.instructions if remaining_preds[instr] == 0
    ]
    for instr in ready:
        ready_at[instr] = 0

    def issue(instr: Instruction, cycle: int) -> None:
        table.issue(instr, cycle)
        cycle_of[instr] = cycle
        ready.remove(instr)
        for succ in sg.graph.successors(instr):
            remaining_preds[succ] -= 1
            earliest = cycle + sg.delay(instr, succ)
            ready_at[succ] = max(ready_at.get(succ, 0), earliest)
            if remaining_preds[succ] == 0:
                ready.append(succ)

    cycle = 0
    guard_limit = (
        sum(machine.latency_of(i) for i in sg.instructions)
        + len(sg.instructions) + 1
    ) * 2 + 10
    guard = 0
    while len(cycle_of) < len(sg.instructions):
        guard += 1
        if guard > guard_limit:
            raise SchedulingError("augmented scheduler failed to progress")
        candidates = sorted(
            (i for i in ready if ready_at[i] <= cycle),
            key=lambda i: (-priority(i), i.uid),
        )
        if not candidates or not table.can_issue(candidates[0], cycle):
            feasible = [
                i for i in candidates if table.can_issue(i, cycle)
            ]
            if not feasible:
                cycle += 1
                continue
            candidates = feasible
        # Seed the cycle with the best candidate...
        seed = candidates[0]
        issue(seed, cycle)
        group = [seed]
        # ...then extend with the seed group's E_f availability list.
        # With a bitset kernel the group's joint availability is one
        # mask (the AND of members' E_f rows); each candidate check is
        # a single bit test instead of a has_false_edge loop.
        group_mask = fdg.coissue_mask(seed)
        if group_mask is not None:
            position = fdg.kernel.index.position

            def joins_group(i: Instruction) -> bool:
                return bool((group_mask >> position(i)) & 1)

        else:

            def joins_group(i: Instruction) -> bool:
                return all(fdg.has_false_edge(i, member) for member in group)

        progress = True
        while progress:
            progress = False
            available = sorted(
                (
                    i
                    for i in ready
                    if ready_at[i] <= cycle and joins_group(i)
                ),
                key=lambda i: (-priority(i), i.uid),
            )
            for instr in available:
                if table.can_issue(instr, cycle):
                    issue(instr, cycle)
                    group.append(instr)
                    if group_mask is not None:
                        group_mask &= fdg.coissue_mask(instr)
                    progress = True
                    break
        cycle += 1

    schedule = Schedule(cycle_of=cycle_of, machine=machine)
    schedule.verify(sg)

    issued = len(sg.instructions)
    slots = schedule.makespan * machine.issue_width
    utilization = round(issued / slots, 4) if slots else 0.0
    get_tracer().event(
        "sched.block",
        cycles=schedule.makespan,
        issued=issued,
        slots=slots,
        utilization=utilization,
    )
    metrics = get_metrics()
    metrics.counter("sched.blocks").inc()
    metrics.counter("sched.cycles").inc(schedule.makespan)
    metrics.counter("sched.issued").inc(issued)
    metrics.histogram("sched.slot_utilization").observe(utilization)
    return schedule


def compact_augmented_schedule(
    sg: ScheduleGraph,
    fdg: FalseDependenceGraph,
    machine: MachineDescription,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Array-based fast path of :func:`augmented_schedule`.

    Bit-identical output under the same seed/extension semantics: per
    cycle, the seed is the first candidate in (-priority, uid) order
    the reservation table admits, and each extension step takes the
    first still-ready E_f-availability-list member it admits.  The
    speed comes from candidates waiting in a ready-cycle heap, the
    compact reservation counters, and two monotonicity facts that make
    per-cycle rejection final (table occupancy only grows within a
    cycle, and the group mask only shrinks), so rejected candidates
    are skipped instead of re-scanned every pass.
    """
    trip("sched.compact")
    trip("sched.augmented")
    sg.check_acyclic()
    if priority is None:
        priority = critical_path_priority(sg)

    import heapq

    instrs = list(sg.instructions)
    n = len(instrs)
    if not n:
        return Schedule(cycle_of={}, machine=machine)
    pos = {instr: k for k, instr in enumerate(instrs)}
    neg_prio = [-float(priority(i)) for i in instrs]
    uids = [i.uid for i in instrs]
    succs: List[tuple] = [[] for _ in range(n)]
    indeg = [0] * n
    for u, v in sg.edges():
        ui, vi = pos[u], pos[v]
        succs[ui].append((vi, sg.delay(u, v)))
        indeg[vi] += 1

    table = _CompactReservation(machine, instrs)
    ready_at = [0] * n
    cycle_of_idx = [-1] * n
    pending = [
        (0, neg_prio[k], uids[k], k) for k in range(n) if indeg[k] == 0
    ]
    heapq.heapify(pending)
    #: Candidates whose ready cycle has arrived, sorted by
    #: (-priority, uid); entries leave only by issuing.
    avail: List[tuple] = []

    def drain(cycle: int) -> None:
        moved = False
        while pending and pending[0][0] <= cycle:
            _, negp, uid, idx = heapq.heappop(pending)
            avail.append((negp, uid, idx))
            moved = True
        if moved:
            avail.sort()

    def issue(idx: int, cycle: int) -> None:
        table.issue(idx, cycle)
        cycle_of_idx[idx] = cycle
        for s, delay in succs[idx]:
            earliest = cycle + delay
            if ready_at[s] < earliest:
                ready_at[s] = earliest
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(
                    pending, (ready_at[s], neg_prio[s], uids[s], s)
                )

    cycle = 0
    scheduled = 0
    max_cycles = sum(table.lat) + n + 1
    while scheduled < n:
        if cycle > max_cycles * 2 + 10:
            raise SchedulingError("augmented scheduler failed to progress")
        drain(cycle)
        if not avail:
            if not pending:
                raise SchedulingError(
                    "augmented scheduler failed to progress"
                )
            cycle = max(cycle + 1, pending[0][0])
            continue
        # Seed: first admitted candidate in priority order.
        rejected = set()  # final for this cycle (occupancy is monotone)
        seed = -1
        for negp, uid, idx in avail:
            if table.can_issue(idx, cycle):
                seed = idx
                break
            rejected.add(idx)
        if seed < 0:
            cycle += 1
            continue
        avail = [e for e in avail if e[2] != seed]
        issue(seed, cycle)
        scheduled += 1
        group = [instrs[seed]]
        group_mask = fdg.coissue_mask(instrs[seed])
        if group_mask is not None:
            position = fdg.kernel.index.position

            def joins_group(idx: int) -> bool:
                return bool((group_mask >> position(instrs[idx])) & 1)

        else:

            def joins_group(idx: int) -> bool:
                instr = instrs[idx]
                return all(
                    fdg.has_false_edge(instr, member) for member in group
                )

        # Extend with the seed group's availability list.  Group
        # membership only shrinks as the mask ANDs down, so a
        # non-member stays out for the rest of the cycle.
        while True:
            drain(cycle)
            chosen = -1
            for negp, uid, idx in avail:
                if idx in rejected:
                    continue
                if not joins_group(idx):
                    rejected.add(idx)
                    continue
                if table.can_issue(idx, cycle):
                    chosen = idx
                    break
                rejected.add(idx)
            if chosen < 0:
                break
            avail = [e for e in avail if e[2] != chosen]
            issue(chosen, cycle)
            scheduled += 1
            group.append(instrs[chosen])
            if group_mask is not None:
                group_mask &= fdg.coissue_mask(instrs[chosen])
        cycle += 1

    schedule = Schedule(
        cycle_of={instrs[k]: cycle_of_idx[k] for k in range(n)},
        machine=machine,
    )
    schedule.verify(sg)

    issued_count = n
    slots = schedule.makespan * machine.issue_width
    utilization = round(issued_count / slots, 4) if slots else 0.0
    get_tracer().event(
        "sched.block",
        cycles=schedule.makespan,
        issued=issued_count,
        slots=slots,
        utilization=utilization,
    )
    metrics = get_metrics()
    metrics.counter("sched.blocks").inc()
    metrics.counter("sched.cycles").inc(schedule.makespan)
    metrics.counter("sched.issued").inc(issued_count)
    metrics.histogram("sched.slot_utilization").observe(utilization)
    return schedule
