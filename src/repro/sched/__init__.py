"""Instruction scheduling: EP numbers, pre-scheduling, list scheduling,
region scheduling and the cycle-level issue simulator."""

from repro.sched.augmented import augmented_schedule, compact_augmented_schedule
from repro.sched.ips import IPSResult, ips_reorder_function, ips_schedule
from repro.sched.ep import (
    EPAnalysis,
    analyze_ep,
    ep_linear_order,
    initial_ep,
    refined_ep,
)
from repro.sched.global_scheduler import (
    GlobalSimulationResult,
    RegionTiming,
    merge_plausible_blocks,
    schedule_region,
    simulate_regions,
)
from repro.sched.list_scheduler import (
    Schedule,
    compact_list_schedule,
    critical_path_priority,
    inorder_issue_schedule,
    list_schedule,
)
from repro.sched.prescheduler import preschedule_block, preschedule_function
from repro.sched.simulator import (
    BlockTiming,
    SimulationResult,
    simulate_block,
    simulate_function,
)

__all__ = [
    "BlockTiming",
    "EPAnalysis",
    "GlobalSimulationResult",
    "IPSResult",
    "RegionTiming",
    "Schedule",
    "SimulationResult",
    "analyze_ep",
    "augmented_schedule",
    "compact_augmented_schedule",
    "compact_list_schedule",
    "critical_path_priority",
    "ep_linear_order",
    "initial_ep",
    "inorder_issue_schedule",
    "ips_reorder_function",
    "ips_schedule",
    "list_schedule",
    "merge_plausible_blocks",
    "preschedule_block",
    "preschedule_function",
    "refined_ep",
    "schedule_region",
    "simulate_block",
    "simulate_function",
    "simulate_regions",
]
