"""Goodman–Hsu integrated prepass scheduling (the paper's reference
[10], "Code scheduling and register allocation in large basic blocks",
ICS 1988).

IPS is the closest prior art the paper compares its framework against:
a list scheduler that watches the number of available registers while
it schedules.  While registers are plentiful it schedules for the
pipeline (critical-path priority, their CSP mode); when the live count
approaches the register limit it flips to Sethi–Ullman-style register
minimization (their CSR mode), preferring ready instructions that free
the most registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.deps.schedule_graph import ScheduleGraph, block_schedule_graph
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.operands import Register
from repro.machine.model import MachineDescription
from repro.machine.resources import ReservationTable
from repro.sched.list_scheduler import (
    Schedule,
    critical_path_priority,
)
from repro.utils.errors import SchedulingError


@dataclass
class IPSResult:
    """Outcome of one IPS run over a block."""

    schedule: Schedule
    peak_live: int
    csr_cycles: int  # cycles spent in register-minimizing mode


def _last_use_positions(
    instructions: Sequence[Instruction],
    live_out: Set[Register],
) -> Dict[Instruction, List[Register]]:
    """For each instruction, the registers whose last (program-order)
    use it holds — issuing it frees those registers."""
    last_use: Dict[Register, Instruction] = {}
    for instr in instructions:
        for reg in instr.uses():
            last_use[reg] = instr
    frees: Dict[Instruction, List[Register]] = {i: [] for i in instructions}
    for reg, instr in last_use.items():
        if reg not in live_out:
            frees[instr].append(reg)
    return frees


def ips_schedule(
    sg: ScheduleGraph,
    machine: MachineDescription,
    num_registers: int,
    threshold: int = 2,
    live_out: Optional[Set[Register]] = None,
) -> IPSResult:
    """Schedule *sg* with the Goodman–Hsu register-sensitive policy.

    Args:
        sg: Symbolic-register schedule graph of one block.
        machine: Resource model.
        num_registers: The register budget the scheduler protects.
        threshold: Switch to register-minimizing mode when fewer than
            this many registers remain available (AVLREG in [10]).
        live_out: Registers live out of the block (never freed).

    Returns:
        An :class:`IPSResult`; the schedule is legal for *machine*.
    """
    sg.check_acyclic()
    live_out = set(live_out or ())
    cp_priority = critical_path_priority(sg)
    frees = _last_use_positions(sg.instructions, live_out)

    table = ReservationTable(machine)
    cycle_of: Dict[Instruction, int] = {}
    ready_at: Dict[Instruction, int] = {}
    remaining_preds = {
        instr: sg.graph.in_degree(instr) for instr in sg.instructions
    }
    ready = [i for i in sg.instructions if remaining_preds[i] == 0]
    for instr in ready:
        ready_at[instr] = 0

    live: Set[Register] = set()
    peak_live = 0
    csr_cycles = 0
    cycle = 0
    unscheduled = len(sg.instructions)
    guard_limit = (
        sum(machine.latency_of(i) for i in sg.instructions)
        + len(sg.instructions)
    ) * 2 + 10
    guard = 0

    def register_delta(instr: Instruction) -> int:
        """Net live-register change from issuing *instr*: defs minus
        the operands whose last use it is."""
        freed = sum(1 for reg in frees[instr] if reg in live)
        return len(instr.defs()) - freed

    while unscheduled:
        guard += 1
        if guard > guard_limit:
            raise SchedulingError("IPS failed to make progress")
        available = num_registers - len(live)
        register_mode = available <= threshold
        if register_mode:
            csr_cycles += 1

        def priority(instr: Instruction) -> tuple:
            if register_mode:
                # CSR: free registers first, then shortest growth,
                # then the pipeline priority as tie-break.
                return (-register_delta(instr), cp_priority(instr))
            return (cp_priority(instr),)

        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (i for i in ready if ready_at[i] <= cycle),
                key=lambda i: tuple(-p for p in priority(i)) + (i.uid,),
            )
            for instr in candidates:
                if table.can_issue(instr, cycle):
                    table.issue(instr, cycle)
                    cycle_of[instr] = cycle
                    ready.remove(instr)
                    unscheduled -= 1
                    progress = True
                    for reg in frees[instr]:
                        live.discard(reg)
                    live.update(instr.defs())
                    peak_live = max(peak_live, len(live))
                    for succ in sg.graph.successors(instr):
                        remaining_preds[succ] -= 1
                        earliest = cycle + sg.delay(instr, succ)
                        ready_at[succ] = max(ready_at.get(succ, 0), earliest)
                        if remaining_preds[succ] == 0:
                            ready.append(succ)
        cycle += 1

    schedule = Schedule(cycle_of=cycle_of, machine=machine)
    schedule.verify(sg)
    return IPSResult(
        schedule=schedule, peak_live=peak_live, csr_cycles=csr_cycles
    )


def ips_reorder_function(
    fn: Function,
    machine: MachineDescription,
    num_registers: int,
    threshold: int = 2,
) -> Function:
    """Reorder every block of *fn* (in place) by the IPS schedule."""
    from repro.analysis.liveness import live_variables

    liveness = live_variables(fn)
    for block in fn.blocks():
        if len(block.instructions) < 2:
            continue
        sg = block_schedule_graph(block, machine=machine)
        result = ips_schedule(
            sg,
            machine,
            num_registers,
            threshold=threshold,
            live_out=set(liveness.live_out[block.name]),
        )
        block.reorder(result.schedule.instructions_in_order())
    return fn
