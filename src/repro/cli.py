"""Command-line interface.

::

    python -m repro compile program.src --machine rs6000 -r 8
    python -m repro compile program.src --strategy all --optimize
    python -m repro graph program.src --kind pig -o pig.dot
    python -m repro kernels
    python -m repro bench -o BENCH.json

``compile`` accepts either frontend source (default) or textual IR
(``--ir``), runs a phase-ordering strategy, and prints the allocated
program, the metric row, and optionally the cycle timeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.frontend import compile_source
from repro.ir import format_function, parse_function
from repro.machine.presets import ALL_PRESETS
from repro.pipeline.strategies import (
    AllocateThenSchedule,
    CombinedPinter,
    GoodmanHsuIPS,
    ScheduleThenAllocate,
    Strategy,
)

STRATEGIES = {
    "alloc-first": AllocateThenSchedule,
    "sched-first": ScheduleThenAllocate,
    "pinter": CombinedPinter,
    "ips": GoodmanHsuIPS,
}


def _load_function(path: str, is_ir: bool):
    with open(path) as handle:
        text = handle.read()
    if is_ir:
        return parse_function(text)
    return compile_source(text, name=path.rsplit("/", 1)[-1].split(".")[0])


def _machine(name: str, registers: Optional[int]):
    if name not in ALL_PRESETS:
        raise SystemExit(
            "unknown machine {!r}; choose from: {}".format(
                name, ", ".join(sorted(ALL_PRESETS))
            )
        )
    machine = ALL_PRESETS[name]()
    return machine


def cmd_compile(args: argparse.Namespace) -> int:
    fn = _load_function(args.file, args.ir)
    machine = _machine(args.machine, args.registers)
    registers = args.registers or machine.num_registers

    if args.optimize:
        from repro.opt import optimize

        report = optimize(fn)
        print("; {}".format(report))

    names = (
        list(STRATEGIES) if args.strategy == "all" else [args.strategy]
    )
    for name in names:
        if name not in STRATEGIES:
            raise SystemExit(
                "unknown strategy {!r}; choose from: {} or 'all'".format(
                    name, ", ".join(STRATEGIES)
                )
            )
        strategy: Strategy = STRATEGIES[name]()
        result = strategy.run(fn, machine, num_registers=registers)
        print("; strategy={} machine={} r={}".format(
            result.strategy, machine.name, registers))
        print("; registers={} spill_ops={} false_deps={} cycles={}".format(
            result.registers_used,
            result.spill_operations,
            result.false_dependences,
            result.cycles,
        ))
        if len(names) == 1 or args.verbose:
            print(format_function(result.allocated_function))
        if args.timeline:
            from repro.deps import block_schedule_graph
            from repro.sched import list_schedule
            from repro.viz import schedule_to_ascii

            for block in result.allocated_function.blocks():
                if not block.instructions:
                    continue
                sg = block_schedule_graph(block, machine=machine)
                schedule = list_schedule(sg, machine)
                print("; timeline of block {}:".format(block.name))
                print(schedule_to_ascii(schedule))
        print()
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    fn = _load_function(args.file, args.ir)
    machine = _machine(args.machine, None)

    if args.kind == "cfg":
        from repro.viz import cfg_to_dot

        dot = cfg_to_dot(fn)
    elif args.kind == "gs":
        from repro.deps import block_schedule_graph
        from repro.viz import schedule_graph_to_dot

        dot = schedule_graph_to_dot(
            block_schedule_graph(fn.entry, machine=machine)
        )
    elif args.kind == "fdg":
        from repro.deps import block_false_dependence_graph
        from repro.viz import false_dependence_to_dot

        dot = false_dependence_to_dot(
            block_false_dependence_graph(fn.entry, machine)
        )
    elif args.kind == "ig":
        from repro.regalloc import build_interference_graph
        from repro.viz import interference_to_dot

        dot = interference_to_dot(build_interference_graph(fn))
    elif args.kind == "pig":
        from repro.core import build_parallel_interference_graph
        from repro.viz import pig_to_dot

        dot = pig_to_dot(build_parallel_interference_graph(fn, machine))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit("unknown graph kind {!r}".format(args.kind))

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dot + "\n")
        print("wrote {}".format(args.output))
    else:
        print(dot)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        DEFAULT_SIZES,
        PHASES,
        format_bench,
        run_bench,
        write_bench,
    )

    sizes = (
        tuple(int(s) for s in args.sizes.split(",")) if args.sizes
        else DEFAULT_SIZES
    )
    phases = tuple(args.phases.split(",")) if args.phases else PHASES
    machine = _machine(args.machine, None)
    rows = run_bench(
        sizes=sizes, phases=phases, machine=machine, repeats=args.repeats
    )
    print(format_bench(rows))
    if args.output:
        write_bench(args.output, rows)
        print("wrote {}".format(args.output))
    return 0


def cmd_kernels(_args: argparse.Namespace) -> int:
    from repro.workloads import ALL_KERNELS

    for name in sorted(ALL_KERNELS):
        fn = ALL_KERNELS[name]()
        print("{:<12} {:>3} instructions, live-out: {}".format(
            name,
            sum(len(b) for b in fn.blocks()),
            ", ".join(str(r) for r in fn.live_out) or "(none)",
        ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register allocation with instruction scheduling "
        "(Pinter, PLDI 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile source/IR through a strategy"
    )
    p_compile.add_argument("file")
    p_compile.add_argument(
        "--machine", default="two-unit-superscalar",
        help="machine preset ({})".format(", ".join(sorted(ALL_PRESETS))),
    )
    p_compile.add_argument("-r", "--registers", type=int, default=None)
    p_compile.add_argument(
        "--strategy", default="pinter",
        help="one of {} or 'all'".format(", ".join(STRATEGIES)),
    )
    p_compile.add_argument(
        "--ir", action="store_true", help="input is textual IR, not source"
    )
    p_compile.add_argument("--optimize", action="store_true")
    p_compile.add_argument("--timeline", action="store_true")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    p_compile.set_defaults(func=cmd_compile)

    p_graph = sub.add_parser("graph", help="emit a DOT graph")
    p_graph.add_argument("file")
    p_graph.add_argument(
        "--kind", choices=("cfg", "gs", "fdg", "ig", "pig"), default="pig"
    )
    p_graph.add_argument("--machine", default="two-unit-superscalar")
    p_graph.add_argument("--ir", action="store_true")
    p_graph.add_argument("-o", "--output", default=None)
    p_graph.set_defaults(func=cmd_graph)

    p_kernels = sub.add_parser("kernels", help="list built-in kernels")
    p_kernels.set_defaults(func=cmd_kernels)

    p_bench = sub.add_parser(
        "bench", help="time the dependence/PIG pipeline on E7 workloads"
    )
    p_bench.add_argument(
        "--sizes", default=None,
        help="comma-separated workload sizes (default: 8,...,256)",
    )
    p_bench.add_argument(
        "--phases", default=None,
        help="comma-separated phase names (default: all)",
    )
    p_bench.add_argument("--machine", default="two-unit-superscalar")
    p_bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per phase; the minimum is reported",
    )
    p_bench.add_argument(
        "-o", "--output", default=None, help="write JSON rows to this path"
    )
    p_bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
