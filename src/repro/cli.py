"""Command-line interface.

::

    python -m repro compile program.src --machine rs6000 -r 8
    python -m repro compile program.src --strategy all --optimize
    python -m repro compile program.src --paranoid --json-diagnostics
    python -m repro graph program.src --kind pig -o pig.dot
    python -m repro kernels
    python -m repro bench -o BENCH.json
    python -m repro batch manifest.txt --max-workers 8 --resume run.jsonl
    python -m repro batch --fuzz 50 --task-timeout 10 --json-summary
    python -m repro batch --fuzz 50 --trace run-trace.jsonl --metrics
    python -m repro batch --fuzz 50 --cache-dir .repro-cache --ledger r.jsonl
    python -m repro batch manifest.txt --no-pool --no-cache
    python -m repro serve --port 8437 --pool-size 4 --cache
    python -m repro serve --port 0 --ledger serve.jsonl --max-queue-depth 32
    python -m repro stats run-trace.jsonl --check

``compile`` accepts either frontend source (default) or textual IR
(``--ir``), runs one or more phase-ordering strategies through the
hardened driver (:mod:`repro.pipeline.driver`), and prints the
allocated program, the metric row, and optionally the cycle timeline.
Diagnostics go to stderr (or, with ``--json-diagnostics``, as one JSON
document on stdout).

Exit codes (all commands):

* ``0`` — success; the compile may have *degraded* onto a fallback
  rung (reference dependence engine, Chaitin spilling, plain list
  scheduler) — check the diagnostics.
* ``1`` — internal failure: a budget was exhausted (``--max-instrs``,
  ``--time-budget``) or every fallback failed.
* ``2`` — invalid input: malformed source/IR, or bad arguments
  (unknown strategy/machine/phase names, bad fault specs, bad
  manifests).

``batch`` (see :mod:`repro.service.batch`) additionally uses ``3``
(batch completed but some tasks failed after retries) and ``130``
(interrupted; resume with the ledger).  ``serve`` (see
:mod:`repro.service.server`) exits ``0`` on a graceful drain
(SIGTERM/SIGINT or ``POST /drain``) and ``2`` on bad arguments; a
per-job failure is a job status on the wire, never a process exit.

``compile``, ``batch``, and ``bench`` all accept ``--trace FILE``
(append a structured JSONL trace, :mod:`repro.obs`) and ``--metrics``
(collect in-process counters/histograms; printed as JSON on stderr, or
folded into the JSON document when one is requested).  ``stats``
aggregates a trace back into per-phase / per-rung tables and exits 1
under ``--check`` when any line is invalid or any span is unbalanced.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.machine.presets import ALL_PRESETS
from repro.pipeline.strategies import (
    AllocateThenSchedule,
    CombinedPinter,
    GoodmanHsuIPS,
    ScheduleThenAllocate,
    Strategy,
)
from repro.utils.errors import InputError, ReproError

STRATEGIES = {
    "alloc-first": AllocateThenSchedule,
    "sched-first": ScheduleThenAllocate,
    "pinter": CombinedPinter,
    "ips": GoodmanHsuIPS,
}


def _load_function(path: str, is_ir: bool):
    from repro.frontend import compile_source
    from repro.ir import parse_function

    with open(path) as handle:
        text = handle.read()
    if is_ir:
        return parse_function(text)
    return compile_source(text, name=path.rsplit("/", 1)[-1].split(".")[0])


def _machine(name: str, registers: Optional[int]):
    if name not in ALL_PRESETS:
        raise InputError(
            "unknown machine {!r}; choose from: {}".format(
                name, ", ".join(sorted(ALL_PRESETS))
            )
        )
    machine = ALL_PRESETS[name]()
    return machine


def _strategy_names(spec: str) -> List[str]:
    """Expand and validate ``--strategy`` *before* any compilation, so
    a typo can never fire after partial output."""
    if spec == "all":
        return list(STRATEGIES)
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise InputError("no strategy named in {!r}".format(spec))
    unknown = [name for name in names if name not in STRATEGIES]
    if unknown:
        raise InputError(
            "unknown strategy {}; choose from: {} or 'all'".format(
                ", ".join(repr(n) for n in unknown), ", ".join(STRATEGIES)
            )
        )
    return names


def _install_cli_faults(args: argparse.Namespace) -> None:
    """Arm faults from ``$REPRO_FAULTS`` and ``--inject-fault``."""
    from repro.utils import faults

    faults.install_from_env()
    for spec_text in args.inject_fault or ():
        for spec in faults.parse_fault_specs(spec_text):
            faults.install(spec)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """``--trace`` / ``--metrics``, shared by compile, batch, bench."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="append a structured JSONL trace of this run to FILE "
        "(aggregate it later with 'repro stats FILE')",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect in-process counters/gauges/histograms and report "
        "the snapshot (stderr JSON, or folded into JSON output)",
    )


def _add_region_cache_flags(parser: argparse.ArgumentParser) -> None:
    """``--region-cache`` family, shared by compile, batch, serve."""
    parser.add_argument(
        "--region-cache", dest="region_cache", action="store_true",
        default=None,
        help="serve per-region dependence kernels from the region "
        "cache, so an edit-recompile loop pays only the edited "
        "regions; in-memory unless --region-cache-dir",
    )
    parser.add_argument(
        "--no-region-cache", dest="region_cache", action="store_false",
        help="never consult or populate the region cache",
    )
    parser.add_argument(
        "--region-cache-dir", default=None, metavar="DIR",
        help="persist region kernels here (implies --region-cache); "
        "may share a directory with --cache-dir (the region grain "
        "keeps its own 'region/' namespace)",
    )


def _metrics_to_stderr(registry) -> None:
    import json

    if registry is not None:
        print(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True),
            file=sys.stderr,
        )


def _emit_diagnostics(report, json_mode: bool) -> None:
    """Text mode: info diagnostics join the stdout commentary, warnings
    and errors go to stderr (JSON mode collects reports into a single
    document instead)."""
    if json_mode:
        return
    for diag in report.diagnostics:
        if diag.severity == "info":
            print("; {}".format(diag.message))
        else:
            print("; {}".format(diag), file=sys.stderr)


def _region_cache_enabled(args: argparse.Namespace) -> bool:
    """Three-state ``--region-cache`` resolution, mirroring
    ``--cache``: explicit on, explicit off, or implied on by
    ``--region-cache-dir``."""
    return bool(
        args.region_cache
        or (args.region_cache is None and args.region_cache_dir)
    )


def cmd_compile(args: argparse.Namespace) -> int:
    import json

    from repro.ir import format_function
    from repro.pipeline.driver import CompilationDriver, DriverConfig

    # Validate everything user-controlled before running any strategy.
    names = _strategy_names(args.strategy)
    machine = _machine(args.machine, args.registers)
    registers = args.registers or machine.num_registers
    if args.max_instrs is not None and args.max_instrs < 1:
        raise InputError("--max-instrs must be positive")
    if args.time_budget is not None and args.time_budget <= 0:
        raise InputError("--time-budget must be positive seconds")
    _install_cli_faults(args)

    if args.pig_shards < 0:
        raise InputError("--pig-shards must be >= 0")
    config = DriverConfig(
        strict=args.strict,
        paranoid=args.paranoid,
        max_instrs=args.max_instrs,
        time_budget=args.time_budget,
        optimize=args.optimize,
        engine=args.pig_engine,
        pig_shards=args.pig_shards,
        region_cache=_region_cache_enabled(args),
        region_cache_dir=args.region_cache_dir,
        backend=args.backend,
    )
    driver = CompilationDriver(machine, num_registers=registers, config=config)

    with open(args.file) as handle:
        text = handle.read()
    name = args.file.rsplit("/", 1)[-1].split(".")[0]

    from repro import obs

    with obs.tracing(args.trace), \
            obs.collecting_metrics(args.metrics) as registry:
        fn, load_report = driver.load(text, is_ir=args.ir, name=name)
        json_entries = [load_report.as_dict()]
        _emit_diagnostics(load_report, args.json_diagnostics)
        exit_code = load_report.exit_code

        if fn is not None:
            for strategy_name in names:
                if strategy_name == "pinter":
                    outcome = driver.compile_function(fn, preprocessed=True)
                else:
                    strategy: Strategy = STRATEGIES[strategy_name]()
                    outcome = driver.run_strategy(
                        strategy, fn, preprocessed=True
                    )
                report = outcome.report
                entry = report.as_dict()
                entry["metrics"] = (
                    outcome.result.as_row() if outcome.ok else None
                )
                json_entries.append(entry)
                _emit_diagnostics(report, args.json_diagnostics)
                exit_code = max(exit_code, report.exit_code)
                if not outcome.ok:
                    if not args.json_diagnostics:
                        print(
                            "; strategy={} machine={} r={} FAILED "
                            "(exit {})".format(
                                report.strategy, machine.name, registers,
                                report.exit_code,
                            )
                        )
                        print()
                    continue
                result = outcome.result
                if not args.json_diagnostics:
                    print("; strategy={} machine={} r={}".format(
                        result.strategy, machine.name, registers))
                    print(
                        "; registers={} spill_ops={} false_deps={} "
                        "cycles={}".format(
                            result.registers_used,
                            result.spill_operations,
                            result.false_dependences,
                            result.cycles,
                        )
                    )
                    if len(names) == 1 or args.verbose:
                        print(format_function(result.allocated_function))
                    if args.timeline:
                        from repro.deps import block_schedule_graph
                        from repro.sched import list_schedule
                        from repro.viz import schedule_to_ascii

                        for block in result.allocated_function.blocks():
                            if not block.instructions:
                                continue
                            sg = block_schedule_graph(
                                block, machine=machine
                            )
                            schedule = list_schedule(sg, machine)
                            print("; timeline of block {}:".format(
                                block.name))
                            print(schedule_to_ascii(schedule))
                    print()

    if args.json_diagnostics:
        document = {
            "file": args.file,
            "machine": machine.name,
            "registers": registers,
            "exit_code": exit_code,
            "reports": json_entries,
        }
        if registry is not None:
            document["metrics"] = registry.snapshot()
        print(json.dumps(document, indent=2))
    else:
        _metrics_to_stderr(registry)
    return exit_code


def cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.pipeline.driver import DriverConfig
    from repro.service import (
        BatchRunner,
        CircuitBreaker,
        RetryPolicy,
        fuzz_tasks,
        load_manifest,
    )

    if args.manifest is None and args.fuzz is None:
        raise InputError("batch needs a manifest file or --fuzz N")
    if args.manifest is not None and args.fuzz is not None:
        raise InputError("a manifest and --fuzz are mutually exclusive")
    if args.max_instrs is not None and args.max_instrs < 1:
        raise InputError("--max-instrs must be positive")
    if args.time_budget is not None and args.time_budget <= 0:
        raise InputError("--time-budget must be positive seconds")
    _install_cli_faults(args)

    if args.fuzz is not None:
        tasks = fuzz_tasks(args.fuzz, seed=args.fuzz_seed)
    else:
        tasks = load_manifest(args.manifest)

    # --cache is three-state: explicit on, explicit off, or implied on
    # by --cache-dir (a directory without caching makes no sense).
    cache = None
    if args.cache or (args.cache is None and args.cache_dir):
        from repro.cache import CompileCache

        cache = CompileCache(directory=args.cache_dir)

    engine = args.engine
    if engine == "auto":
        # Resolve here so the circuit breaker keys and worker payloads
        # all see the concrete rung name.
        from repro.deps.vector import HAVE_NUMPY

        engine = "vector" if HAVE_NUMPY else "bitset"
    config = DriverConfig(
        strict=args.strict,
        paranoid=args.paranoid,
        max_instrs=args.max_instrs,
        time_budget=args.time_budget,
        optimize=args.optimize,
        engine=engine,
        region_cache=_region_cache_enabled(args),
        region_cache_dir=args.region_cache_dir,
        backend="compact" if args.backend == "auto" else args.backend,
    )
    runner = BatchRunner(
        machine=args.machine,
        registers=args.registers,
        driver_config=config,
        max_workers=args.max_workers,
        task_timeout=args.task_timeout,
        retry_policy=RetryPolicy(
            max_retries=args.retries, base_delay=args.backoff
        ),
        breaker=CircuitBreaker(),
        ledger_path=args.ledger,
        resume_path=args.resume,
        recheck_degraded=args.recheck_degraded,
        retry_failed=args.retry_failed,
        use_pool=args.pool,
        max_tasks_per_worker=args.max_tasks_per_worker,
        cache=cache,
    )

    total = len(tasks)
    settled = [0]

    def progress(rec) -> None:
        if args.json_summary:
            return
        settled[0] += 1
        extra = " (resumed)" if rec.resumed \
            else " (cached)" if rec.cached else ""
        detail = ""
        if rec.status == "failed" and rec.message:
            detail = " - {}".format(rec.message)
        print("[{}/{}] {:<9} {}{}{}".format(
            settled[0], total, rec.status, rec.task_id, extra, detail
        ))

    from repro import obs

    with obs.tracing(args.trace), \
            obs.collecting_metrics(args.metrics) as registry:
        summary = runner.run(
            tasks, install_signal_handlers=True, progress=progress
        )
    if args.json_summary:
        document = summary.as_dict()
        if cache is not None:
            document["cache"] = cache.snapshot()
        if registry is not None:
            document["metrics"] = registry.snapshot()
        print(json.dumps(document, indent=2))
    else:
        _metrics_to_stderr(registry)
        counts = summary.counts
        print(
            "batch: {} task(s): {} ok, {} degraded, {} failed, "
            "{} resumed{}{}".format(
                counts["total"], counts["ok"], counts["degraded"],
                counts["failed"], counts["resumed"],
                ", {} cached".format(counts["cached"])
                if cache is not None else "",
                " [interrupted - resume with the ledger to finish]"
                if summary.interrupted else "",
            )
        )
    return summary.exit_code


def _supervised_child_args(args: argparse.Namespace) -> List[str]:
    """Rebuild the ``repro serve`` argv the supervisor's child needs
    (everything except host/port/ledger/durable/poison-list, which
    the supervisor owns)."""
    child: List[str] = [
        "--machine", args.machine,
        "--pool-size", str(args.pool_size),
        "--task-timeout", str(args.task_timeout),
        "--max-queue-depth", str(args.max_queue_depth),
        "--per-client-depth", str(args.per_client_depth),
        "--retries", str(args.retries),
        "--backoff", str(args.backoff),
        "--drain-timeout", str(args.drain_timeout),
        "--engine", args.engine,
        "--backend", args.backend,
    ]
    if args.registers is not None:
        child += ["--registers", str(args.registers)]
    if args.cache:
        child += ["--cache"]
    elif args.cache is False:
        child += ["--no-cache"]
    if args.cache_dir:
        child += ["--cache-dir", args.cache_dir]
    if args.region_cache:
        child += ["--region-cache"]
    elif args.region_cache is False:
        child += ["--no-region-cache"]
    if args.region_cache_dir:
        child += ["--region-cache-dir", args.region_cache_dir]
    if args.max_segment_bytes is not None:
        child += ["--max-segment-bytes", str(args.max_segment_bytes)]
    if args.allow_request_faults:
        child += ["--allow-request-faults"]
    for flag in ("strict", "paranoid", "optimize", "quiet"):
        if getattr(args, flag):
            child += ["--" + flag]
    if args.max_instrs is not None:
        child += ["--max-instrs", str(args.max_instrs)]
    if args.time_budget is not None:
        child += ["--time-budget", str(args.time_budget)]
    for spec in args.inject_fault or []:
        child += ["--inject-fault", spec]
    return child


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.pipeline.driver import DriverConfig
    from repro.service.server import CompileServer

    if args.max_instrs is not None and args.max_instrs < 1:
        raise InputError("--max-instrs must be positive")
    if args.time_budget is not None and args.time_budget <= 0:
        raise InputError("--time-budget must be positive seconds")

    if args.supervised:
        from repro.service.supervisor import Supervisor

        if not args.ledger:
            raise InputError(
                "--supervised requires --ledger (resume and poison "
                "detection live in the durable queue)"
            )
        supervisor = Supervisor(
            ledger_path=args.ledger,
            child_args=_supervised_child_args(args),
            host=args.host,
            port=args.port,
            restart_budget=args.restart_budget,
            backoff=args.restart_backoff,
            hang_timeout=args.hang_timeout,
            health_interval=args.health_interval,
            poison_threshold=args.poison_threshold,
            drain_timeout=args.drain_timeout,
            quiet=args.quiet,
        )
        return supervisor.run(install_signal_handlers=True)

    _install_cli_faults(args)

    cache = None
    if args.cache or (args.cache is None and args.cache_dir):
        from repro.cache import CompileCache

        cache = CompileCache(directory=args.cache_dir)

    engine = args.engine
    if engine == "auto":
        from repro.deps.vector import HAVE_NUMPY

        engine = "vector" if HAVE_NUMPY else "bitset"
    config = DriverConfig(
        strict=args.strict,
        paranoid=args.paranoid,
        max_instrs=args.max_instrs,
        time_budget=args.time_budget,
        optimize=args.optimize,
        engine=engine,
        region_cache=_region_cache_enabled(args),
        region_cache_dir=args.region_cache_dir,
        backend="compact" if args.backend == "auto" else args.backend,
    )
    server = CompileServer(
        host=args.host,
        port=args.port,
        machine=args.machine,
        registers=args.registers,
        driver_config=config,
        pool_size=args.pool_size,
        task_timeout=args.task_timeout,
        max_queue_depth=args.max_queue_depth,
        per_client_depth=args.per_client_depth,
        retries=args.retries,
        backoff=args.backoff,
        cache=cache,
        ledger_path=args.ledger,
        durable=args.durable,
        poison_path=args.poison_list,
        max_segment_bytes=args.max_segment_bytes,
        allow_request_faults=args.allow_request_faults,
        drain_timeout=args.drain_timeout,
        quiet=args.quiet,
    )

    from repro import obs

    with obs.tracing(args.trace), \
            obs.collecting_metrics(args.metrics) as registry:
        code = server.run(install_signal_handlers=True)
    _metrics_to_stderr(registry)
    return code


def cmd_graph(args: argparse.Namespace) -> int:
    fn = _load_function(args.file, args.ir)
    machine = _machine(args.machine, None)

    if args.kind == "cfg":
        from repro.viz import cfg_to_dot

        dot = cfg_to_dot(fn)
    elif args.kind == "gs":
        from repro.deps import block_schedule_graph
        from repro.viz import schedule_graph_to_dot

        dot = schedule_graph_to_dot(
            block_schedule_graph(fn.entry, machine=machine)
        )
    elif args.kind == "fdg":
        from repro.deps import block_false_dependence_graph
        from repro.viz import false_dependence_to_dot

        dot = false_dependence_to_dot(
            block_false_dependence_graph(fn.entry, machine)
        )
    elif args.kind == "ig":
        from repro.regalloc import build_interference_graph
        from repro.viz import interference_to_dot

        dot = interference_to_dot(build_interference_graph(fn))
    elif args.kind == "pig":
        from repro.core import build_parallel_interference_graph
        from repro.viz import pig_to_dot

        dot = pig_to_dot(build_parallel_interference_graph(fn, machine))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit("unknown graph kind {!r}".format(args.kind))

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dot + "\n")
        print("wrote {}".format(args.output))
    else:
        print(dot)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        DEFAULT_SIZES,
        PHASES,
        format_bench,
        run_bench,
        write_bench,
    )

    if args.sizes:
        try:
            sizes = tuple(int(s) for s in args.sizes.split(","))
        except ValueError:
            raise InputError(
                "bench workload sizes must be integers, got {!r}".format(
                    args.sizes
                )
            ) from None
    else:
        sizes = DEFAULT_SIZES
    bad_sizes = [s for s in sizes if s <= 0]
    if bad_sizes:
        raise InputError(
            "bench workload sizes must be positive, got {}".format(
                ", ".join(str(s) for s in bad_sizes)
            )
        )
    phases = tuple(args.phases.split(",")) if args.phases else PHASES
    unknown_phases = sorted(set(phases) - set(PHASES))
    if unknown_phases:
        raise InputError(
            "unknown bench workload/phase names: {}; choose from {}".format(
                ", ".join(repr(p) for p in unknown_phases),
                ", ".join(PHASES),
            )
        )
    if args.repeats < 1:
        raise InputError(
            "--repeats must be at least 1, got {}".format(args.repeats)
        )
    machine = _machine(args.machine, None)

    from repro import obs

    with obs.tracing(args.trace), \
            obs.collecting_metrics(args.metrics) as registry:
        rows = run_bench(
            sizes=sizes, phases=phases, machine=machine,
            repeats=args.repeats,
        )
    print(format_bench(rows))
    _metrics_to_stderr(registry)
    if args.output:
        write_bench(args.output, rows)
        print("wrote {}".format(args.output))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Aggregate a trace JSONL into per-phase / per-rung tables."""
    import json

    from repro import obs

    events, errors = obs.load_trace(args.trace_file)
    summary = obs.aggregate(events)
    problems = summary.get("span_problems") or []

    if args.json:
        document = dict(summary)
        document["invalid_lines"] = errors
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(obs.format_stats(summary))
        for error in errors:
            print("; invalid {}".format(error), file=sys.stderr)

    if args.expect_top_phase is not None:
        top = summary.get("top_phase")
        if top != args.expect_top_phase:
            print(
                "repro stats: top phase is {!r}, expected {!r}".format(
                    top, args.expect_top_phase
                ),
                file=sys.stderr,
            )
            return 1

    if args.check and (errors or problems):
        print(
            "repro stats: --check failed: {} invalid line(s), "
            "{} span problem(s)".format(len(errors), len(problems)),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_ledger_check(args: argparse.Namespace) -> int:
    """``repro ledger check`` — audit a run ledger read-only."""
    import json

    from repro.service.checkpoint import audit_ledger

    report = audit_ledger(args.path)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            "ledger {}: {} record(s) across {} segment(s), {} task(s) "
            "({} terminal, {} open), {} duplicate id(s)".format(
                args.path, report["records"],
                len(report["segments"]), report["tasks"],
                report["terminal"], report["non_terminal"],
                report["duplicate_task_ids"],
            )
        )
        if report["torn_tail"]:
            print(
                "  torn tail detected (crash debris; healed on next "
                "open)"
            )
        if report["non_terminal_task_ids"]:
            print("  open task(s): {}".format(
                ", ".join(report["non_terminal_task_ids"])
            ))
        for problem in report["problems"]:
            print("  PROBLEM: {}".format(problem))
        print("ledger check: {}".format(
            "ok" if report["ok"] else "FAILED"
        ))
    return 0 if report["ok"] else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos`` — run one seeded chaos campaign."""
    import json

    from repro.chaos import run_campaign

    if args.tasks < 2:
        raise InputError("--tasks must be >= 2")
    summary = run_campaign(
        seed=args.seed,
        workdir=args.workdir,
        quick=args.quick,
        tasks_per_round=args.tasks,
        keep=args.keep,
        progress=None if args.json_summary else print,
    )
    if args.json_summary:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        invariants = summary["invariants"]
        print(
            "chaos campaign seed={}: {} round(s) in {:.1f}s — "
            "orphans={} ledgers={} exactly-once={} cache={} -> "
            "{}".format(
                summary["seed"], len(summary["rounds"]),
                summary["duration_s"],
                "0" if invariants["zero_orphans"] else "FOUND",
                "ok" if invariants["ledger_audits_ok"] else "FAILED",
                "ok" if invariants["exactly_once"] else "FAILED",
                "honest" if invariants["cache_honest"] else "FAILED",
                "GREEN" if summary["ok"] else "RED",
            )
        )
        for round_ in summary["rounds"]:
            if not round_["ok"]:
                print("  round {} FAILED: {}".format(
                    round_["round"], "; ".join(round_["problems"])
                ))
    return 0 if summary["ok"] else 1


def cmd_kernels(_args: argparse.Namespace) -> int:
    from repro.workloads import ALL_KERNELS

    for name in sorted(ALL_KERNELS):
        fn = ALL_KERNELS[name]()
        print("{:<12} {:>3} instructions, live-out: {}".format(
            name,
            sum(len(b) for b in fn.blocks()),
            ", ".join(str(r) for r in fn.live_out) or "(none)",
        ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register allocation with instruction scheduling "
        "(Pinter, PLDI 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile source/IR through a strategy"
    )
    p_compile.add_argument("file")
    p_compile.add_argument(
        "--machine", default="two-unit-superscalar",
        help="machine preset ({})".format(", ".join(sorted(ALL_PRESETS))),
    )
    p_compile.add_argument("-r", "--registers", type=int, default=None)
    p_compile.add_argument(
        "--strategy", default="pinter",
        help="one of {} or 'all'".format(", ".join(STRATEGIES)),
    )
    p_compile.add_argument(
        "--ir", action="store_true", help="input is textual IR, not source"
    )
    p_compile.add_argument("--optimize", action="store_true")
    p_compile.add_argument("--timeline", action="store_true")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    p_compile.add_argument(
        "--strict", action="store_true",
        help="disable the degradation ladder: first phase error fails",
    )
    p_compile.add_argument(
        "--paranoid", action="store_true",
        help="cross-check the bitset dependence engine against the "
        "reference engine on every PIG build",
    )
    p_compile.add_argument(
        "--max-instrs", type=int, default=None, metavar="N",
        help="reject functions with more than N instructions (exit 1)",
    )
    p_compile.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for each strategy run, checked at "
        "phase boundaries and inside the dependence kernel "
        "(exit 1 when exhausted)",
    )
    p_compile.add_argument(
        "--pig-engine",
        choices=("auto", "vector", "bitset", "reference"),
        default="bitset",
        help="primary dependence engine for PIG construction: 'vector' "
        "is the packed-uint64 kernel (degrades vector->bitset->"
        "reference), 'auto' picks vector when numpy is importable",
    )
    p_compile.add_argument(
        "--pig-shards", type=int, default=0, metavar="N",
        help="with N >= 2, build the PIG region-sharded across N warm "
        "pool workers (vector/bitset engines only)",
    )
    p_compile.add_argument(
        "--backend",
        choices=("auto", "compact", "reference"),
        default="auto",
        help="allocator/scheduler kernel implementation: 'compact' runs "
        "the bitrow interference + worklist coloring + array scheduler "
        "fast paths and degrades to 'reference' on any failure "
        "('auto' resolves to compact)",
    )
    _add_region_cache_flags(p_compile)
    p_compile.add_argument(
        "--json-diagnostics", action="store_true",
        help="emit one JSON document (reports + metrics) on stdout "
        "instead of the text format",
    )
    p_compile.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        help="arm a fault point for ladder testing, e.g. "
        "'deps.bitset' or 'sched.augmented:stall=0.2' "
        "(also honors $REPRO_FAULTS)",
    )
    _add_obs_flags(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_batch = sub.add_parser(
        "batch",
        help="compile a manifest (or fuzz stream) on isolated workers "
        "with retries, circuit breaking, and checkpoint/resume",
    )
    p_batch.add_argument(
        "manifest", nargs="?", default=None,
        help="manifest file: JSON tasks or one source path per line",
    )
    p_batch.add_argument(
        "--fuzz", type=int, default=None, metavar="N",
        help="compile N deterministic fuzz programs instead of a manifest",
    )
    p_batch.add_argument(
        "--fuzz-seed", type=int, default=0, metavar="SEED",
        help="base seed for --fuzz task generation",
    )
    p_batch.add_argument(
        "--machine", default="two-unit-superscalar",
        help="machine preset ({})".format(", ".join(sorted(ALL_PRESETS))),
    )
    p_batch.add_argument("-r", "--registers", type=int, default=None)
    p_batch.add_argument(
        "--max-workers", type=int, default=4, metavar="K",
        help="in-flight worker process bound",
    )
    p_batch.add_argument(
        "--task-timeout", type=float, default=30.0, metavar="SECONDS",
        help="hard wall-clock limit per attempt; overdue workers are "
        "killed (SIGTERM then SIGKILL)",
    )
    p_batch.add_argument(
        "--pool", dest="pool", action="store_true", default=True,
        help="dispatch to a persistent warm worker pool (default): "
        "workers import the pipeline once and serve many tasks",
    )
    p_batch.add_argument(
        "--no-pool", dest="pool", action="store_false",
        help="fork one worker process per attempt (the PR-4 transport)",
    )
    p_batch.add_argument(
        "--max-tasks-per-worker", type=int, default=256, metavar="N",
        help="recycle a pool worker after N served tasks (leak hygiene)",
    )
    p_batch.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="reuse cached results for identical (source, machine, "
        "config, version) compiles; in-memory unless --cache-dir",
    )
    p_batch.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="never consult or populate the compile cache",
    )
    p_batch.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the compile cache here (implies --cache); warm "
        "re-runs skip compilation entirely",
    )
    _add_region_cache_flags(p_batch)
    p_batch.add_argument(
        "--retries", type=int, default=2, metavar="R",
        help="extra attempts for retryable failures (timeout, crash, "
        "worker exception); deterministic failures never retry",
    )
    p_batch.add_argument(
        "--backoff", type=float, default=0.1, metavar="SECONDS",
        help="base retry backoff (doubles per retry, with jitter)",
    )
    p_batch.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append terminal outcomes to this JSONL run ledger",
    )
    p_batch.add_argument(
        "--resume", default=None, metavar="PATH",
        help="load this ledger and skip journaled tasks with unchanged "
        "sources; new outcomes append to the same file (failed tasks "
        "whose failure was worker-level — timeout/crash — always "
        "recompile)",
    )
    p_batch.add_argument(
        "--retry-failed", action="store_true",
        help="with --resume: recompile every journaled failed task, "
        "even deterministic failures",
    )
    p_batch.add_argument(
        "--json-summary", action="store_true",
        help="emit the batch summary as one JSON document on stdout",
    )
    p_batch.add_argument(
        "--engine",
        choices=("auto", "vector", "bitset", "reference"),
        default="bitset",
        help="primary dependence engine rung ('auto' resolves to "
        "vector when numpy is importable)",
    )
    p_batch.add_argument(
        "--backend",
        choices=("auto", "compact", "reference"),
        default="auto",
        help="allocator/scheduler kernel implementation ('auto' "
        "resolves to compact; degrades to reference on failure)",
    )
    p_batch.add_argument(
        "--recheck-degraded", action="store_true",
        help="re-run degraded tasks once on the strict reference rung; "
        "a clean strict run upgrades them to ok",
    )
    p_batch.add_argument("--strict", action="store_true")
    p_batch.add_argument("--paranoid", action="store_true")
    p_batch.add_argument("--optimize", action="store_true")
    p_batch.add_argument("--max-instrs", type=int, default=None, metavar="N")
    p_batch.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="cooperative in-worker budget (backed by --task-timeout)",
    )
    p_batch.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        help="arm a fault point in every worker, e.g. "
        "'service.worker:crash' (also honors $REPRO_FAULTS)",
    )
    _add_obs_flags(p_batch)
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run a long-lived async compilation service over HTTP/JSON "
        "with admission control, request coalescing, and graceful drain",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8437,
        help="TCP port; 0 picks a free port and prints it",
    )
    p_serve.add_argument(
        "--machine", default="two-unit-superscalar",
        help="machine preset ({})".format(", ".join(sorted(ALL_PRESETS))),
    )
    p_serve.add_argument("-r", "--registers", type=int, default=None)
    p_serve.add_argument(
        "--pool-size", type=int, default=4, metavar="K",
        help="warm worker count (= max in-flight compiles)",
    )
    p_serve.add_argument(
        "--task-timeout", type=float, default=30.0, metavar="SECONDS",
        help="hard wall-clock limit per attempt; overdue workers are "
        "killed (SIGTERM then SIGKILL)",
    )
    p_serve.add_argument(
        "--max-queue-depth", type=int, default=64, metavar="N",
        help="global bound on admitted-but-unsettled jobs; past it "
        "submits are shed with a typed 503",
    )
    p_serve.add_argument(
        "--per-client-depth", type=int, default=8, metavar="N",
        help="admission tokens per client identity; a client at its "
        "bound is shed with a typed 429",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, metavar="R",
        help="extra attempts for worker-level failures (timeout, "
        "crash, worker exception)",
    )
    p_serve.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="base retry backoff (doubles per retry, with jitter)",
    )
    p_serve.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="serve identical (source, machine, config, version) "
        "compiles from the compile cache; in-memory unless --cache-dir",
    )
    p_serve.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="never consult or populate the compile cache",
    )
    _add_region_cache_flags(p_serve)
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the compile cache here (implies --cache)",
    )
    p_serve.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append every settled job to this JSONL run ledger; "
        "drain journals queued jobs as resumable 'interrupted' rows",
    )
    p_serve.add_argument(
        "--durable", action="store_true",
        help="journal accepted/dispatched rows to the ledger and "
        "resume unsettled jobs on startup (requires --ledger)",
    )
    p_serve.add_argument(
        "--poison-list", default=None, metavar="PATH",
        help="poison-task list (maintained by the supervisor); "
        "quarantined input digests are refused with HTTP 403",
    )
    p_serve.add_argument(
        "--max-segment-bytes", type=int, default=None, metavar="N",
        help="auto-compact the ledger once its active segment grows "
        "past N bytes (crash-safe swap)",
    )
    p_serve.add_argument(
        "--supervised", action="store_true",
        help="run the server as a supervised child: /healthz watched, "
        "crashes/hangs restarted with backoff and a restart budget, "
        "queued work resumed from the durable ledger (requires "
        "--ledger; implies --durable in the child)",
    )
    p_serve.add_argument(
        "--restart-budget", type=int, default=5, metavar="N",
        help="supervised: unexplained restarts allowed before giving "
        "up (poison-quarantining restarts are free)",
    )
    p_serve.add_argument(
        "--restart-backoff", type=float, default=0.5, metavar="SECONDS",
        help="supervised: base restart delay (doubles per restart)",
    )
    p_serve.add_argument(
        "--hang-timeout", type=float, default=10.0, metavar="SECONDS",
        help="supervised: /healthz silence after which a live server "
        "counts as hung and is killed",
    )
    p_serve.add_argument(
        "--health-interval", type=float, default=0.25, metavar="SECONDS",
        help="supervised: seconds between liveness probes",
    )
    p_serve.add_argument(
        "--poison-threshold", type=int, default=2, metavar="N",
        help="supervised: crashes-in-flight before an input digest is "
        "quarantined",
    )
    p_serve.add_argument(
        "--quiet", action="store_true",
        help="suppress startup/drain banner lines",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="ceiling on waiting for in-flight work during drain",
    )
    p_serve.add_argument(
        "--allow-request-faults", action="store_true",
        help="permit per-request 'faults' specs in /submit bodies "
        "(drill mode; off by default)",
    )
    p_serve.add_argument(
        "--engine",
        choices=("auto", "vector", "bitset", "reference"),
        default="bitset",
        help="primary dependence engine rung ('auto' resolves to "
        "vector when numpy is importable)",
    )
    p_serve.add_argument(
        "--backend",
        choices=("auto", "compact", "reference"),
        default="auto",
        help="allocator/scheduler kernel implementation ('auto' "
        "resolves to compact; degrades to reference on failure)",
    )
    p_serve.add_argument("--strict", action="store_true")
    p_serve.add_argument("--paranoid", action="store_true")
    p_serve.add_argument("--optimize", action="store_true")
    p_serve.add_argument("--max-instrs", type=int, default=None, metavar="N")
    p_serve.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="cooperative in-worker budget; per-request deadline_s "
        "tightens it further",
    )
    p_serve.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        help="arm a fault point, e.g. 'service.server:crash' (the "
        "request handler) or 'service.worker:hang' (every worker); "
        "also honors $REPRO_FAULTS",
    )
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_ledger = sub.add_parser(
        "ledger",
        help="inspect a run ledger (crash-consistency audit)",
    )
    ledger_sub = p_ledger.add_subparsers(dest="ledger_command",
                                         required=True)
    p_ledger_check = ledger_sub.add_parser(
        "check",
        help="read-only audit: classify torn tails, malformed "
        "records, duplicate task ids, and non-terminal rows; exits "
        "nonzero on integrity problems",
    )
    p_ledger_check.add_argument("path", help="ledger JSONL path")
    p_ledger_check.add_argument(
        "--json", action="store_true",
        help="emit the audit report as one JSON document",
    )
    p_ledger_check.set_defaults(func=cmd_ledger_check)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign: batch + supervised-serve "
        "workloads under injected process and filesystem faults, "
        "then assert the four durability invariants",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (same seed replays the same campaign)",
    )
    p_chaos.add_argument(
        "--quick", action="store_true",
        help="CI-smoke sizing (~1 minute) instead of the full soak",
    )
    p_chaos.add_argument(
        "--tasks", type=int, default=8, metavar="N",
        help="fuzz tasks per drill round",
    )
    p_chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="scratch directory (default: a fresh temp dir)",
    )
    p_chaos.add_argument(
        "--keep", action="store_true",
        help="keep the scratch directory for post-mortems",
    )
    p_chaos.add_argument(
        "--json-summary", action="store_true",
        help="emit the campaign summary as one JSON document",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_graph = sub.add_parser("graph", help="emit a DOT graph")
    p_graph.add_argument("file")
    p_graph.add_argument(
        "--kind", choices=("cfg", "gs", "fdg", "ig", "pig"), default="pig"
    )
    p_graph.add_argument("--machine", default="two-unit-superscalar")
    p_graph.add_argument("--ir", action="store_true")
    p_graph.add_argument("-o", "--output", default=None)
    p_graph.set_defaults(func=cmd_graph)

    p_kernels = sub.add_parser("kernels", help="list built-in kernels")
    p_kernels.set_defaults(func=cmd_kernels)

    p_bench = sub.add_parser(
        "bench", help="time the dependence/PIG pipeline on E7 workloads"
    )
    p_bench.add_argument(
        "--sizes", default=None,
        help="comma-separated workload sizes (default: 8,...,256)",
    )
    p_bench.add_argument(
        "--phases", default=None,
        help="comma-separated phase names (default: all)",
    )
    p_bench.add_argument("--machine", default="two-unit-superscalar")
    p_bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per phase; the minimum is reported",
    )
    p_bench.add_argument(
        "-o", "--output", default=None, help="write JSON rows to this path"
    )
    _add_obs_flags(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_stats = sub.add_parser(
        "stats",
        help="aggregate a --trace JSONL into per-phase/per-rung tables",
    )
    p_stats.add_argument(
        "trace_file", help="trace written by --trace (JSONL)"
    )
    p_stats.add_argument(
        "--json", action="store_true",
        help="emit the aggregated stats as one JSON document",
    )
    p_stats.add_argument(
        "--check", action="store_true",
        help="exit 1 when any line is invalid or any span is "
        "unbalanced (CI mode)",
    )
    p_stats.add_argument(
        "--expect-top-phase", default=None, metavar="PHASE",
        help="exit 1 unless PHASE holds the largest share of summed "
        "phase wall time (CI guard against perf-profile drift)",
    )
    p_stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: library errors become one stderr line + exit 2,
    never a traceback."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("repro: error: {}".format(exc), file=sys.stderr)
        return 2
    except BrokenPipeError:  # stdout closed early (e.g. piped to head)
        return 0
    finally:
        # Disarm any --inject-fault / $REPRO_FAULTS points so repeated
        # in-process invocations (tests, embedding) start clean.
        from repro.utils import faults

        faults.clear()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
