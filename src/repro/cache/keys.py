"""Content-addressed cache keys for compile results.

A compile result is reusable only when *everything* that could change
it is identical.  :class:`CacheKey` therefore captures five
components:

* ``input_digest`` — sha256 of (is_ir, name, text), the same digest
  the run ledger keys resume on (:func:`repro.utils.digest.
  input_digest`);
* ``machine`` — the machine-preset fingerprint: preset name plus the
  effective register-count override (presets are code, so code changes
  are covered by ``version``);
* ``strategy`` — the phase-ordering strategy that would run;
* ``config`` — the :meth:`DriverConfig fingerprint <repro.pipeline.
  driver.DriverConfig.fingerprint>`: any knob change (strict,
  paranoid, budgets, engine, …) is a different key;
* ``version`` — ``repro.__version__``, so a release that changes
  codegen can never replay a stale result.

The key's :meth:`~CacheKey.digest` is the content address: a sha256
over the canonical JSON of the components.  The on-disk store embeds
the components next to each entry and verifies them on load, so even
a (vanishingly unlikely) digest collision or a mangled store degrades
to a cache miss, never to a wrong compile.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

import repro
from repro.utils.digest import input_digest


@dataclass(frozen=True)
class CacheKey:
    """The identity of one cached compile result."""

    input_digest: str
    machine: str
    strategy: str
    config: str
    version: str

    def digest(self) -> str:
        """The content address: sha256 over the canonical JSON of the
        components (sorted keys, no whitespace ambiguity)."""
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, str]:
        return asdict(self)


def machine_fingerprint(machine: str, registers: Optional[int]) -> str:
    """Preset name plus the effective register override — the two
    inputs a worker uses to rebuild its machine model."""
    return "{}/r={}".format(
        machine, "default" if registers is None else registers
    )


def compile_cache_key(
    name: str,
    text: str,
    is_ir: bool,
    machine: str,
    registers: Optional[int],
    config,
    strategy: str = "pinter",
) -> CacheKey:
    """Build the :class:`CacheKey` for one compile attempt.

    *config* is a :class:`~repro.pipeline.driver.DriverConfig` (or
    anything with a compatible ``fingerprint()``).
    """
    return CacheKey(
        input_digest=input_digest(name, text, is_ir),
        machine=machine_fingerprint(machine, registers),
        strategy=strategy,
        config=config.fingerprint(),
        version=repro.__version__,
    )
