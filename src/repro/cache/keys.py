"""Content-addressed cache keys for compile results.

A compile result is reusable only when *everything* that could change
it is identical.  :class:`CacheKey` therefore captures five
components:

* ``input_digest`` — sha256 of (is_ir, name, text), the same digest
  the run ledger keys resume on (:func:`repro.utils.digest.
  input_digest`);
* ``machine`` — the machine fingerprint (:func:`machine_fingerprint`):
  for preset names, the preset plus the effective register-count
  override (presets are code, so code changes are covered by
  ``version``); for a concrete :class:`~repro.machine.model.
  MachineDescription`, a digest of its full canonical wire form —
  units, issue width, register count, latencies, overrides — so two
  custom machines can never collide to one key;
* ``strategy`` — the phase-ordering strategy that would run;
* ``config`` — the :meth:`DriverConfig fingerprint <repro.pipeline.
  driver.DriverConfig.fingerprint>`: any knob change (strict,
  paranoid, budgets, engine, …) is a different key;
* ``version`` — ``repro.__version__``, so a release that changes
  codegen can never replay a stale result.

The key's :meth:`~CacheKey.digest` is the content address: a sha256
over the canonical JSON of the components.  The on-disk store embeds
the components next to each entry and verifies them on load, so even
a (vanishingly unlikely) digest collision or a mangled store degrades
to a cache miss, never to a wrong compile.

:class:`RegionCacheKey` is the region-grain analogue: the input
component is :func:`region_digest` — a canonical, iteration-order-
stable serialization of one scheduling region's schedule graph — so a
one-region edit invalidates exactly that region's entries while every
other region of the function keeps hitting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Union

import repro
from repro.machine.model import MachineDescription, machine_to_wire
from repro.utils.digest import input_digest


@dataclass(frozen=True)
class CacheKey:
    """The identity of one cached compile result."""

    input_digest: str
    machine: str
    strategy: str
    config: str
    version: str

    def digest(self) -> str:
        """The content address: sha256 over the canonical JSON of the
        components (sorted keys, no whitespace ambiguity)."""
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, str]:
        return asdict(self)


def machine_fingerprint(
    machine: Union[str, MachineDescription],
    registers: Optional[int] = None,
) -> str:
    """The machine component of a cache key.

    Given a preset *name* (str), the fast path applies: name plus the
    effective register override identify the machine, because presets
    are code and code changes are covered by the key's ``version``.

    Given a concrete :class:`MachineDescription`, the fingerprint
    digests the full canonical wire form (:func:`repro.machine.model.
    machine_to_wire` — units, issue_width, num_registers, latencies,
    unit_overrides, pipelined).  Hashing only the display name would
    let two custom machines differing in, say, latencies collide and
    replay each other's compiles.
    """
    reg_part = "default" if registers is None else registers
    if isinstance(machine, str):
        return "{}/r={}".format(machine, reg_part)
    canonical = json.dumps(machine_to_wire(machine), sort_keys=True)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return "{}/r={}/m={}".format(machine.name, reg_part, digest)


def compile_cache_key(
    name: str,
    text: str,
    is_ir: bool,
    machine: Union[str, MachineDescription],
    registers: Optional[int],
    config,
    strategy: str = "pinter",
) -> CacheKey:
    """Build the :class:`CacheKey` for one compile attempt.

    *config* is a :class:`~repro.pipeline.driver.DriverConfig` (or
    anything with a compatible ``fingerprint()``).  *machine* may be a
    preset name or a concrete :class:`MachineDescription`.
    """
    return CacheKey(
        input_digest=input_digest(name, text, is_ir),
        machine=machine_fingerprint(machine, registers),
        strategy=strategy,
        config=config.fingerprint(),
        version=repro.__version__,
    )


# ----------------------------------------------------------------------
# Region-grain keys
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RegionCacheKey:
    """The identity of one cached region dependence kernel.

    Mirrors :class:`CacheKey` with the whole-source ``input_digest``
    replaced by :func:`region_digest` plus an explicit ``engine``
    component (the kernel rows are engine-equivalent by construction,
    but replaying across engines would couple cache correctness to
    that equivalence instead of merely testing it).
    """

    region_digest: str
    machine: str
    strategy: str
    engine: str
    config: str
    version: str

    def digest(self) -> str:
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, str]:
        return asdict(self)

    # CompileCache._note reads .input_digest for its trace events; the
    # region digest is the analogous "what input was this" component.
    @property
    def input_digest(self) -> str:
        return self.region_digest


def region_digest_parts(texts, boundaries, transit_positions) -> str:
    """Canonical digest of one region from its layout parts.

    The canonical schedule-graph recipe derives every edge from the
    instruction sequence itself (data dependences, branch-last
    ordering, the terminator skeleton) except the cross-region transit
    edges, so ``(instruction texts, block start offsets, sorted
    transit position pairs)`` pins the graph down completely — and is
    computable straight from the IR, *without* building the graph.
    That is what makes a cache hit cheap: the incremental build
    digests the region's blocks and skips the O(n²) dependence scan
    entirely when the kernel replays.
    """
    payload = json.dumps(
        {
            "fmt": "parts",
            "instructions": list(texts),
            "blocks": list(boundaries),
            "transit": [list(pair) for pair in sorted(transit_positions)],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def region_digest(sg) -> str:
    """Canonical digest of one region schedule graph.

    The dependence kernel is a pure function of (schedule graph,
    machine), so the cacheable identity of a region is exactly its
    schedule graph.  Graphs built by the canonical constructors carry
    their layout parts (``boundaries``/``transit_positions``) and
    digest via :func:`region_digest_parts` — the same bytes the
    IR-level fast path produces, so kernels stored by any phase replay
    in every other.  Hand-assembled graphs (extra precedence edges,
    ``keep_control_edges``) fall back to serializing the positional
    edge set, sorted so that set iteration order never leaks into a
    content address; the two forms are tagged (``fmt``) and can never
    collide.
    """
    from repro.ir.printer import format_instruction

    texts = [format_instruction(instr) for instr in sg.instructions]
    if sg.boundaries is not None and sg.transit_positions is not None:
        return region_digest_parts(
            texts, sg.boundaries, sg.transit_positions
        )
    position = {
        instr: idx for idx, instr in enumerate(sg.instructions)
    }
    edges = sorted(
        (position[u], position[v], data["kind"].name, int(data["delay"]))
        for u, v, data in sg.graph.edges(data=True)
    )
    payload = json.dumps(
        {"fmt": "edges", "instructions": texts, "edges": edges},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def region_cache_key(
    sg,
    machine: MachineDescription,
    engine: str,
    config_fingerprint: str,
    strategy: str = "pinter",
) -> RegionCacheKey:
    """Build the :class:`RegionCacheKey` for one region kernel build.

    *sg* is the region's :class:`~repro.deps.schedule_graph.
    ScheduleGraph`; *config_fingerprint* is ``DriverConfig.
    fingerprint()`` (pass ``""`` outside a driver compile).
    """
    return region_cache_key_from_digest(
        region_digest(sg), machine, engine, config_fingerprint, strategy
    )


def region_cache_key_from_digest(
    digest: str,
    machine: MachineDescription,
    engine: str,
    config_fingerprint: str,
    strategy: str = "pinter",
) -> RegionCacheKey:
    """:func:`region_cache_key` for a precomputed :func:`region_digest`
    (or :func:`region_digest_parts`) — the IR-level fast path that
    never builds the schedule graph."""
    return RegionCacheKey(
        region_digest=digest,
        machine=machine_fingerprint(machine),
        strategy=strategy,
        engine=engine,
        config=config_fingerprint,
        version=repro.__version__,
    )
