"""The compile cache: in-memory LRU in front of an on-disk store.

:class:`CompileCache` maps a :class:`~repro.cache.keys.CacheKey` to
the worker-result dict of a *successful* compile (the same validated
shape :func:`repro.service.worker.validate_result` accepts), so a
batch rerun can finalize a task without dispatching a worker at all.

Two tiers:

* **memory** — an LRU of up to ``capacity`` entries (an
  ``OrderedDict`` in recency order); hits are free, eviction is
  strictly least-recently-used.
* **disk** (optional) — one JSON file per entry under
  ``directory/<aa>/<digest>.json`` where ``aa`` is the first byte of
  the key digest (keeps directories small).  Writes are atomic
  (``os.replace`` of a same-directory temp file), so a crash mid-write
  leaves either the old entry or none.  Disk hits are promoted into
  the memory tier.

Poisoning resistance — the cache **refuses** at both ends:

* :meth:`~CompileCache.put` only accepts results whose
  ``status == "ok"`` and ``exit_code == 0``; failed, degraded,
  worker-exception, or malformed results are never stored (a degraded
  result depends on which ladder rung happened to fire — replaying it
  would freeze an environmental accident into a permanent answer).
* :meth:`~CompileCache.get` re-validates everything it reads: a
  truncated/corrupt file, a schema mismatch, or embedded key
  components that do not match the requested key (collision or
  tampering) all degrade to a **miss** — the entry is deleted
  best-effort and the task simply recompiles.

Every lookup/store emits ``cache.*`` counters via :mod:`repro.obs`.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional

from repro.cache.keys import CacheKey
from repro.obs import get_metrics, get_tracer
from repro.utils.errors import InputError

#: On-disk entry schema version (a mismatch is a miss).
CACHE_VERSION = 1

#: Default memory-tier capacity (entries).
DEFAULT_CAPACITY = 512


def _is_cacheable(result: Dict[str, object]) -> bool:
    """Only a clean, well-formed success may enter the cache."""
    if not isinstance(result, dict):
        return False
    if result.get("status") != "ok" or result.get("exit_code") != 0:
        return False
    if not isinstance(result.get("report"), dict):
        return False
    return True


class CompileCache:
    """Content-addressed compile-result cache (memory LRU + disk).

    Args:
        capacity: Memory-tier LRU bound (>= 1).
        directory: On-disk store root; None keeps the cache purely
            in-memory (still useful for duplicate inputs inside one
            batch).  Created on first use.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise InputError(
                "cache capacity must be >= 1, got {}".format(capacity)
            )
        self.capacity = capacity
        self.directory = directory
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "hits_memory": 0,
            "hits_disk": 0,
            "misses": 0,
            "stores": 0,
            "rejected": 0,
            "evictions": 0,
            "corrupt": 0,
        }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[Dict[str, object]]:
        """The cached result for *key*, or None.  Any defect along the
        way — missing entry, corrupt file, key mismatch — is a miss."""
        digest = key.digest()
        entry = self._memory.get(digest)
        if entry is not None:
            self._memory.move_to_end(digest)
            self.stats["hits_memory"] += 1
            self._note("hit.memory", key)
            # Deep copy: a caller mutating its result (even a nested
            # dict) must never corrupt the cached entry.
            return copy.deepcopy(entry)
        entry = self._disk_get(digest, key)
        if entry is not None:
            self._remember(digest, entry)
            self.stats["hits_disk"] += 1
            self._note("hit.disk", key)
            return copy.deepcopy(entry)
        self.stats["misses"] += 1
        self._note("miss", key)
        return None

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------

    def put(self, key: CacheKey, result: Dict[str, object]) -> bool:
        """Store a successful result; returns False (and stores
        nothing) for anything that is not a clean success."""
        if not _is_cacheable(result):
            self.stats["rejected"] += 1
            self._note("reject", key)
            return False
        digest = key.digest()
        entry = copy.deepcopy(result)
        self._remember(digest, entry)
        if self.directory is not None:
            self._disk_put(digest, key, entry)
        self.stats["stores"] += 1
        self._note("store", key)
        return True

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------

    def _remember(self, digest: str, entry: Dict[str, object]) -> None:
        self._memory[digest] = entry
        self._memory.move_to_end(digest)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats["evictions"] += 1
            get_metrics().counter("cache.evictions").inc()

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.directory, digest[:2], digest + ".json")

    def _disk_get(
        self, digest: str, key: CacheKey
    ) -> Optional[Dict[str, object]]:
        if self.directory is None:
            return None
        path = self._entry_path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(document, dict) \
                or document.get("v") != CACHE_VERSION \
                or document.get("key") != key.as_dict() \
                or not _is_cacheable(document.get("result")):
            self._quarantine(path)
            return None
        return document["result"]

    def _disk_put(
        self, digest: str, key: CacheKey, entry: Dict[str, object]
    ) -> None:
        """Atomic same-directory write; I/O trouble (full disk,
        permissions) silently skips persistence — the memory tier
        still has the entry and correctness never depends on disk."""
        path = self._entry_path(digest)
        document = {"v": CACHE_VERSION, "key": key.as_dict(), "result": entry}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            get_metrics().counter("cache.disk_errors").inc()

    def _quarantine(self, path: str) -> None:
        """A corrupt or mismatched entry degrades to a miss; remove it
        best-effort so it cannot waste another parse."""
        self.stats["corrupt"] += 1
        get_metrics().counter("cache.corrupt_entries").inc()
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    #: event name → metrics counter
    _COUNTERS = {
        "hit.memory": "cache.hits",
        "hit.disk": "cache.hits",
        "miss": "cache.misses",
        "store": "cache.stores",
        "reject": "cache.rejects",
    }

    def _note(self, what: str, key: CacheKey) -> None:
        get_metrics().counter(self._COUNTERS[what]).inc()
        get_tracer().event(
            "cache.{}".format(what), input=key.input_digest[:12]
        )

    def snapshot(self) -> Dict[str, object]:
        """Counters plus tier occupancy, for summaries and tests."""
        data = dict(self.stats)
        data["memory_entries"] = len(self._memory)
        data["hits"] = self.stats["hits_memory"] + self.stats["hits_disk"]
        return data
