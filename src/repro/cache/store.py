"""The compile cache: in-memory LRU in front of a sharded disk store.

:class:`CompileCache` maps a :class:`~repro.cache.keys.CacheKey` to
the worker-result dict of a *successful* compile (the same validated
shape :func:`repro.service.worker.validate_result` accepts), so a
batch rerun can finalize a task without dispatching a worker at all.

Two tiers:

* **memory** — an LRU of up to ``capacity`` entries (an
  ``OrderedDict`` in recency order); hits are free, eviction is
  strictly least-recently-used.
* **disk** (optional) — one JSON file per entry under
  ``directory/<aa>/<bb>/<digest>.json`` where ``aa``/``bb`` are the
  first two bytes of the key digest: a two-level digest-prefix shard
  keeps every directory small even at millions of entries.  A cache
  opened with a ``namespace`` (the region-kernel cache uses
  ``"region"``) roots its shards, quarantine, and LRU accounting
  under ``directory/<namespace>/`` instead, so several grains can
  share one ``--cache-dir`` without interfering.  The disk
  tier is **size-bounded**: ``max_disk_entries`` / ``max_disk_bytes``
  evict least-recently-used entries (disk hits refresh recency), so a
  long-running service can never grow the store without bound.  Disk
  hits are promoted into the memory tier.

Crash consistency — every disk operation goes through the filesystem
fault shim (:mod:`repro.utils.fsfaults`, scope ``cache``), and the
write path is write-temp → fsync(file) → rename → fsync(directory),
so a crash at any byte leaves either the old entry, the new entry, or
an orphan temp file — never a half-entry under the live name.  A
**startup recovery sweep** walks the store when a cache is attached to
an existing directory: orphan ``*.tmp`` files and truncated entries
are moved aside into ``directory/.quarantine/`` (counted as
``cache.quarantined``) instead of being re-parsed on every miss, and
the surviving entries seed the disk-LRU accounting.

Poisoning resistance — the cache **refuses** at both ends:

* :meth:`~CompileCache.put` only accepts results whose
  ``status == "ok"`` and ``exit_code == 0``; failed, degraded,
  worker-exception, or malformed results are never stored (a degraded
  result depends on which ladder rung happened to fire — replaying it
  would freeze an environmental accident into a permanent answer).
* :meth:`~CompileCache.get` re-validates everything it reads: a
  truncated/corrupt file, a schema mismatch, or embedded key
  components that do not match the requested key (collision or
  tampering) all degrade to a **miss** — the entry is quarantined and
  the task simply recompiles.

Every lookup/store emits ``cache.*`` counters via :mod:`repro.obs`.
"""

from __future__ import annotations

import copy
import json
import os
import re
import tempfile
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.cache.keys import CacheKey
from repro.obs import get_metrics, get_tracer
from repro.utils import fsfaults
from repro.utils.errors import InputError

#: On-disk entry schema version (a mismatch is a miss).  2 = the
#: two-level sharded layout; 3 = full machine fingerprints in keys
#: (pre-3 entries keyed by preset name alone could collide across
#: distinct custom machines, so they must miss cleanly).
CACHE_VERSION = 3

#: Top-level shard directories are the first digest byte in hex; a
#: namespace must never look like one or its entries would be swept by
#: a sibling namespace's recovery walk.
_SHARD_DIR = re.compile(r"^[0-9a-f]{2}$")

#: Default memory-tier capacity (entries).
DEFAULT_CAPACITY = 512

#: Corrupt/orphan files are moved here, inside the store directory.
QUARANTINE_DIR = ".quarantine"

#: Fault-shim scope for every disk operation of this module.
_SCOPE = "cache"


def _is_cacheable(result: Dict[str, object]) -> bool:
    """Only a clean, well-formed success may enter the cache."""
    if not isinstance(result, dict):
        return False
    if result.get("status") != "ok" or result.get("exit_code") != 0:
        return False
    if not isinstance(result.get("report"), dict):
        return False
    return True


class CompileCache:
    """Content-addressed compile-result cache (memory LRU + sharded
    disk store with size-bounded eviction).

    Args:
        capacity: Memory-tier LRU bound (>= 1).
        directory: On-disk store root; None keeps the cache purely
            in-memory (still useful for duplicate inputs inside one
            batch).  Created on first use; an existing directory is
            swept for orphan temp files and truncated entries at
            construction time.
        max_disk_entries: Disk-tier entry bound (None = unbounded).
        max_disk_bytes: Disk-tier payload-byte bound (None =
            unbounded).  Both bounds evict least-recently-used.
        namespace: Optional sub-store name.  Namespaced caches (e.g.
            the ``"region"`` kernel cache) live under
            ``directory/<namespace>/`` with their own shards,
            quarantine, and LRU accounting, so grains can share one
            ``--cache-dir`` without ever sweeping or evicting each
            other's entries.  A namespace may not look like a shard
            directory (two lowercase hex chars).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: Optional[str] = None,
        max_disk_entries: Optional[int] = None,
        max_disk_bytes: Optional[int] = None,
        namespace: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise InputError(
                "cache capacity must be >= 1, got {}".format(capacity)
            )
        if max_disk_entries is not None and max_disk_entries < 1:
            raise InputError(
                "max_disk_entries must be >= 1, got {}".format(
                    max_disk_entries
                )
            )
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise InputError(
                "max_disk_bytes must be >= 1, got {}".format(max_disk_bytes)
            )
        if namespace is not None:
            if (
                not namespace
                or namespace != os.path.basename(namespace)
                or namespace.startswith(".")
                or _SHARD_DIR.match(namespace)
            ):
                raise InputError(
                    "invalid cache namespace {!r} (must be a plain "
                    "directory name, not hidden, not two hex "
                    "chars)".format(namespace)
                )
        self.capacity = capacity
        self.directory = directory
        self.namespace = namespace
        #: Root of this cache's own shards/quarantine: the directory
        #: itself for the default namespace, a subdirectory otherwise.
        self._root = (
            None
            if directory is None
            else directory
            if namespace is None
            else os.path.join(directory, namespace)
        )
        self.max_disk_entries = max_disk_entries
        self.max_disk_bytes = max_disk_bytes
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        #: digest → entry bytes, recency-ordered (oldest first).
        self._disk_lru: "OrderedDict[str, int]" = OrderedDict()
        self._disk_bytes = 0
        self.stats: Dict[str, int] = {
            "hits_memory": 0,
            "hits_disk": 0,
            "misses": 0,
            "stores": 0,
            "rejected": 0,
            "evictions": 0,
            "corrupt": 0,
            "quarantined": 0,
            "disk_evictions": 0,
            "disk_errors": 0,
        }
        if self._root is not None and os.path.isdir(self._root):
            self._recover()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[Dict[str, object]]:
        """The cached result for *key*, or None.  Any defect along the
        way — missing entry, corrupt file, key mismatch — is a miss."""
        digest = key.digest()
        entry = self._memory.get(digest)
        if entry is not None:
            self._memory.move_to_end(digest)
            self.stats["hits_memory"] += 1
            self._note("hit.memory", key)
            # Deep copy: a caller mutating its result (even a nested
            # dict) must never corrupt the cached entry.
            return copy.deepcopy(entry)
        entry = self._disk_get(digest, key)
        if entry is not None:
            self._remember(digest, entry)
            self.stats["hits_disk"] += 1
            self._note("hit.disk", key)
            return copy.deepcopy(entry)
        self.stats["misses"] += 1
        self._note("miss", key)
        return None

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------

    def put(self, key: CacheKey, result: Dict[str, object]) -> bool:
        """Store a successful result; returns False (and stores
        nothing) for anything that is not a clean success."""
        if not _is_cacheable(result):
            self.stats["rejected"] += 1
            self._note("reject", key)
            return False
        digest = key.digest()
        entry = copy.deepcopy(result)
        self._remember(digest, entry)
        if self.directory is not None:
            self._disk_put(digest, key, entry)
        self.stats["stores"] += 1
        self._note("store", key)
        return True

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------

    def _remember(self, digest: str, entry: Dict[str, object]) -> None:
        self._memory[digest] = entry
        self._memory.move_to_end(digest)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats["evictions"] += 1
            get_metrics().counter("cache.evictions").inc()

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _entry_path(self, digest: str) -> str:
        return os.path.join(
            self._root, digest[:2], digest[2:4], digest + ".json"
        )

    def _recover(self) -> None:
        """Startup sweep: quarantine orphan temp files and truncated
        entries; seed the disk-LRU accounting (oldest-mtime first)
        from what survives.

        The walk covers only this namespace's own shard directories
        (two hex chars at the root) — sibling namespaces under the
        same ``--cache-dir`` are someone else's store, and sweeping or
        LRU-accounting their entries would let one namespace evict
        another's files.
        """
        try:
            top = sorted(os.listdir(self._root))
        except OSError:
            return
        roots = [
            os.path.join(self._root, name)
            for name in top
            if _SHARD_DIR.match(name)
            and os.path.isdir(os.path.join(self._root, name))
        ]
        survivors: List[Tuple[float, str, int]] = []
        for shard_root in roots:
            self._recover_shard(shard_root, survivors)
        survivors.sort()
        for _, digest, size in survivors:
            self._disk_lru[digest] = size
            self._disk_bytes += size
        self._evict_disk()

    def _recover_shard(
        self,
        shard_root: str,
        survivors: List[Tuple[float, str, int]],
    ) -> None:
        for dirpath, dirnames, filenames in os.walk(shard_root):
            dirnames[:] = [d for d in dirnames if d != QUARANTINE_DIR]
            for name in filenames:
                path = os.path.join(dirpath, name)
                if name.endswith(".tmp"):
                    # A crash in the write-temp/rename window left
                    # this orphan; it was never the live entry.
                    self._quarantine_file(path, reason="orphan-temp")
                    continue
                if not name.endswith(".json"):
                    continue
                try:
                    size = os.path.getsize(path)
                    intact = size > 0
                    if intact:
                        with open(path, "rb") as handle:
                            handle.seek(-1, os.SEEK_END)
                            intact = handle.read(1) == b"}"
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue
                if not intact:
                    # Torn write that made it under the live name
                    # (power loss after rename, before data reached
                    # the platter).
                    self.stats["corrupt"] += 1
                    get_metrics().counter("cache.corrupt_entries").inc()
                    self._quarantine_file(path, reason="truncated")
                    continue
                survivors.append((mtime, name[: -len(".json")], size))

    def _disk_get(
        self, digest: str, key: CacheKey
    ) -> Optional[Dict[str, object]]:
        if self.directory is None:
            return None
        path = self._entry_path(digest)
        try:
            with fsfaults.open(path, encoding="utf-8", scope=_SCOPE) as handle:
                document = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine_corrupt(digest, path)
            return None
        if not isinstance(document, dict) \
                or document.get("v") != CACHE_VERSION \
                or document.get("key") != key.as_dict() \
                or not _is_cacheable(document.get("result")):
            self._quarantine_corrupt(digest, path)
            return None
        if digest in self._disk_lru:
            self._disk_lru.move_to_end(digest)
        return document["result"]

    def _disk_put(
        self, digest: str, key: CacheKey, entry: Dict[str, object]
    ) -> None:
        """Write-temp → fsync → rename → fsync(dir); I/O trouble (full
        disk, permissions, injected faults) skips persistence — the
        memory tier still has the entry and correctness never depends
        on disk."""
        path = self._entry_path(digest)
        directory = os.path.dirname(path)
        document = {"v": CACHE_VERSION, "key": key.as_dict(), "result": entry}
        data = json.dumps(document, sort_keys=True)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=directory, suffix=".tmp"
            )
            try:
                handle = fsfaults.wrap(
                    os.fdopen(fd, "w", encoding="utf-8"), _SCOPE
                )
                with handle:
                    handle.write(data)
                    handle.flush()
                    fsfaults.fsync(handle, _SCOPE)
                fsfaults.replace(tmp, path, _SCOPE)
                fsfaults.sync_directory(directory, _SCOPE)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats["disk_errors"] += 1
            get_metrics().counter("cache.disk_errors").inc()
            return
        self._disk_remember(digest, len(data))

    def _disk_remember(self, digest: str, size: int) -> None:
        if digest in self._disk_lru:
            self._disk_bytes -= self._disk_lru.pop(digest)
        self._disk_lru[digest] = size
        self._disk_bytes += size
        self._evict_disk()

    def _over_disk_budget(self) -> bool:
        if self.max_disk_entries is not None and \
                len(self._disk_lru) > self.max_disk_entries:
            return True
        if self.max_disk_bytes is not None and \
                self._disk_bytes > self.max_disk_bytes:
            return True
        return False

    def _evict_disk(self) -> None:
        while self._disk_lru and self._over_disk_budget():
            digest, size = self._disk_lru.popitem(last=False)
            self._disk_bytes -= size
            try:
                fsfaults.unlink(self._entry_path(digest), _SCOPE)
            except OSError:
                self.stats["disk_errors"] += 1
                get_metrics().counter("cache.disk_errors").inc()
            self.stats["disk_evictions"] += 1
            get_metrics().counter("cache.disk_evictions").inc()

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def _quarantine_corrupt(self, digest: str, path: str) -> None:
        """A corrupt or mismatched entry degrades to a miss; move it
        aside so it cannot waste another parse on the next miss."""
        self.stats["corrupt"] += 1
        get_metrics().counter("cache.corrupt_entries").inc()
        if digest in self._disk_lru:
            self._disk_bytes -= self._disk_lru.pop(digest)
        self._quarantine_file(path, reason="corrupt")

    def _quarantine_file(self, path: str, reason: str) -> None:
        """Move *path* into ``.quarantine/`` (raw os ops — quarantine
        is the recovery path and must not recurse into the fault
        shim); deletion is the fallback when even that fails."""
        target_dir = os.path.join(self._root, QUARANTINE_DIR)
        try:
            os.makedirs(target_dir, exist_ok=True)
            os.replace(
                path, os.path.join(target_dir, os.path.basename(path))
            )
        except OSError:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover
                pass
        self.stats["quarantined"] += 1
        get_metrics().counter("cache.quarantined").inc()
        get_tracer().counter("cache.quarantined", 1, reason=reason)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    #: event name → metrics counter
    _COUNTERS = {
        "hit.memory": "cache.hits",
        "hit.disk": "cache.hits",
        "miss": "cache.misses",
        "store": "cache.stores",
        "reject": "cache.rejects",
    }

    def _note(self, what: str, key: CacheKey) -> None:
        get_metrics().counter(self._COUNTERS[what]).inc()
        get_tracer().event(
            "cache.{}".format(what), input=key.input_digest[:12]
        )

    def snapshot(self) -> Dict[str, object]:
        """Counters plus tier occupancy, for summaries and tests."""
        data = dict(self.stats)
        data["memory_entries"] = len(self._memory)
        data["disk_entries"] = len(self._disk_lru)
        data["disk_bytes"] = self._disk_bytes
        data["hits"] = self.stats["hits_memory"] + self.stats["hits_disk"]
        return data
