"""Content-addressed compile cache.

Public surface of the ``repro.cache`` package: build keys
(:func:`compile_cache_key`, :class:`CacheKey`) and hold results
(:class:`CompileCache` — in-memory LRU plus optional on-disk store).
The batch runner consults it before dispatching a worker and populates
it from clean successes, so warm reruns skip compilation entirely;
``repro batch --cache/--cache-dir`` wires it up at the CLI.
"""

from repro.cache.keys import CacheKey, compile_cache_key, machine_fingerprint
from repro.cache.store import CACHE_VERSION, CompileCache, DEFAULT_CAPACITY

__all__ = [
    "CACHE_VERSION",
    "CacheKey",
    "CompileCache",
    "DEFAULT_CAPACITY",
    "compile_cache_key",
    "machine_fingerprint",
]
