"""Content-addressed compile cache.

Public surface of the ``repro.cache`` package: build keys
(:func:`compile_cache_key`, :class:`CacheKey` — or, at region grain,
:func:`region_cache_key`, :class:`RegionCacheKey`) and hold results
(:class:`CompileCache` — in-memory LRU plus optional on-disk store,
optionally namespaced per grain).  The batch runner consults it before
dispatching a worker and populates it from clean successes, so warm
reruns skip compilation entirely; ``repro batch --cache/--cache-dir``
wires it up at the CLI, and ``--region-cache`` does the same for the
region-kernel grain inside the driver.
"""

from repro.cache.keys import (
    CacheKey,
    RegionCacheKey,
    compile_cache_key,
    machine_fingerprint,
    region_cache_key,
    region_cache_key_from_digest,
    region_digest,
    region_digest_parts,
)
from repro.cache.store import CACHE_VERSION, CompileCache, DEFAULT_CAPACITY

__all__ = [
    "CACHE_VERSION",
    "CacheKey",
    "CompileCache",
    "DEFAULT_CAPACITY",
    "RegionCacheKey",
    "compile_cache_key",
    "machine_fingerprint",
    "region_cache_key",
    "region_cache_key_from_digest",
    "region_digest",
    "region_digest_parts",
]
