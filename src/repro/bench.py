"""Benchmark harness for the dependence/PIG pipeline (``repro bench``).

Times the phases the E7 scaling experiment exercises — PIG
construction (bitset and retained-reference engines), transitive
closure (bitrow and set-based), and the combined coloring — over the
E7 random-block workloads, and emits one JSON row per (workload,
phase):

    {"workload": "e7-n128", "n_instrs": 129, "phase": "pig_construction",
     "wall_s": 0.0123, "peak_kb": 456.7}

Wall time is the minimum over ``repeats`` runs (noise-robust); peak
memory is tracemalloc's high-water mark for a single run, in KiB.
``*_reference`` phases run the retained set-based pipeline
(:mod:`repro.deps.reference`) so every result file records the
bitset kernel's speedup alongside its absolute times.  Results are
compared across commits by ``tools/bench_compare.py``.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.parallel_interference import build_parallel_interference_graph
from repro.deps.reference import reference_transitive_closure_pairs
from repro.deps.schedule_graph import build_schedule_graph
from repro.deps.transitive import transitive_closure_pairs
from repro.machine.model import MachineDescription
from repro.machine.presets import two_unit_superscalar
from repro.utils.errors import InputError
from repro.workloads import RandomBlockConfig, random_block

__all__ = [
    "DEFAULT_SIZES",
    "PHASES",
    "format_bench",
    "run_bench",
    "write_bench",
]

#: E7 workload sizes, matching benchmarks/test_e7_scaling.py.
DEFAULT_SIZES = (8, 16, 32, 64, 128, 256)

#: Phase name → benchmark callable factory; see :func:`_phase_thunks`.
PHASES = (
    "pig_construction",
    "pig_construction_vector",
    "pig_construction_reference",
    "closure",
    "closure_reference",
    "coloring",
)


def _phase_thunks(
    fn, machine: MachineDescription
) -> Dict[str, Callable[[], object]]:
    """Zero-argument callables for each benchmarked phase of *fn*."""
    block = fn.entry

    def closure_input():
        return build_schedule_graph(block.instructions, machine=machine)

    def coloring():
        from repro.core.coloring import pinter_color

        pig = build_parallel_interference_graph(fn, machine)
        return pinter_color(pig, num_registers=machine.num_registers)

    return {
        "pig_construction": lambda: build_parallel_interference_graph(
            fn, machine, engine="bitset"
        ),
        "pig_construction_vector": lambda: build_parallel_interference_graph(
            fn, machine, engine="vector"
        ),
        "pig_construction_reference": lambda: build_parallel_interference_graph(
            fn, machine, engine="reference"
        ),
        "closure": lambda: transitive_closure_pairs(closure_input()),
        "closure_reference": lambda: reference_transitive_closure_pairs(
            closure_input()
        ),
        "coloring": coloring,
    }


def _measure(thunk: Callable[[], object], repeats: int) -> Dict[str, float]:
    """(min wall seconds, peak KiB) of *thunk*.

    Timing runs come first, untraced; the tracemalloc run is separate
    because tracing skews wall time badly.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    tracemalloc.start()
    try:
        thunk()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {"wall_s": best, "peak_kb": peak / 1024.0}


def run_bench(
    sizes: Sequence[int] = DEFAULT_SIZES,
    phases: Sequence[str] = PHASES,
    machine: Optional[MachineDescription] = None,
    repeats: int = 3,
    window: int = 8,
) -> List[Dict[str, object]]:
    """Benchmark *phases* over the E7 workloads of the given *sizes*.

    Returns:
        One row dict per (workload, phase):
        ``{workload, n_instrs, phase, wall_s, peak_kb}``.
    """
    if machine is None:
        machine = two_unit_superscalar()
    unknown = set(phases) - set(PHASES)
    if unknown:
        raise InputError(
            "unknown bench phases: {} (choose from {})".format(
                ", ".join(sorted(unknown)), ", ".join(PHASES)
            )
        )
    non_positive = [s for s in sizes if s <= 0]
    if non_positive:
        raise InputError(
            "bench workload sizes must be positive, got {}".format(
                ", ".join(str(s) for s in non_positive)
            )
        )
    if repeats < 1:
        raise InputError("repeats must be at least 1, got {}".format(repeats))
    rows: List[Dict[str, object]] = []
    for size in sizes:
        fn = random_block(RandomBlockConfig(size=size, window=window, seed=size))
        n_instrs = sum(len(b) for b in fn.blocks())
        thunks = _phase_thunks(fn, machine)
        for phase in phases:
            thunk = thunks[phase]
            thunk()  # warm caches outside the timed runs
            sample = _measure(thunk, repeats)
            rows.append(
                {
                    "workload": "e7-n{}".format(size),
                    "n_instrs": n_instrs,
                    "phase": phase,
                    "wall_s": round(sample["wall_s"], 6),
                    "peak_kb": round(sample["peak_kb"], 1),
                }
            )
    return rows


def write_bench(path: str, rows: List[Dict[str, object]]) -> None:
    """Write bench *rows* as pretty-printed JSON to *path*."""
    with open(path, "w") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_bench(rows: List[Dict[str, object]]) -> str:
    """Human-readable table of bench rows, with the bitset/reference
    speedup annotated wherever both phases of a workload are present."""
    by_key = {(r["workload"], r["phase"]): r for r in rows}
    lines = [
        "{:<10} {:>8} {:<28} {:>10} {:>10}".format(
            "workload", "n_instrs", "phase", "wall_s", "peak_kb"
        )
    ]
    for row in rows:
        note = ""
        if not str(row["phase"]).endswith("_reference"):
            ref = by_key.get((row["workload"], str(row["phase"]) + "_reference"))
            if ref and row["wall_s"]:
                note = "  ({:.1f}x vs reference)".format(
                    ref["wall_s"] / row["wall_s"]
                )
        lines.append(
            "{:<10} {:>8} {:<28} {:>10.6f} {:>10.1f}{}".format(
                row["workload"],
                row["n_instrs"],
                row["phase"],
                row["wall_s"],
                row["peak_kb"],
                note,
            )
        )
    return "\n".join(lines)
