"""The schedule graph G_s = (V_s, E_s).

"Every vertex v ∈ V_s corresponds to an instruction ...  There exists a
directed edge (u, v) ∈ E_s from u to v if u must be executed before v.
This happens in one of the following three cases: (i) there is a data
dependence of v on u, (ii) there is a control dependence from u to v,
(iii) there is a machine constraint that enforces the precedence of u
over v."

Edges carry the *delay* the scheduler must respect: a flow edge's delay
is the producer's result latency on the given machine; ordering-only
edges (anti/output/memory/control) carry delay 1, i.e. strict
precedence without additional stall.  (The paper notes these "delay
numbers on the edges ... may be used for generating more accurate EP
numbers".)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.deps.datadeps import (
    Dependence,
    DependenceKind,
    all_dependences,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.utils.errors import SchedulingError


@dataclass
class ScheduleGraph:
    """A precedence DAG over instructions with per-edge delays.

    Attributes:
        instructions: The underlying sequence in program order.
        graph: ``networkx.DiGraph``; nodes are :class:`Instruction`
            objects, edges have ``kind`` (:class:`DependenceKind`) and
            ``delay`` (int cycles) attributes.
        machine: The machine whose latencies parameterize the delays,
            or ``None`` for a latency-agnostic graph (all delays 1).
        boundaries: Start offsets of the underlying blocks within
            ``instructions`` when the graph was built by one of the
            canonical constructors, else ``None``.  Together with
            ``transit_positions`` this pins down the edge set without
            serializing it: every other edge is a deterministic
            function of the instruction texts and the block layout
            (see :func:`repro.cache.keys.region_digest`).
        transit_positions: Sorted ``(pos_u, pos_v)`` pairs of the
            cross-region transit edges (deps.global_deps), or ``None``
            when the graph carries edges the canonical recipe does not
            (``extra_precedence``, ``keep_control_edges``).
    """

    instructions: List[Instruction]
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    machine: Optional[MachineDescription] = None
    boundaries: Optional[Tuple[int, ...]] = None
    transit_positions: Optional[Tuple[Tuple[int, int], ...]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_dependence(self, dep: Dependence) -> None:
        if dep.kind is DependenceKind.FLOW:
            delay = (
                self.machine.latency_of(dep.source)
                if self.machine is not None
                else dep.source.latency
            )
        elif dep.kind is DependenceKind.ANTI:
            # Anti dependences permit same-cycle issue: the hardware
            # reads operands before writing results, which is why the
            # open-interval convention lets a register be reused "in
            # the same statement that last uses it".  The target may
            # not execute strictly *before* the source (delay 0).
            delay = 0
        else:
            delay = 1
        self.add_edge(dep.source, dep.target, dep.kind, delay)

    def add_edge(
        self,
        source: Instruction,
        target: Instruction,
        kind: DependenceKind,
        delay: int = 1,
    ) -> None:
        """Add (or strengthen) a precedence edge.

        Parallel dependences between the same pair keep the maximum
        delay and the earliest-added kind.
        """
        if self.graph.has_edge(source, target):
            data = self.graph.edges[source, target]
            data["delay"] = max(data["delay"], delay)
            return
        self.graph.add_edge(source, target, kind=kind, delay=delay)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def predecessors(self, instr: Instruction) -> List[Instruction]:
        return list(self.graph.predecessors(instr))

    def successors(self, instr: Instruction) -> List[Instruction]:
        return list(self.graph.successors(instr))

    def delay(self, source: Instruction, target: Instruction) -> int:
        return self.graph.edges[source, target]["delay"]

    def kind(self, source: Instruction, target: Instruction) -> DependenceKind:
        return self.graph.edges[source, target]["kind"]

    def edges(self) -> List[Tuple[Instruction, Instruction]]:
        return list(self.graph.edges())

    def dependence_edges(
        self, kinds: Optional[Iterable[DependenceKind]] = None
    ) -> List[Tuple[Instruction, Instruction]]:
        """Edges filtered by dependence kind."""
        if kinds is None:
            return self.edges()
        wanted = set(kinds)
        return [
            (u, v)
            for u, v, data in self.graph.edges(data=True)
            if data["kind"] in wanted
        ]

    def check_acyclic(self) -> None:
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise SchedulingError(
                "schedule graph has a cycle: {}".format(
                    " -> ".join(str(u.uid) for u, _v in cycle)
                )
            )

    def topological_order(self) -> List[Instruction]:
        """A deterministic topological order (program order as tie-break)."""
        self.check_acyclic()
        position = {instr: idx for idx, instr in enumerate(self.instructions)}
        return list(
            nx.lexicographical_topological_sort(
                self.graph, key=lambda i: position.get(i, len(position))
            )
        )

    def critical_path_length(self) -> int:
        """Length in cycles of the longest delay-weighted path, counting
        one cycle for the final instruction itself — a lower bound on
        any schedule's makespan."""
        self.check_acyclic()
        finish: Dict[Instruction, int] = {}
        for instr in self.topological_order():
            earliest = 0
            for pred in self.graph.predecessors(instr):
                earliest = max(
                    earliest, finish[pred] + self.delay(pred, instr) - 1
                )
            finish[instr] = earliest + 1
        return max(finish.values(), default=0)

    def __len__(self) -> int:
        return len(self.instructions)


def build_schedule_graph(
    instructions: Sequence[Instruction],
    machine: Optional[MachineDescription] = None,
    extra_precedence: Iterable[Tuple[Instruction, Instruction]] = (),
) -> ScheduleGraph:
    """Build G_s for a straight-line instruction sequence.

    Edges added:
      * every register/memory data dependence of the sequence;
      * an ordering edge from every instruction to the trailing branch
        (if any) — the branch semantically ends the block, a machine
        precedence constraint of type (iii);
      * caller-supplied *extra_precedence* pairs (kind MACHINE), the
        hook for explicit machine-specific precedence rules.
    """
    sg = ScheduleGraph(instructions=list(instructions), machine=machine)
    for instr in instructions:
        sg.graph.add_node(instr)
    for dep in all_dependences(instructions):
        sg.add_dependence(dep)
    if instructions and instructions[-1].opcode.is_branch:
        terminator = instructions[-1]
        for instr in instructions[:-1]:
            sg.add_edge(instr, terminator, DependenceKind.CONTROL, delay=1)
    extra = list(extra_precedence)
    for source, target in extra:
        sg.add_edge(source, target, DependenceKind.MACHINE, delay=1)
    if not extra:
        # Pure single-sequence recipe: the edge set is a function of
        # the instruction texts alone.
        sg.boundaries = (0,)
        sg.transit_positions = ()
    return sg


def block_schedule_graph(
    block: BasicBlock, machine: Optional[MachineDescription] = None
) -> ScheduleGraph:
    """G_s of a single basic block."""
    return build_schedule_graph(block.instructions, machine=machine)


def region_schedule_graph(
    fn: Function,
    block_names: Sequence[str],
    machine: Optional[MachineDescription] = None,
    keep_control_edges: bool = False,
    dependence_graph: Optional[nx.DiGraph] = None,
    transit_pairs: Optional[
        Sequence[Tuple[Instruction, Instruction]]
    ] = None,
) -> ScheduleGraph:
    """G_s of a multi-block region.

    Data dependences are computed over the concatenated instruction
    sequence.  Control-dependence edges between the region's blocks are
    *omitted* by default — the paper's region scheduling works "by
    logically ignoring the control dependence edges between two basic
    blocks that are considered as a single block for scheduling" — but
    each block's internal branch-last ordering is preserved, and
    branches of earlier blocks stay ordered before later blocks'
    branches (the region's control skeleton).  Pass
    ``keep_control_edges=True`` to order every earlier-block
    instruction before every later-block instruction instead (no
    cross-block motion).

    *dependence_graph* lets a caller that builds many regions of the
    same function share one :func:`~repro.deps.global_deps.
    function_dependence_graph`; *transit_pairs* goes one step further
    and supplies the region's precomputed transit pairs outright (the
    incremental build computes them for its cache digest and must not
    pay for them twice).
    """
    blocks = [fn.block(name) for name in block_names]
    instructions: List[Instruction] = []
    boundaries: List[int] = []
    for block in blocks:
        boundaries.append(len(instructions))
        instructions.extend(block.instructions)
    sg = build_schedule_graph(instructions, machine=machine)

    if transit_pairs is None and len(blocks) > 1:
        # Dependences between region instructions may transit blocks
        # OUTSIDE the region (a value defined before an if, copied in
        # an arm, consumed after the join).  The concatenated-sequence
        # pass above cannot see those; add them from the whole-function
        # dependence graph so the region's E_t — hence E_f — stays
        # sound (see deps.global_deps).
        from repro.deps.global_deps import transit_dependence_pairs as _tdp

        transit_pairs = _tdp(fn, instructions, dependence_graph)
    transit_pairs = list(transit_pairs or ())
    for u, v in transit_pairs:
        sg.add_edge(u, v, DependenceKind.CONTROL, delay=1)
    position = {instr: idx for idx, instr in enumerate(instructions)}
    sg.boundaries = tuple(boundaries)
    sg.transit_positions = tuple(
        sorted((position[u], position[v]) for u, v in transit_pairs)
    )

    sequences: List[List[Instruction]] = [list(b.instructions) for b in blocks]
    if keep_control_edges:
        # The extra ordering edges are not part of the canonical
        # recipe, so the layout fields no longer pin down the edge set.
        sg.boundaries = None
        sg.transit_positions = None
        for earlier, later in zip(sequences, sequences[1:]):
            for u in earlier:
                for v in later:
                    sg.add_edge(u, v, DependenceKind.CONTROL, delay=1)
    else:
        # Keep each block's terminator before the next block's
        # terminator, and before nothing else: instructions may migrate
        # across the (plausible) block boundary.
        for earlier, later in zip(sequences, sequences[1:]):
            if not earlier or not later:
                continue
            if earlier[-1].opcode.is_branch and later[-1].opcode.is_branch:
                sg.add_edge(
                    earlier[-1], later[-1], DependenceKind.CONTROL, delay=1
                )
            # Every instruction must still come after branches that
            # guard it when those branches are conditional; for
            # control-equivalent blocks this is unnecessary, which is
            # exactly why regions are restricted to plausible pairs.
    return sg
