"""Transitive closure of the schedule graph.

The construction of E_t starts from "the set of edges in the transitive
closure of G_s ... after the removal of the directions of the edges".
The closure is computed by a reverse-topological reachability DP over
big-int bitrows (:mod:`repro.deps.bitset`): each instruction ORs its
successors' rows, 64 vertices per machine word, so the cost is truly
O(V·E/word) — deterministic, and independent of networkx version
quirks.  The set-of-instructions and set-of-pairs return types of this
module are materialized views over those rows; callers that can stay
in row form should use :class:`repro.deps.bitset.DependenceBitKernel`
directly.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.deps.bitset import InstructionIndex
from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.instructions import Instruction
from repro.utils.bits import iter_bits

#: An undirected instruction pair, order-normalized by uid.
Pair = Tuple[Instruction, Instruction]


def ordered_pair(a: Instruction, b: Instruction) -> Pair:
    """Normalize an unordered pair deterministically by uid."""
    return (a, b) if a.uid <= b.uid else (b, a)


def reachability_rows(sg: ScheduleGraph, index: InstructionIndex) -> list:
    """Directed-reachability bitrows: bit j of row i is set iff
    instruction j is reachable from instruction i (self excluded)."""
    rows = [0] * len(index)
    position = index.position
    successors = sg.graph.succ
    for instr in reversed(sg.topological_order()):
        row = 0
        for succ in successors[instr]:
            j = position(succ)
            row |= (1 << j) | rows[j]
        rows[position(instr)] = row
    return rows


def reachability(sg: ScheduleGraph) -> Dict[Instruction, Set[Instruction]]:
    """For each instruction, the set of instructions reachable from it
    through schedule-graph edges (excluding itself).

    A materialized view over :func:`reachability_rows`.
    """
    index = InstructionIndex(sg.instructions)
    rows = reachability_rows(sg, index)
    instructions = index.instructions
    return {
        instructions[i]: {instructions[j] for j in iter_bits(rows[i])}
        for i in range(len(instructions))
    }


def transitive_closure_pairs(sg: ScheduleGraph) -> Set[Pair]:
    """The undirected edge set of the transitive closure of G_s.

    A pair {u, v} is present iff there is a directed path u→v or v→u;
    such pairs can never issue in the same cycle.
    """
    index = InstructionIndex(sg.instructions)
    rows = reachability_rows(sg, index)
    instructions = index.instructions
    pairs: Set[Pair] = set()
    for i, row in enumerate(rows):
        a = instructions[i]
        for j in iter_bits(row):
            pairs.add(ordered_pair(a, instructions[j]))
    return pairs


def schedule_times(
    sg: ScheduleGraph,
) -> Tuple[Dict[Instruction, int], Dict[Instruction, int]]:
    """Delay-weighted (ASAP, ALAP) start times in one pass.

    One topological sort serves both directions: the forward sweep
    yields earliest (ASAP) starts, the backward sweep over the same
    order yields latest (ALAP) starts normalized so the critical
    path's makespan is preserved.
    """
    order = sg.topological_order()
    predecessors = sg.graph.pred
    successors = sg.graph.succ
    delay = sg.delay

    asap: Dict[Instruction, int] = {}
    for instr in order:
        earliest = 0
        for pred in predecessors[instr]:
            earliest = max(earliest, asap[pred] + delay(pred, instr))
        asap[instr] = earliest

    machine = sg.machine
    horizon = max(
        (asap[i] + (machine.latency_of(i) if machine else i.latency)
         for i in sg.instructions),
        default=0,
    )
    alap: Dict[Instruction, int] = {}
    for instr in reversed(order):
        own_latency = machine.latency_of(instr) if machine else instr.latency
        bound = horizon - own_latency
        for succ in successors[instr]:
            bound = min(bound, alap[succ] - delay(instr, succ))
        alap[instr] = bound
    return asap, alap


def earliest_start_times(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """Delay-weighted earliest start (ASAP) time of each instruction,
    ignoring resources — the basis of the paper's EP numbers."""
    order = sg.topological_order()
    predecessors = sg.graph.pred
    delay = sg.delay
    start: Dict[Instruction, int] = {}
    for instr in order:
        earliest = 0
        for pred in predecessors[instr]:
            earliest = max(earliest, start[pred] + delay(pred, instr))
        start[instr] = earliest
    return start


def latest_start_times(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """Delay-weighted latest start (ALAP) times, normalized so the
    critical path's makespan is preserved; used by scheduling
    priorities (slack = ALAP − ASAP)."""
    return schedule_times(sg)[1]


def slack(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """Scheduling slack per instruction; zero marks the critical path.

    ASAP and ALAP come from the single-pass :func:`schedule_times`
    (one topological sort total, instead of one per helper)."""
    asap, alap = schedule_times(sg)
    return {instr: alap[instr] - asap[instr] for instr in sg.instructions}
