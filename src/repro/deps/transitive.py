"""Transitive closure of the schedule graph.

The construction of E_t starts from "the set of edges in the transitive
closure of G_s ... after the removal of the directions of the edges".
The closure is computed by a reverse-topological reachability DP —
O(V·E/word) with Python sets, deterministic, and independent of
networkx version quirks.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.instructions import Instruction

#: An undirected instruction pair, order-normalized by uid.
Pair = Tuple[Instruction, Instruction]


def ordered_pair(a: Instruction, b: Instruction) -> Pair:
    """Normalize an unordered pair deterministically by uid."""
    return (a, b) if a.uid <= b.uid else (b, a)


def reachability(sg: ScheduleGraph) -> Dict[Instruction, Set[Instruction]]:
    """For each instruction, the set of instructions reachable from it
    through schedule-graph edges (excluding itself)."""
    reach: Dict[Instruction, Set[Instruction]] = {}
    for instr in reversed(sg.topological_order()):
        result: Set[Instruction] = set()
        for succ in sg.graph.successors(instr):
            result.add(succ)
            result |= reach[succ]
        reach[instr] = result
    return reach


def transitive_closure_pairs(sg: ScheduleGraph) -> Set[Pair]:
    """The undirected edge set of the transitive closure of G_s.

    A pair {u, v} is present iff there is a directed path u→v or v→u;
    such pairs can never issue in the same cycle.
    """
    pairs: Set[Pair] = set()
    for instr, reachable in reachability(sg).items():
        for other in reachable:
            pairs.add(ordered_pair(instr, other))
    return pairs


def earliest_start_times(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """Delay-weighted earliest start (ASAP) time of each instruction,
    ignoring resources — the basis of the paper's EP numbers."""
    start: Dict[Instruction, int] = {}
    for instr in sg.topological_order():
        earliest = 0
        for pred in sg.graph.predecessors(instr):
            earliest = max(earliest, start[pred] + sg.delay(pred, instr))
        start[instr] = earliest
    return start


def latest_start_times(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """Delay-weighted latest start (ALAP) times, normalized so the
    critical path's makespan is preserved; used by scheduling
    priorities (slack = ALAP − ASAP)."""
    asap = earliest_start_times(sg)
    horizon = max(
        (asap[i] + (sg.machine.latency_of(i) if sg.machine else i.latency)
         for i in sg.instructions),
        default=0,
    )
    latest: Dict[Instruction, int] = {}
    for instr in reversed(sg.topological_order()):
        own_latency = sg.machine.latency_of(instr) if sg.machine else instr.latency
        bound = horizon - own_latency
        for succ in sg.graph.successors(instr):
            bound = min(bound, latest[succ] - sg.delay(instr, succ))
        latest[instr] = bound
    return latest


def slack(sg: ScheduleGraph) -> Dict[Instruction, int]:
    """Scheduling slack per instruction; zero marks the critical path."""
    asap = earliest_start_times(sg)
    alap = latest_start_times(sg)
    return {instr: alap[instr] - asap[instr] for instr in sg.instructions}
