"""Data-dependence detection over instruction sequences.

The paper's definition: "Let u and v be two instructions.  A data
dependence from u to v exists if one of the following holds:
*data flow dependence* — the register defined in u is used in v;
*data anti-dependence* — a register used in u is later redefined in v;
*data output dependence* — the register defined in u is redefined in v."

With symbolic registers ("one symbolic register per value") no register
is redefined, so a symbolic block has only flow dependences — "the set
E_t contains exactly the real constraints on the scheduler".  After
register allocation the same detector reports the anti/output
dependences that reuse introduced; comparing the two is how false
dependences are found.

Memory dependences (store/load ordering through may-aliasing symbols)
are detected alongside, since they also constrain the scheduler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.ir.instructions import Instruction
from repro.ir.operands import Register


class DependenceKind(enum.Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    MEMORY = "memory"
    CONTROL = "control"
    MACHINE = "machine"

    def __repr__(self) -> str:
        return "DependenceKind.{}".format(self.name)


#: Dependence kinds introduced (only) by register reuse.
FALSE_CANDIDATE_KINDS = (DependenceKind.ANTI, DependenceKind.OUTPUT)


@dataclass(frozen=True)
class Dependence:
    """A directed dependence: *source* must execute before *target*."""

    source: Instruction
    target: Instruction
    kind: DependenceKind
    register: Optional[Register] = None

    def __str__(self) -> str:
        what = "" if self.register is None else " on {}".format(self.register)
        return "{} --{}{}-> {}".format(
            self.source, self.kind.value, what, self.target
        )


def _may_alias(a: Instruction, b: Instruction) -> bool:
    """Conservative memory aliasing: two accesses may touch the same
    location when they share a base symbol, or when either uses a
    register-computed address with no symbol at all."""
    symbols_a = set(a.memory_symbols())
    symbols_b = set(b.memory_symbols())
    if not symbols_a or not symbols_b:
        # A memory access with no symbol is through an arbitrary
        # register address: assume it can alias anything.
        return True
    return bool(symbols_a & symbols_b)


def register_dependences(
    instructions: Sequence[Instruction],
) -> List[Dependence]:
    """Flow/anti/output dependences of a straight-line sequence.

    Edges connect each access to the *nearest* conflicting access (the
    transitive closure recovers the rest): a use depends on the most
    recent def; a redef is anti-dependent on uses since the previous
    def and output-dependent on the previous def.
    """
    deps: List[Dependence] = []
    seen = set()
    last_def: Dict[Register, Instruction] = {}
    uses_since_def: Dict[Register, List[Instruction]] = {}

    def emit(source: Instruction, target: Instruction,
             kind: DependenceKind, reg: Register) -> None:
        key = (source.uid, target.uid, kind, reg)
        if key not in seen:  # an operand used twice yields one edge
            seen.add(key)
            deps.append(Dependence(source, target, kind, reg))

    for instr in instructions:
        for reg in instr.uses():
            producer = last_def.get(reg)
            if producer is not None and producer is not instr:
                emit(producer, instr, DependenceKind.FLOW, reg)
            uses_since_def.setdefault(reg, []).append(instr)
        for reg in instr.defs():
            previous = last_def.get(reg)
            if previous is not None and previous is not instr:
                emit(previous, instr, DependenceKind.OUTPUT, reg)
            for user in uses_since_def.get(reg, []):
                if user is not instr:
                    emit(user, instr, DependenceKind.ANTI, reg)
            last_def[reg] = instr
            uses_since_def[reg] = []
    return deps


def memory_dependences(
    instructions: Sequence[Instruction],
) -> List[Dependence]:
    """Store/load ordering dependences (read-read pairs are free).

    Calls act as full memory barriers: they may read and write any
    location, so they order against every memory access and other
    calls.
    """
    deps: List[Dependence] = []
    # (instr, writes, is_call, symbols) — opcode predicates are enum
    # properties, so hoist them out of the O(n^2) pair loop.
    memory_ops: List[tuple] = []
    for instr in instructions:
        info = instr.opcode.value
        is_call = info.is_call
        if not (instr.is_memory_access or is_call):
            continue
        writes = info.is_store or is_call
        symbols = frozenset(instr.memory_symbols())
        for earlier, earlier_writes, earlier_call, earlier_symbols \
                in memory_ops:
            if not (writes or earlier_writes):
                continue  # load-load: no ordering needed
            # _may_alias semantics, inlined: a symbol-free access goes
            # through an arbitrary register address and aliases all.
            if (is_call or earlier_call or not symbols
                    or not earlier_symbols or (symbols & earlier_symbols)):
                deps.append(Dependence(earlier, instr, DependenceKind.MEMORY))
        memory_ops.append((instr, writes, is_call, symbols))
    return deps


def all_dependences(instructions: Sequence[Instruction]) -> List[Dependence]:
    """Register plus memory dependences of a straight-line sequence."""
    return register_dependences(instructions) + memory_dependences(instructions)


def false_dependence_candidates(
    instructions: Sequence[Instruction],
) -> List[Dependence]:
    """The anti/output register dependences of the sequence — the only
    dependences register allocation can *introduce* (Lemma 1 tests each
    against the symbolic-register false-dependence graph)."""
    return [
        dep
        for dep in register_dependences(instructions)
        if dep.kind in FALSE_CANDIDATE_KINDS
    ]
