"""Dependence analysis: data dependences, the schedule graph G_s,
its transitive closure (bitset and vectorized kernels), and the
false-dependence graph G_f."""

from repro.deps.bitset import (
    DependenceBitKernel,
    InstructionIndex,
)
from repro.deps.vector import (
    HAVE_NUMPY,
    VectorDependenceKernel,
    WORD_BITS,
    pack_rows,
    rows_from_hex,
    rows_to_hex,
    unpack_rows,
    vector_backend,
    web_pair_hits,
    words_for,
)
from repro.deps.datadeps import (
    Dependence,
    DependenceKind,
    FALSE_CANDIDATE_KINDS,
    all_dependences,
    false_dependence_candidates,
    memory_dependences,
    register_dependences,
)
from repro.deps.global_deps import (
    function_dependence_graph,
    transit_dependence_pairs,
)
from repro.deps.false_dependence import (
    FalseDependenceGraph,
    block_false_dependence_graph,
    false_dependence_graph,
)
from repro.deps.reference import (
    reference_contention_pairs,
    reference_false_dependence_graph,
    reference_project_false_pairs_to_webs,
    reference_transitive_closure_pairs,
)
from repro.deps.schedule_graph import (
    ScheduleGraph,
    block_schedule_graph,
    build_schedule_graph,
    region_schedule_graph,
)
from repro.deps.transitive import (
    earliest_start_times,
    latest_start_times,
    ordered_pair,
    reachability,
    reachability_rows,
    schedule_times,
    slack,
    transitive_closure_pairs,
)

__all__ = [
    "Dependence",
    "DependenceBitKernel",
    "DependenceKind",
    "FALSE_CANDIDATE_KINDS",
    "FalseDependenceGraph",
    "HAVE_NUMPY",
    "InstructionIndex",
    "ScheduleGraph",
    "VectorDependenceKernel",
    "WORD_BITS",
    "all_dependences",
    "block_false_dependence_graph",
    "block_schedule_graph",
    "build_schedule_graph",
    "earliest_start_times",
    "false_dependence_candidates",
    "false_dependence_graph",
    "function_dependence_graph",
    "latest_start_times",
    "memory_dependences",
    "ordered_pair",
    "pack_rows",
    "reachability",
    "reachability_rows",
    "reference_contention_pairs",
    "reference_false_dependence_graph",
    "reference_project_false_pairs_to_webs",
    "reference_transitive_closure_pairs",
    "region_schedule_graph",
    "register_dependences",
    "rows_from_hex",
    "rows_to_hex",
    "schedule_times",
    "slack",
    "transit_dependence_pairs",
    "transitive_closure_pairs",
    "unpack_rows",
    "vector_backend",
    "web_pair_hits",
    "words_for",
]
