"""Whole-function dependence reachability.

Region schedule graphs concatenate only the region's own instructions,
but a dependence between two region instructions may *transit* other
blocks — e.g. a value loaded before an if, copied in one arm, and
consumed after the join: load → (arm mov) → use.  Ignoring the transit
would let the region's E_f claim the load and the use are
co-schedulable, which they never are.

:func:`function_dependence_graph` builds a conservative directed
dependence graph over every instruction of the function:

* all block-local dependences (register flow/anti/output, memory
  ordering, branch-last control edges);
* cross-block register flow from reaching definitions (def-use
  chains);
* cross-block memory ordering between may-aliasing accesses in
  CFG-ordered blocks.

:func:`transit_dependence_pairs` then reports, for a given instruction
subset, the (layout-ordered) pairs connected through the global graph —
exactly the edges a region schedule graph must add to stay sound.
"""

from __future__ import annotations

import weakref
from typing import List, Sequence, Tuple

import networkx as nx

from repro.analysis.defuse import shared_def_use_chains
from repro.deps.datadeps import all_dependences, _may_alias
from repro.ir.function import Function
from repro.ir.instructions import Instruction


def function_dependence_graph(fn: Function) -> nx.DiGraph:
    """The conservative whole-function dependence digraph."""
    graph = nx.DiGraph()
    for instr in fn.instructions():
        graph.add_node(instr)

    # Block-local dependences (including branch-last ordering).
    for block in fn.blocks():
        for dep in all_dependences(block.instructions):
            graph.add_edge(dep.source, dep.target)
        terminator = block.terminator
        if terminator is not None:
            for instr in block.instructions[:-1]:
                graph.add_edge(instr, terminator)

    # Cross-block register flow: def -> use for every reaching def.
    chains = shared_def_use_chains(fn)
    in_graph = set(graph.nodes())
    for (instr, _reg), defs in chains.defs_of.items():
        if instr not in in_graph:
            continue  # synthetic live-out anchors
        for point in defs:
            if point.instruction is not instr:
                graph.add_edge(point.instruction, instr)

    # Cross-block memory ordering (conservative, layout order between
    # distinct blocks: a write in an earlier block orders against
    # later-block aliasing accesses and vice versa).
    memory_ops: List[Tuple[int, Instruction]] = []
    for block_index, block in enumerate(fn.blocks()):
        for instr in block:
            if instr.is_memory_access or instr.opcode.is_call:
                memory_ops.append((block_index, instr))
    for i, (block_a, a) in enumerate(memory_ops):
        writes_a = a.opcode.is_store or a.opcode.is_call
        for block_b, b in memory_ops[i + 1:]:
            if block_a == block_b:
                continue  # block-local pass covered it
            writes_b = b.opcode.is_store or b.opcode.is_call
            if not (writes_a or writes_b):
                continue
            if a.opcode.is_call or b.opcode.is_call or _may_alias(a, b):
                graph.add_edge(a, b)
    return graph


#: Memoized whole-function graphs, keyed by function identity.
_FDEP_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_function_dependence_graph(fn: Function) -> nx.DiGraph:
    """:func:`function_dependence_graph` memoized on function identity.

    The driver consults the graph from several phases of one compile
    (the PIG build and the theorem-1 check walk the *same* symbolic
    function), and every pipeline rewrite — optimize, preschedule,
    spill insertion, assignment — constructs a fresh
    :class:`~repro.ir.function.Function` rather than mutating one, so
    identity is a sound memo key there.  Callers that mutate a
    function in place must call :func:`function_dependence_graph`
    directly.
    """
    graph = _FDEP_MEMO.get(fn)
    if graph is None:
        graph = function_dependence_graph(fn)
        _FDEP_MEMO[fn] = graph
    return graph


def _ancestor_masks(graph: nx.DiGraph):
    """Per-node reachability as big-int ancestor masks, cached on the
    graph.

    One SCC condensation plus one topological pass computes, for every
    node, the bitmask (over a private dense index) of all nodes that
    can reach it — nodes sharing an SCC reach each other.  A region's
    transit pass then reduces to ``mask & region_mask`` per member,
    instead of one ``nx.descendants`` BFS per instruction; cached on
    ``graph.graph`` so the memoized function graph answers every
    region of every phase from one closure.
    """
    cached = graph.graph.get("_transit_ancestors")
    if cached is not None:
        return cached
    index = {node: i for i, node in enumerate(graph.nodes())}
    condensation = nx.condensation(graph)
    scc_bits = {}
    for comp in condensation.nodes():
        bits = 0
        for node in condensation.nodes[comp]["members"]:
            bits |= 1 << index[node]
        scc_bits[comp] = bits
    above = {}
    for comp in nx.topological_sort(condensation):
        mask = 0
        for pred in condensation.predecessors(comp):
            mask |= above[pred] | scc_bits[pred]
        above[comp] = mask
    masks = {}
    for comp in condensation.nodes():
        bits = scc_bits[comp]
        base = above[comp]
        for node in condensation.nodes[comp]["members"]:
            masks[node] = base | (bits & ~(1 << index[node]))
    cached = (index, masks)
    graph.graph["_transit_ancestors"] = cached
    return cached


def transit_dependence_pairs(
    fn: Function,
    instructions: Sequence[Instruction],
    dependence_graph: nx.DiGraph = None,
) -> List[Tuple[Instruction, Instruction]]:
    """Pairs (u, v) of *instructions* (u before v in the given order)
    connected through the whole-function dependence graph.

    Only forward (order-respecting) pairs are returned, so adding them
    as edges keeps the region schedule graph acyclic even when the
    global graph has loop-carried cycles.  Pairs come back sorted by
    position pair: reachability is answered from the cached
    :func:`_ancestor_masks` bit rows, and anything downstream that
    serializes the schedule graph (the region cache digests it) needs
    the same IR to produce the same bytes in every process.
    """
    if dependence_graph is None:
        dependence_graph = function_dependence_graph(fn)
    index, masks = _ancestor_masks(dependence_graph)
    position = {instr: idx for idx, instr in enumerate(instructions)}
    region_mask = 0
    by_bit: dict = {}
    for instr in instructions:
        bit = index.get(instr)
        if bit is not None:
            region_mask |= 1 << bit
            by_bit[bit] = instr
    pairs: List[Tuple[Instruction, Instruction]] = []
    for v in instructions:
        if v not in masks:
            continue
        row = masks[v] & region_mask
        pos_v = position[v]
        while row:
            low = row & -row
            row ^= low
            u = by_bit[low.bit_length() - 1]
            if position[u] < pos_v:
                pairs.append((u, v))
    pairs.sort(key=lambda pair: (position[pair[0]], position[pair[1]]))
    return pairs
