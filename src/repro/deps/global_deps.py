"""Whole-function dependence reachability.

Region schedule graphs concatenate only the region's own instructions,
but a dependence between two region instructions may *transit* other
blocks — e.g. a value loaded before an if, copied in one arm, and
consumed after the join: load → (arm mov) → use.  Ignoring the transit
would let the region's E_f claim the load and the use are
co-schedulable, which they never are.

:func:`function_dependence_graph` builds a conservative directed
dependence graph over every instruction of the function:

* all block-local dependences (register flow/anti/output, memory
  ordering, branch-last control edges);
* cross-block register flow from reaching definitions (def-use
  chains);
* cross-block memory ordering between may-aliasing accesses in
  CFG-ordered blocks.

:func:`transit_dependence_pairs` then reports, for a given instruction
subset, the (layout-ordered) pairs connected through the global graph —
exactly the edges a region schedule graph must add to stay sound.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import networkx as nx

from repro.analysis.defuse import def_use_chains
from repro.deps.datadeps import all_dependences, _may_alias
from repro.ir.function import Function
from repro.ir.instructions import Instruction


def function_dependence_graph(fn: Function) -> nx.DiGraph:
    """The conservative whole-function dependence digraph."""
    graph = nx.DiGraph()
    for instr in fn.instructions():
        graph.add_node(instr)

    # Block-local dependences (including branch-last ordering).
    for block in fn.blocks():
        for dep in all_dependences(block.instructions):
            graph.add_edge(dep.source, dep.target)
        terminator = block.terminator
        if terminator is not None:
            for instr in block.instructions[:-1]:
                graph.add_edge(instr, terminator)

    # Cross-block register flow: def -> use for every reaching def.
    chains = def_use_chains(fn)
    in_graph = set(graph.nodes())
    for (instr, _reg), defs in chains.defs_of.items():
        if instr not in in_graph:
            continue  # synthetic live-out anchors
        for point in defs:
            if point.instruction is not instr:
                graph.add_edge(point.instruction, instr)

    # Cross-block memory ordering (conservative, layout order between
    # distinct blocks: a write in an earlier block orders against
    # later-block aliasing accesses and vice versa).
    memory_ops: List[Tuple[int, Instruction]] = []
    for block_index, block in enumerate(fn.blocks()):
        for instr in block:
            if instr.is_memory_access or instr.opcode.is_call:
                memory_ops.append((block_index, instr))
    for i, (block_a, a) in enumerate(memory_ops):
        writes_a = a.opcode.is_store or a.opcode.is_call
        for block_b, b in memory_ops[i + 1:]:
            if block_a == block_b:
                continue  # block-local pass covered it
            writes_b = b.opcode.is_store or b.opcode.is_call
            if not (writes_a or writes_b):
                continue
            if a.opcode.is_call or b.opcode.is_call or _may_alias(a, b):
                graph.add_edge(a, b)
    return graph


def transit_dependence_pairs(
    fn: Function,
    instructions: Sequence[Instruction],
    dependence_graph: nx.DiGraph = None,
) -> List[Tuple[Instruction, Instruction]]:
    """Pairs (u, v) of *instructions* (u before v in the given order)
    connected through the whole-function dependence graph.

    Only forward (order-respecting) pairs are returned, so adding them
    as edges keeps the region schedule graph acyclic even when the
    global graph has loop-carried cycles.
    """
    if dependence_graph is None:
        dependence_graph = function_dependence_graph(fn)
    position = {instr: idx for idx, instr in enumerate(instructions)}
    members = set(instructions)
    pairs: List[Tuple[Instruction, Instruction]] = []
    for u in instructions:
        if u not in dependence_graph:
            continue
        reachable = nx.descendants(dependence_graph, u)
        for v in reachable:
            if v in members and position[u] < position[v]:
                pairs.append((u, v))
    return pairs
