"""The false-dependence graph G_f = (V_f, E_f).

Construction, verbatim from the paper (Section 3):

* ``V_f = V_s`` — the instructions, presented with symbolic registers;
* ``E_t`` — the undirected transitive closure of G_s, plus "all the
  non-precedence based constraints that describe the restrictions on
  the machine capabilities" (pairs that may not share a cycle);
* ``E_f`` — the complement: ``{u, v}`` with ``u ≠ v`` and
  ``{u, v} ∉ E_t``.

Lemma 1: an edge (u, v) of a post-allocation scheduling graph is a
*false dependence* iff ``{u, v} ∈ E_f``.  "The edges in the complement
graph present the actual parallelism available to our machine for the
given program"; "the more edges are present in [E_t] the better the
results will be" — i.e. missing machine constraints only make the
allocator more conservative about sharing registers, never incorrect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.deps.schedule_graph import ScheduleGraph, build_schedule_graph
from repro.deps.transitive import Pair, ordered_pair, transitive_closure_pairs
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.machine.resources import contention_pairs


@dataclass
class FalseDependenceGraph:
    """G_f plus the intermediate E_t it was derived from.

    Attributes:
        instructions: V_f in program order.
        et_pairs: The constraint set E_t (undirected, uid-normalized).
        ef_pairs: The false-dependence edge set E_f (the complement).
        schedule_graph: The symbolic-register G_s the closure came from.
    """

    instructions: List[Instruction]
    et_pairs: Set[Pair]
    ef_pairs: Set[Pair]
    schedule_graph: ScheduleGraph

    def has_false_edge(self, a: Instruction, b: Instruction) -> bool:
        """Lemma 1 test: could *a* and *b* issue in the same cycle when
        the code is presented with symbolic registers?"""
        return ordered_pair(a, b) in self.ef_pairs

    def false_neighbors(self, instr: Instruction) -> List[Instruction]:
        """Instructions co-schedulable with *instr* (its E_f neighbors,
        "the list of available instructions" for list scheduling)."""
        result = []
        for a, b in self.ef_pairs:
            if a is instr:
                result.append(b)
            elif b is instr:
                result.append(a)
        result.sort(key=lambda i: i.uid)
        return result

    @property
    def parallelism_degree(self) -> float:
        """|E_f| over all pairs: 1.0 means fully parallel, 0.0 serial."""
        n = len(self.instructions)
        total = n * (n - 1) // 2
        return len(self.ef_pairs) / total if total else 0.0


def false_dependence_graph(
    sg: ScheduleGraph,
    machine: MachineDescription,
) -> FalseDependenceGraph:
    """Derive G_f from a symbolic-register schedule graph and machine.

    Follows the paper's recipe: transitive closure of G_s, directions
    removed, machine contention pairs added, then complemented.
    """
    et: Set[Pair] = set(transitive_closure_pairs(sg))
    for a, b in contention_pairs(sg.instructions, machine):
        et.add(ordered_pair(a, b))

    ef: Set[Pair] = set()
    instructions = sg.instructions
    for i, a in enumerate(instructions):
        for b in instructions[i + 1:]:
            pair = ordered_pair(a, b)
            if pair not in et:
                ef.add(pair)

    return FalseDependenceGraph(
        instructions=list(instructions),
        et_pairs=et,
        ef_pairs=ef,
        schedule_graph=sg,
    )


def block_false_dependence_graph(
    block: BasicBlock,
    machine: MachineDescription,
) -> FalseDependenceGraph:
    """G_f of one basic block presented with symbolic registers."""
    sg = build_schedule_graph(block.instructions, machine=machine)
    return false_dependence_graph(sg, machine)
