"""The false-dependence graph G_f = (V_f, E_f).

Construction, verbatim from the paper (Section 3):

* ``V_f = V_s`` — the instructions, presented with symbolic registers;
* ``E_t`` — the undirected transitive closure of G_s, plus "all the
  non-precedence based constraints that describe the restrictions on
  the machine capabilities" (pairs that may not share a cycle);
* ``E_f`` — the complement: ``{u, v}`` with ``u ≠ v`` and
  ``{u, v} ∉ E_t``.

Lemma 1: an edge (u, v) of a post-allocation scheduling graph is a
*false dependence* iff ``{u, v} ∈ E_f``.  "The edges in the complement
graph present the actual parallelism available to our machine for the
given program"; "the more edges are present in [E_t] the better the
results will be" — i.e. missing machine constraints only make the
allocator more conservative about sharing registers, never incorrect.

Since the bitset rewrite the relations live as big-int rows in a
:class:`~repro.deps.bitset.DependenceBitKernel`; ``et_pairs`` and
``ef_pairs`` are lazily materialized (and cached) pair-set views kept
for API compatibility.  The retained set-based construction is in
:mod:`repro.deps.reference`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.deps.bitset import DependenceBitKernel
from repro.deps.schedule_graph import ScheduleGraph, build_schedule_graph
from repro.deps.transitive import Pair, ordered_pair
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription


class FalseDependenceGraph:
    """G_f plus the intermediate E_t it was derived from.

    Backed either by a :class:`DependenceBitKernel` (the production
    path) or by explicit pair sets (the retained reference path); the
    public surface is identical in both cases.

    Attributes:
        instructions: V_f in program order.
        et_pairs: The constraint set E_t (undirected, uid-normalized).
        ef_pairs: The false-dependence edge set E_f (the complement).
        schedule_graph: The symbolic-register G_s the closure came from.
            May be *lazy*: a region-cache hit replays the kernel rows
            without ever building G_s, and supplies a factory instead;
            the first access builds and memoizes it.
        kernel: The bitset kernel, or ``None`` on the reference path.
        value_rows: Optional positional ``(ep, height)`` rows replayed
            from the region cache, so ``SchedulingValueModel`` does not
            have to force the lazy graph just to price false edges.
    """

    def __init__(
        self,
        instructions: List[Instruction],
        et_pairs: Optional[Set[Pair]] = None,
        ef_pairs: Optional[Set[Pair]] = None,
        schedule_graph: Optional[ScheduleGraph] = None,
        kernel: Optional[DependenceBitKernel] = None,
        schedule_graph_factory: Optional[
            Callable[[], ScheduleGraph]
        ] = None,
        value_rows: Optional[Tuple[List[int], List[float]]] = None,
    ) -> None:
        if kernel is None and (et_pairs is None or ef_pairs is None):
            raise ValueError(
                "FalseDependenceGraph needs a bitset kernel or explicit "
                "et_pairs/ef_pairs sets"
            )
        self.instructions = list(instructions)
        self._schedule_graph = schedule_graph
        self._schedule_graph_factory = schedule_graph_factory
        self.value_rows = value_rows
        self.kernel = kernel
        self._et_pairs = et_pairs
        self._ef_pairs = ef_pairs
        self._adjacency: Optional[Dict[int, List[Instruction]]] = None

    @property
    def schedule_graph(self) -> Optional[ScheduleGraph]:
        if (
            self._schedule_graph is None
            and self._schedule_graph_factory is not None
        ):
            self._schedule_graph = self._schedule_graph_factory()
        return self._schedule_graph

    @schedule_graph.setter
    def schedule_graph(self, sg: Optional[ScheduleGraph]) -> None:
        self._schedule_graph = sg

    # ------------------------------------------------------------------
    # Pair-set views (lazy when kernel-backed)
    # ------------------------------------------------------------------

    @property
    def et_pairs(self) -> Set[Pair]:
        if self._et_pairs is None:
            self._et_pairs = self.kernel.et_pairs()
        return self._et_pairs

    @property
    def ef_pairs(self) -> Set[Pair]:
        if self._ef_pairs is None:
            self._ef_pairs = self.kernel.ef_pairs()
        return self._ef_pairs

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_false_edge(self, a: Instruction, b: Instruction) -> bool:
        """Lemma 1 test: could *a* and *b* issue in the same cycle when
        the code is presented with symbolic registers?"""
        if self.kernel is not None:
            return self.kernel.has_false_edge(a, b)
        return ordered_pair(a, b) in self._ef_pairs

    def coissue_mask(self, instr: Instruction) -> Optional[int]:
        """E_f neighbors of *instr* as a bitmask over the kernel's
        dense indices, or ``None`` on the reference path.  The
        scheduler ANDs these masks to answer "may this instruction
        join the cycle group?" in one word op."""
        if self.kernel is None:
            return None
        return self.kernel.ef_row(instr)

    def false_neighbors(self, instr: Instruction) -> List[Instruction]:
        """Instructions co-schedulable with *instr* (its E_f neighbors,
        "the list of available instructions" for list scheduling).

        Backed by a uid-keyed adjacency index computed once for the
        whole graph; lookups are O(1) plus the result copy."""
        return list(self._adjacency_index().get(instr.uid, ()))

    def _adjacency_index(self) -> Dict[int, List[Instruction]]:
        if self._adjacency is None:
            adjacency: Dict[int, List[Instruction]] = {}
            if self.kernel is not None:
                index = self.kernel.index
                for i, instr in enumerate(index.instructions):
                    neighbors = index.select(self.kernel.ef_rows[i])
                    neighbors.sort(key=lambda n: n.uid)
                    adjacency[instr.uid] = neighbors
            else:
                for a, b in self._ef_pairs:
                    adjacency.setdefault(a.uid, []).append(b)
                    adjacency.setdefault(b.uid, []).append(a)
                for neighbors in adjacency.values():
                    neighbors.sort(key=lambda n: n.uid)
            self._adjacency = adjacency
        return self._adjacency

    @property
    def parallelism_degree(self) -> float:
        """|E_f| over all pairs: 1.0 means fully parallel, 0.0 serial."""
        n = len(self.instructions)
        total = n * (n - 1) // 2
        if not total:
            return 0.0
        if self.kernel is not None:
            return self.kernel.ef_edge_count() / total
        return len(self._ef_pairs) / total


def false_dependence_graph(
    sg: ScheduleGraph,
    machine: MachineDescription,
    check_deadline=None,
    engine: str = "bitset",
) -> FalseDependenceGraph:
    """Derive G_f from a symbolic-register schedule graph and machine.

    Follows the paper's recipe: transitive closure of G_s, directions
    removed, machine contention pairs added, then complemented — all
    in bitrow form via :meth:`DependenceBitKernel.build` (*engine*
    ``"bitset"``, the default) or the packed-uint64
    :meth:`~repro.deps.vector.VectorDependenceKernel.build` (*engine*
    ``"vector"``).  *check_deadline* is forwarded to the kernel so an
    expired wall-clock budget preempts the closure loops mid-phase.
    """
    if engine == "vector":
        from repro.deps.vector import VectorDependenceKernel

        kernel = VectorDependenceKernel.build(
            sg, machine, check_deadline=check_deadline
        )
    else:
        kernel = DependenceBitKernel.build(
            sg, machine, check_deadline=check_deadline
        )
    return FalseDependenceGraph(
        instructions=list(sg.instructions),
        schedule_graph=sg,
        kernel=kernel,
    )


def block_false_dependence_graph(
    block: BasicBlock,
    machine: MachineDescription,
) -> FalseDependenceGraph:
    """G_f of one basic block presented with symbolic registers."""
    sg = build_schedule_graph(block.instructions, machine=machine)
    return false_dependence_graph(sg, machine)
