"""Vectorized (packed-``uint64``) dependence kernel.

The bitset kernel (:mod:`repro.deps.bitset`) already collapsed the
paper's pair sets into one big-int row per instruction, but its
closure loops still visit the DAG one instruction at a time and its
web projection tests one web pair per Python iteration.  This module
rewrites those hot loops over **packed uint64 blocks**:

* every relation is an ``(n, ceil(n/64))`` little-endian word matrix;
* the transitive closure is *level-batched*: nodes are grouped by
  longest-path level, and one :func:`numpy.bitwise_or.reduceat` call
  per level ORs every node's successor (or predecessor) rows at C
  speed — the per-visit Python overhead of the bitset loop disappears;
* E_t / E_f derivation is two whole-matrix boolean expressions;
* the web projection (:func:`web_pair_hits`) reduces each web's
  defining rows with one ``reduceat`` and finds intersecting webs with
  one vectorized AND + any() per row.

numpy is used when importable (:data:`HAVE_NUMPY`); otherwise a pure
Python fallback keeps rows as big ints — which CPython already
combines word-parallel in C — and packs to :class:`array.array`
(``'Q'``) blocks only at the matrix boundaries, so the engine is
always available and always bit-identical.  The
:class:`VectorDependenceKernel` it produces subclasses
:class:`~repro.deps.bitset.DependenceBitKernel`, so every row query,
pair view, and downstream consumer works unchanged; the packed E_f
matrix is cached on the instance for the vectorized splice in
:mod:`repro.core.parallel_interference` and the shard wire format in
:mod:`repro.service.shard`.

Deadline semantics mirror the bitset kernel: the ``check_deadline``
callback is polled once per :data:`~repro.deps.bitset.
DependenceBitKernel.DEADLINE_STRIDE` *visited instructions* inside the
closure (levels batch many visits, so the poll fires whenever the
visit counter crosses a stride boundary), preserving the driver's
mid-phase ``--time-budget`` preemption.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.deps.bitset import DependenceBitKernel, InstructionIndex
from repro.deps.schedule_graph import ScheduleGraph
from repro.machine.model import MachineDescription
from repro.machine.resources import contention_rows
from repro.utils.bits import iter_bits, popcount

try:  # pragma: no cover - exercised via HAVE_NUMPY branches
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "WORD_BITS",
    "VectorDependenceKernel",
    "pack_rows",
    "rows_from_hex",
    "rows_to_hex",
    "unpack_rows",
    "vector_backend",
    "web_pair_hits",
    "words_for",
]

#: Bits per packed word (the vector lane width).
WORD_BITS = 64


def vector_backend() -> str:
    """``"numpy"`` or ``"portable"`` — which backend builds will use."""
    return "numpy" if HAVE_NUMPY else "portable"


def words_for(n: int) -> int:
    """Packed words per row for an *n*-bit universe."""
    return (n + WORD_BITS - 1) // WORD_BITS


# ----------------------------------------------------------------------
# Packing: big-int rows <-> uint64 matrices
# ----------------------------------------------------------------------


def pack_rows(rows: Sequence[int], n: int):
    """Big-int rows → packed little-endian uint64 matrix.

    Returns an ``(len(rows), words_for(n))`` numpy array when numpy is
    available, else a list of ``array('Q')`` blocks built from the same
    little-endian byte layout (self-consistent on any host endianness).
    """
    words = words_for(n)
    nbytes = words * 8
    if HAVE_NUMPY:
        if not rows:
            return _np.zeros((0, words), dtype=_np.uint64)
        buf = b"".join(row.to_bytes(nbytes, "little") for row in rows)
        matrix = _np.frombuffer(buf, dtype="<u8").reshape(len(rows), words)
        return matrix.astype(_np.uint64, copy=True)
    return [array("Q", row.to_bytes(nbytes, "little")) for row in rows]


def unpack_rows(matrix, n: int) -> List[int]:
    """Inverse of :func:`pack_rows`: matrix → big-int rows."""
    nbytes = words_for(n) * 8
    if HAVE_NUMPY and not isinstance(matrix, list):
        data = matrix.astype("<u8", copy=False).tobytes()
        return [
            int.from_bytes(data[off:off + nbytes], "little")
            for off in range(0, len(data), nbytes)
        ]
    return [
        int.from_bytes(memoryview(block).cast("B").tobytes(), "little")
        for block in matrix
    ]


def rows_to_hex(rows: Sequence[int]) -> List[str]:
    """Endianness-neutral wire form of big-int rows (shard protocol)."""
    return [format(row, "x") for row in rows]


def rows_from_hex(texts: Sequence[str]) -> List[int]:
    """Inverse of :func:`rows_to_hex`."""
    return [int(text, 16) for text in texts]


# ----------------------------------------------------------------------
# Level-batched transitive closure
# ----------------------------------------------------------------------


class _StridePoller:
    """Counts closure visits and fires ``check_deadline`` every
    :data:`~repro.deps.bitset.DependenceBitKernel.DEADLINE_STRIDE`
    visits — the batched-loop equivalent of the bitset kernel's
    ``k & stride_mask`` test (which also polls at ``k == 0``)."""

    __slots__ = ("check", "visited", "next_poll", "polls")

    def __init__(self, check: Optional[Callable[[], None]]) -> None:
        self.check = check
        self.visited = 0
        self.next_poll = 0
        self.polls = 0

    def visit(self, count: int) -> None:
        if self.check is None:
            return
        if self.visited >= self.next_poll:
            self.polls += 1
            self.check()
            self.next_poll = (
                self.visited + DependenceBitKernel.DEADLINE_STRIDE
            )
        self.visited += count


def _levels_of(adj: List[List[int]], order: List[int]) -> List[List[int]]:
    """Group node positions by longest-path level over *adj*.

    *order* must list positions so that every neighbor in ``adj[i]``
    precedes ``i`` (reverse-topological for the descendants pass,
    topological for the ancestors pass).  Level 0 holds the nodes with
    no neighbors; every node at level L has all neighbors strictly
    below L, so one batched OR per level computes the whole closure.
    """
    level = [0] * len(adj)
    buckets: List[List[int]] = [[]]
    for i in order:
        neighbors = adj[i]
        if neighbors:
            lvl = 1 + max(level[j] for j in neighbors)
        else:
            lvl = 0
        level[i] = lvl
        while len(buckets) <= lvl:
            buckets.append([])
        buckets[lvl].append(i)
    return buckets


def _unit_rows(n: int):
    """Packed identity matrix: row i has exactly bit i set."""
    words = words_for(n)
    unit = _np.zeros((n, words), dtype=_np.uint64)
    positions = _np.arange(n)
    unit[positions, positions // WORD_BITS] = _np.left_shift(
        _np.uint64(1), (positions % WORD_BITS).astype(_np.uint64)
    )
    return unit


def _closure_numpy(
    n: int,
    adj: List[List[int]],
    order: List[int],
    unit,
    poller: _StridePoller,
):
    """Level-batched packed closure: ``M[i] = OR_j (bit_j | M[j])``
    over ``j in adj[i]``, one ``reduceat`` per level."""
    matrix = _np.zeros((n, words_for(n)), dtype=_np.uint64)
    levels = _levels_of(adj, order)
    poller.visit(len(levels[0]))
    for bucket in levels[1:]:
        poller.visit(len(bucket))
        flat: List[int] = []
        offsets: List[int] = []
        for i in bucket:
            offsets.append(len(flat))
            flat.extend(adj[i])
        segment = matrix[flat] | unit[flat]
        rows = _np.bitwise_or.reduceat(segment, offsets, axis=0)
        matrix[bucket] = rows
    return matrix


def _closure_portable(
    n: int,
    adj: List[List[int]],
    order: List[int],
    poller: _StridePoller,
) -> List[int]:
    """Big-int closure in the same visit order (CPython's int ops are
    already word-parallel C loops; packing only happens at the matrix
    boundaries on this backend)."""
    rows = [0] * n
    for i in order:
        poller.visit(1)
        row = 0
        for j in adj[i]:
            row |= (1 << j) | rows[j]
        rows[i] = row
    return rows


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


@dataclass
class VectorDependenceKernel(DependenceBitKernel):
    """Drop-in :class:`DependenceBitKernel` built by the vector engine.

    Rows are plain big ints (full query/pair API inherited); the packed
    E_f matrix is kept in :attr:`packed_ef` (numpy backend only) so the
    vectorized web splice and the shard protocol never re-pack it.

    Attributes:
        packed_ef: ``(n, words)`` uint64 E_f matrix, or ``None`` on the
            portable backend.
        backend: ``"numpy"`` or ``"portable"``.
    """

    packed_ef: object = None
    backend: str = "portable"

    @classmethod
    def build(
        cls,
        sg: ScheduleGraph,
        machine: Optional[MachineDescription] = None,
        check_deadline: Optional[Callable[[], None]] = None,
    ) -> "VectorDependenceKernel":
        """Derive all rows from a schedule graph and machine.

        Same contract as :meth:`DependenceBitKernel.build` — same rows,
        same deadline-poll stride, same obs counters — computed with
        level-batched packed-word reductions when numpy is available.
        Trips the ``deps.vector`` fault point.
        """
        from repro.obs import get_metrics, get_tracer
        from repro.utils.faults import trip

        trip("deps.vector")
        index = InstructionIndex(sg.instructions)
        n = len(index)
        position = index.position
        order = sg.topological_order()

        # Dense-position adjacency; successors for the descendants
        # pass, predecessors for the ancestors pass.
        succ_adj: List[List[int]] = [[] for _ in range(n)]
        pred_adj: List[List[int]] = [[] for _ in range(n)]
        graph = sg.graph
        for instr in order:
            i = position(instr)
            succ_adj[i] = [position(s) for s in graph.succ[instr]]
            pred_adj[i] = [position(p) for p in graph.pred[instr]]
        topo = [position(instr) for instr in order]
        reverse_topo = topo[::-1]

        poller = _StridePoller(check_deadline)
        if machine is not None:
            contention = contention_rows(index.instructions, machine)
        else:
            contention = [0] * n
        universe = index.universe

        packed_ef = None
        if HAVE_NUMPY and n:
            unit = _unit_rows(n)
            reach_m = _closure_numpy(n, succ_adj, reverse_topo, unit, poller)
            anc_m = _closure_numpy(n, pred_adj, topo, unit, poller)
            et_m = reach_m | anc_m | pack_rows(contention, n)
            universe_row = pack_rows([universe], n)[0]
            ef_m = ~(et_m | unit) & universe_row
            reach = unpack_rows(reach_m, n)
            et = unpack_rows(et_m, n)
            ef = unpack_rows(ef_m, n)
            packed_ef = ef_m
            backend = "numpy"
        else:
            reach = _closure_portable(n, succ_adj, reverse_topo, poller)
            ancestors = _closure_portable(n, pred_adj, topo, poller)
            et = [reach[i] | ancestors[i] | contention[i] for i in range(n)]
            ef = [universe & ~(et[i] | (1 << i)) for i in range(n)]
            backend = "portable"

        kernel = cls(
            index=index,
            reach_rows=reach,
            contention_rows=contention,
            et_rows=et,
            ef_rows=ef,
            packed_ef=packed_ef,
            backend=backend,
        )

        tracer = get_tracer()
        metrics = get_metrics()
        metrics.counter("kernel.vector_builds").inc()
        if tracer.enabled or metrics.enabled:
            et_edges = sum(popcount(row) for row in et) // 2
            ef_edges = kernel.ef_edge_count()
            tracer.counter("kernel.closure_visits", 2 * n)
            tracer.counter("kernel.deadline_polls", poller.polls)
            tracer.counter("kernel.et_edges", et_edges)
            tracer.counter("kernel.ef_edges", ef_edges)
            tracer.counter("kernel.vector_backend_numpy",
                           1 if backend == "numpy" else 0)
            metrics.counter("kernel.closure_visits").inc(2 * n)
            metrics.counter("kernel.deadline_polls").inc(poller.polls)
            metrics.histogram("kernel.et_edges").observe(et_edges)
            metrics.histogram("kernel.ef_edges").observe(ef_edges)
        return kernel

    def packed_ef_matrix(self):
        """The packed E_f matrix, building it on first use when the
        kernel was reconstructed from wire rows (shard stitching)."""
        if self.packed_ef is None and HAVE_NUMPY:
            self.packed_ef = pack_rows(self.ef_rows, len(self.index))
        return self.packed_ef


# ----------------------------------------------------------------------
# Vectorized web projection
# ----------------------------------------------------------------------


def web_pair_hits(
    ef_rows: Sequence[int],
    masks: Sequence[int],
    n: int,
    packed_ef=None,
    check_deadline: Optional[Callable[[], None]] = None,
    as_arrays: bool = False,
) -> List[Sequence[int]]:
    """Which web pairs share an E_f edge, as upper-triangle hit lists.

    *masks* is the per-web bitmask of defining-instruction positions
    (every mask non-zero, webs in index order — the layout
    :func:`repro.core.parallel_interference._web_def_masks` produces).
    Returns ``hits`` with ``hits[a]`` the ordinals ``b > a`` such that
    some defining instruction of web *a* has an E_f edge to some
    defining instruction of web *b* — exactly the pairs the big-int
    splice inserts, detected one vectorized row at a time.

    With ``as_arrays=True`` the numpy path keeps each hit row as an
    intp ndarray (skipping the ``tolist`` conversion for consumers
    that feed the ordinals straight back into array indexing); the
    portable path always returns plain lists, so callers asking for
    arrays must still treat rows as generic sequences (``len``-test,
    not truth-test).
    """
    count = len(masks)
    hits: List[Sequence[int]] = [[] for _ in range(count)]
    if count < 2:
        return hits
    if HAVE_NUMPY:
        ef_m = packed_ef
        if ef_m is None or isinstance(ef_m, list):
            ef_m = pack_rows(ef_rows, n)
        mask_m = pack_rows(masks, n)
        flat: List[int] = []
        offsets: List[int] = []
        for mask in masks:
            offsets.append(len(flat))
            flat.extend(iter_bits(mask))
        neighbor_m = _np.bitwise_or.reduceat(ef_m[flat], offsets, axis=0)
        stride = DependenceBitKernel.DEADLINE_STRIDE - 1
        for a in range(count - 1):
            if check_deadline is not None and not (a & stride):
                check_deadline()
            matched = _np.nonzero(
                (mask_m[a + 1:] & neighbor_m[a]).any(axis=1)
            )[0]
            if matched.size:
                shifted = matched + (a + 1)
                hits[a] = shifted if as_arrays else shifted.tolist()
        return hits
    # Portable path: identical O(W^2) big-int pair scan.
    neighbor_masks = []
    for mask in masks:
        row = 0
        for i in iter_bits(mask):
            row |= ef_rows[i]
        neighbor_masks.append(row)
    stride = DependenceBitKernel.DEADLINE_STRIDE - 1
    for a in range(count - 1):
        if check_deadline is not None and not (a & stride):
            check_deadline()
        neighbor = neighbor_masks[a]
        if not neighbor:
            continue
        hits[a] = [
            b for b in range(a + 1, count) if neighbor & masks[b]
        ]
    return hits
