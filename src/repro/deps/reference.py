"""Retained set-based reference implementation of the E_t/E_f pipeline.

This module preserves, verbatim in structure, the original tuple-set
implementation of the dependence pipeline that the bitset kernel
(:mod:`repro.deps.bitset`) replaced:

* reachability as dict-of-sets and the closure as a set of pairs;
* contention as an all-pairs ``can_coissue`` scan;
* E_f as an explicit O(n²) complement loop;
* web projection by iterating every E_f tuple.

It exists for two jobs and must not be "optimized":

1. **Ground truth** — the equivalence property suite
   (``tests/deps/test_bitset_equivalence.py``) asserts the kernel's
   E_t/E_f/projection are set-equal to these functions across fuzzed
   function/machine combinations.
2. **Perf baseline** — ``repro bench`` times
   ``build_parallel_interference_graph(engine="reference")`` against
   the bitset engine so every future perf PR has a recorded
   trajectory (``BENCH_*.json``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.reaching import DefPoint
from repro.analysis.webs import Web
from repro.deps.false_dependence import FalseDependenceGraph
from repro.deps.schedule_graph import ScheduleGraph
from repro.deps.transitive import Pair, ordered_pair
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription


def reference_reachability(
    sg: ScheduleGraph,
) -> Dict[Instruction, Set[Instruction]]:
    """Reverse-topological reachability DP over Python sets."""
    reach: Dict[Instruction, Set[Instruction]] = {}
    for instr in reversed(sg.topological_order()):
        result: Set[Instruction] = set()
        for succ in sg.graph.successors(instr):
            result.add(succ)
            result |= reach[succ]
        reach[instr] = result
    return reach


def reference_transitive_closure_pairs(sg: ScheduleGraph) -> Set[Pair]:
    """The undirected closure as a set of uid-normalized pairs."""
    pairs: Set[Pair] = set()
    for instr, reachable in reference_reachability(sg).items():
        for other in reachable:
            pairs.add(ordered_pair(instr, other))
    return pairs


def reference_contention_pairs(
    instructions: List[Instruction],
    machine: MachineDescription,
) -> List[Tuple[Instruction, Instruction]]:
    """All-pairs ``can_coissue`` scan (the pre-bitset contention path)."""
    pairs: List[Tuple[Instruction, Instruction]] = []
    for i, a in enumerate(instructions):
        for b in instructions[i + 1:]:
            if not machine.can_coissue(a, b):
                pairs.append((a, b))
    return pairs


def reference_false_dependence_graph(
    sg: ScheduleGraph,
    machine: MachineDescription,
) -> FalseDependenceGraph:
    """Derive G_f with explicit pair sets (closure, contention scan,
    O(n²) complement loop) — no bitset kernel attached."""
    et: Set[Pair] = set(reference_transitive_closure_pairs(sg))
    for a, b in reference_contention_pairs(sg.instructions, machine):
        et.add(ordered_pair(a, b))

    ef: Set[Pair] = set()
    instructions = sg.instructions
    for i, a in enumerate(instructions):
        for b in instructions[i + 1:]:
            pair = ordered_pair(a, b)
            if pair not in et:
                ef.add(pair)

    return FalseDependenceGraph(
        instructions=list(instructions),
        et_pairs=et,
        ef_pairs=ef,
        schedule_graph=sg,
    )


def reference_project_false_pairs_to_webs(
    fdg: FalseDependenceGraph,
    def_to_web: Dict[DefPoint, Web],
) -> Set[Tuple[Web, Web]]:
    """Tuple-at-a-time projection of E_f onto web pairs (defs only)."""
    pairs: Set[Tuple[Web, Web]] = set()
    for u, v in fdg.ef_pairs:
        for reg_u in u.defs():
            web_u = def_to_web.get(DefPoint(u, reg_u))
            if web_u is None:
                continue
            for reg_v in v.defs():
                web_v = def_to_web.get(DefPoint(v, reg_v))
                if web_v is None or web_v is web_u:
                    continue
                pair = (
                    (web_u, web_v)
                    if web_u.index <= web_v.index
                    else (web_v, web_u)
                )
                pairs.add(pair)
    return pairs
