"""Word-parallel bitset dependence kernel.

The paper's whole construction funnels through one pipeline —
transitive closure of G_s → E_t (plus contention pairs) → complement
E_f → projection onto webs.  Materializing each step as a Python set
of instruction-pair tuples costs O(n²) tuple allocations and hashes;
this kernel instead interns a region's instructions into dense indices
(:class:`InstructionIndex`) and keeps every relation as one big-int
*row* per instruction, combined with ``|``/``&``/masked-``~`` — 64
pairs per machine word, at C speed:

* ``reach_rows[i]`` — instructions reachable from i through schedule-
  graph edges (directed descendants);
* ``et_rows[i]`` — the symmetric constraint relation E_t: descendants
  ∪ ancestors (the undirected transitive closure) ∪ the machine
  contention row;
* ``ef_rows[i]`` — the complement E_f, ``~(et | self)`` under the
  universe mask: bit j set iff {i, j} may share an issue cycle.

The pair-set views (`E_t`/`E_f` as sets of uid-normalized instruction
tuples) are materialized lazily by the consumers that still want them
(:class:`repro.deps.false_dependence.FalseDependenceGraph`); the hot
paths — complementation, web projection, scheduler availability masks
— never leave row form.  The bit-equal reference implementation
retained for validation lives in :mod:`repro.deps.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.machine.resources import contention_rows
from repro.utils.bits import bits_above, iter_bits, popcount

#: An undirected instruction pair, order-normalized by uid (kept
#: structurally identical to :data:`repro.deps.transitive.Pair`).
Pair = Tuple[Instruction, Instruction]


class InstructionIndex:
    """Dense interning of a region's instructions.

    Maps each instruction to a bit position (its program-order index
    within the region) so relations over the region become int rows.
    Instructions hash by uid, so lookups work across structural copies
    that preserve uids.
    """

    __slots__ = ("instructions", "_position")

    def __init__(self, instructions: Sequence[Instruction]) -> None:
        self.instructions: List[Instruction] = list(instructions)
        self._position: Dict[Instruction, int] = {
            instr: i for i, instr in enumerate(self.instructions)
        }

    def __len__(self) -> int:
        return len(self.instructions)

    def __contains__(self, instr: Instruction) -> bool:
        return instr in self._position

    def position(self, instr: Instruction) -> int:
        """The dense index of *instr* (raises KeyError when foreign)."""
        return self._position[instr]

    def position_or_none(self, instr: Instruction) -> Optional[int]:
        return self._position.get(instr)

    @property
    def universe(self) -> int:
        """The all-ones mask over this index's positions."""
        return (1 << len(self.instructions)) - 1

    def mask_of(self, instrs: Iterable[Instruction]) -> int:
        """Bitmask of the given (member) instructions."""
        position = self._position
        mask = 0
        for instr in instrs:
            mask |= 1 << position[instr]
        return mask

    def select(self, mask: int) -> List[Instruction]:
        """Instructions at the set bit positions, in index order."""
        instructions = self.instructions
        return [instructions[i] for i in iter_bits(mask)]


@dataclass
class DependenceBitKernel:
    """The bitset-backed E_t/E_f of one scheduling region.

    Attributes:
        index: The instruction interning layer.
        reach_rows: Directed reachability (descendants, self excluded).
        contention_rows: Machine structural-conflict rows (empty
            machine → all-zero rows).
        et_rows: Symmetric constraint rows (closure ∪ contention).
        ef_rows: Symmetric false-dependence rows (complement of E_t).
    """

    index: InstructionIndex
    reach_rows: List[int]
    contention_rows: List[int]
    et_rows: List[int]
    ef_rows: List[int]

    #: Deadline-poll stride inside the closure loops: the callback
    #: fires once per this many visited instructions, keeping the
    #: per-iteration overhead to one counter test.
    DEADLINE_STRIDE = 64

    @classmethod
    def build(
        cls,
        sg: ScheduleGraph,
        machine: Optional[MachineDescription] = None,
        check_deadline: Optional[Callable[[], None]] = None,
    ) -> "DependenceBitKernel":
        """Derive all rows from a schedule graph and machine.

        Two linear passes over the DAG (reverse-topological for
        descendants, topological for ancestors) build the undirected
        closure; each visit ORs whole successor/predecessor rows, so
        the closure costs O(V·E/word) — the complexity the set
        representation only advertised.  Complementation is one masked
        ``~`` per row.

        Args:
            sg: Schedule graph of one region.
            machine: Contention-row source (None → all-zero rows).
            check_deadline: Optional callback polled every
                :data:`DEADLINE_STRIDE` visits inside the closure
                loops; it raises (typically
                :class:`~repro.utils.errors.BudgetExceededError`) to
                preempt a compile whose wall-clock budget expired
                mid-phase, instead of only at phase boundaries.
        """
        from repro.obs import get_metrics, get_tracer
        from repro.utils.faults import trip

        trip("deps.bitset")
        index = InstructionIndex(sg.instructions)
        n = len(index)
        position = index.position
        order = sg.topological_order()
        stride_mask = cls.DEADLINE_STRIDE - 1
        polls = 0

        reach = [0] * n
        successors = sg.graph.succ
        for k, instr in enumerate(reversed(order)):
            if check_deadline is not None and not (k & stride_mask):
                polls += 1
                check_deadline()
            row = 0
            for succ in successors[instr]:
                j = position(succ)
                row |= (1 << j) | reach[j]
            reach[position(instr)] = row

        ancestors = [0] * n
        predecessors = sg.graph.pred
        for k, instr in enumerate(order):
            if check_deadline is not None and not (k & stride_mask):
                polls += 1
                check_deadline()
            row = 0
            for pred in predecessors[instr]:
                j = position(pred)
                row |= (1 << j) | ancestors[j]
            ancestors[position(instr)] = row

        if machine is not None:
            contention = contention_rows(index.instructions, machine)
        else:
            contention = [0] * n

        universe = index.universe
        et = [reach[i] | ancestors[i] | contention[i] for i in range(n)]
        ef = [universe & ~(et[i] | (1 << i)) for i in range(n)]
        kernel = cls(
            index=index,
            reach_rows=reach,
            contention_rows=contention,
            et_rows=et,
            ef_rows=ef,
        )

        tracer = get_tracer()
        metrics = get_metrics()
        metrics.counter("kernel.builds").inc()
        if tracer.enabled or metrics.enabled:
            # Expensive payloads (|E_t|/|E_f| popcounts) are computed
            # only when someone is listening — the sanctioned use of
            # the enabled flag (see repro.obs.trace).
            et_edges = sum(popcount(row) for row in et) // 2
            ef_edges = kernel.ef_edge_count()
            tracer.counter("kernel.closure_visits", 2 * n)
            tracer.counter("kernel.deadline_polls", polls)
            tracer.counter("kernel.et_edges", et_edges)
            tracer.counter("kernel.ef_edges", ef_edges)
            metrics.counter("kernel.closure_visits").inc(2 * n)
            metrics.counter("kernel.deadline_polls").inc(polls)
            metrics.histogram("kernel.et_edges").observe(et_edges)
            metrics.histogram("kernel.ef_edges").observe(ef_edges)
        return kernel

    # ------------------------------------------------------------------
    # Row queries
    # ------------------------------------------------------------------

    def ef_row(self, instr: Instruction) -> int:
        """E_f neighbors of *instr* as a mask (0 for foreign ones)."""
        i = self.index.position_or_none(instr)
        return self.ef_rows[i] if i is not None else 0

    def has_false_edge(self, a: Instruction, b: Instruction) -> bool:
        """Bit test: may *a* and *b* issue in the same cycle?"""
        i = self.index.position_or_none(a)
        j = self.index.position_or_none(b)
        if i is None or j is None:
            return False
        return bool((self.ef_rows[i] >> j) & 1)

    def ef_edge_count(self) -> int:
        """|E_f| (each undirected edge counted once)."""
        return sum(popcount(row) for row in self.ef_rows) // 2

    # ------------------------------------------------------------------
    # Pair-set materialization (lazy views for legacy consumers)
    # ------------------------------------------------------------------

    def pairs_of_rows(self, rows: Sequence[int]) -> Set[Pair]:
        """Materialize symmetric rows as uid-normalized pair tuples."""
        instructions = self.index.instructions
        pairs: Set[Pair] = set()
        for i, row in enumerate(rows):
            a = instructions[i]
            for j in iter_bits(bits_above(row, i)):
                b = instructions[j]
                pairs.add((a, b) if a.uid <= b.uid else (b, a))
        return pairs

    def et_pairs(self) -> Set[Pair]:
        return self.pairs_of_rows(self.et_rows)

    def ef_pairs(self) -> Set[Pair]:
        return self.pairs_of_rows(self.ef_rows)
