"""Observability: structured tracing and metrics for the whole stack.

The package holds one process-wide *current* tracer and metrics
registry, both defaulting to shared no-op singletons.  Instrumented
code — the driver's :class:`~repro.pipeline.driver.PhaseGuard`, the
bitset dependence kernel, the combined coloring, the augmented
scheduler, and the batch service — fetches them via :func:`get_tracer`
/ :func:`get_metrics` and emits unconditionally; when nothing is
installed every call is a no-op on the null singleton, so the disabled
overhead is a dictionary-free attribute call per site (guarded by the
``<5%`` bench delta in CI).

Enable per run with the context managers::

    with tracing("run.jsonl"):
        driver.compile_text(src)          # spans/counters land in the file

    with collecting_metrics() as registry:
        run_bench(...)
        print(registry.snapshot())

or imperatively with :func:`set_tracer` / :func:`set_metrics` (tests).
``repro compile/batch/bench --trace FILE --metrics`` wire these up at
the CLI, and ``repro stats`` aggregates a trace back into per-phase /
per-rung tables (:mod:`repro.obs.stats`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.stats import (
    aggregate,
    check_spans,
    format_stats,
    load_trace,
)
from repro.obs.trace import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    TRACE_VERSION,
    Tracer,
    validate_event,
)

__all__ = [
    "EVENT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "TRACE_VERSION",
    "Tracer",
    "aggregate",
    "check_spans",
    "collecting_metrics",
    "format_stats",
    "get_metrics",
    "get_tracer",
    "load_trace",
    "set_metrics",
    "set_tracer",
    "tracing",
    "validate_event",
]

_current_tracer: NullTracer = NULL_TRACER
_current_metrics: NullMetrics = NULL_METRICS


def get_tracer() -> NullTracer:
    """The current tracer (the no-op singleton when tracing is off)."""
    return _current_tracer


def set_tracer(tracer: Optional[NullTracer]) -> NullTracer:
    """Install *tracer* (None restores the null singleton); returns
    the previously installed one so callers can restore it."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def get_metrics() -> NullMetrics:
    """The current metrics registry (no-op singleton when disabled)."""
    return _current_metrics


def set_metrics(metrics: Optional[NullMetrics]) -> NullMetrics:
    """Install *metrics* (None restores the null singleton); returns
    the previously installed registry."""
    global _current_metrics
    previous = _current_metrics
    _current_metrics = metrics if metrics is not None else NULL_METRICS
    return previous


@contextmanager
def tracing(path: Optional[str]) -> Iterator[NullTracer]:
    """Install a :class:`Tracer` appending to *path* for the duration
    of the block.  ``tracing(None)`` is a no-op yielding the null
    singleton, so CLI code can wrap unconditionally."""
    if not path:
        yield NULL_TRACER
        return
    tracer = Tracer.to_path(path)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()


@contextmanager
def collecting_metrics(
    enabled: bool = True,
) -> Iterator[Optional[Metrics]]:
    """Install a fresh :class:`Metrics` registry for the block and
    yield it (None when *enabled* is False, mirroring :func:`tracing`'s
    unconditional-wrap convenience)."""
    if not enabled:
        yield None
        return
    registry = Metrics()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
