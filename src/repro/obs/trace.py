"""Structured tracing: schema-versioned JSONL event streams.

One :class:`Tracer` writes one run's events as JSON lines — span
begin/end pairs with monotonic durations, complete (retroactive)
spans, counters, gauges, and free-form events.  The stream is designed
to be *aggregated*, not tailed: ``repro stats`` folds a trace into
per-phase and per-rung tables (:mod:`repro.obs.stats`), and every
future perf PR is expected to measure against it.

The subsystem is zero-dependency and, crucially, **near-zero overhead
when disabled**: call sites hold a :class:`NullTracer` — a no-op
singleton sharing the full interface — instead of guarding each call
with ``if enabled``.  The only sanctioned use of the :attr:`enabled`
flag is to skip computing an *expensive payload* (e.g. popcounting
every row of a kernel just to report ``|E_f|``); ordinary event
emission must go through the singleton unconditionally.

Event schema (one JSON object per line)::

    {"v": 1, "ts": 0.000123, "kind": "span_begin", "name": "phase.pig",
     "span_id": 7, "attrs": {...}}
    {"v": 1, "ts": 0.004200, "kind": "span_end", "name": "phase.pig",
     "span_id": 7, "duration_s": 0.004077, "attrs": {"status": "ok"}}
    {"v": 1, "ts": 0.9, "kind": "span", "name": "phase.color",
     "duration_s": 0.01, "attrs": {"task_id": "t3", "rung": "pinter/bitset"}}
    {"v": 1, "ts": 1.2, "kind": "counter", "name": "kernel.ef_edges",
     "value": 512, "attrs": {}}
    {"v": 1, "ts": 1.3, "kind": "gauge", "name": "driver.budget_remaining_s",
     "value": 0.87, "attrs": {}}
    {"v": 1, "ts": 2.0, "kind": "event", "name": "task.done",
     "attrs": {"task_id": "t3", "rung": "pinter/bitset", "status": "ok"}}

``ts`` is monotonic seconds since the tracer was created (never wall
clock — NTP steps cannot reorder a trace); ``duration_s`` is measured
with ``time.perf_counter``.  :func:`validate_event` is the single
schema authority, shared by the tests and ``repro stats``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, IO, Optional

#: Trace event schema version (bumped on shape changes).
TRACE_VERSION = 1

#: Every event kind the schema admits.
EVENT_KINDS = (
    "span_begin",
    "span_end",
    "span",
    "counter",
    "gauge",
    "event",
)


class _NullSpan:
    """The no-op context manager :class:`NullTracer` spans return."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer with the full :class:`Tracer` interface.

    Instrumented code holds one of these when tracing is off; every
    method is a pass, so the disabled cost is one attribute lookup and
    one call per site — no branches at call sites.
    """

    __slots__ = ()

    #: False on the null tracer; True on a real one.  Only consult it
    #: to skip computing an expensive event payload.
    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def span_point(
        self, name: str, duration_s: float, **attrs: object
    ) -> None:
        return None

    def counter(self, name: str, value: float, **attrs: object) -> None:
        return None

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        return None

    def event(self, name: str, **attrs: object) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide disabled tracer (shared, stateless).
NULL_TRACER = NullTracer()


class _Span:
    """A live span: emits ``span_begin`` on entry and ``span_end``
    (with its perf-counter duration) on exit.  The end event carries
    ``status: "error"`` when the body raised."""

    __slots__ = ("_tracer", "name", "span_id", "attrs", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int, attrs: Dict
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._tracer._emit(
            kind="span_begin",
            name=self.name,
            span_id=self.span_id,
            attrs=self.attrs,
        )
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        duration = time.perf_counter() - self._start
        attrs = dict(self.attrs)
        attrs["status"] = "error" if exc_type is not None else "ok"
        self._tracer._emit(
            kind="span_end",
            name=self.name,
            span_id=self.span_id,
            duration_s=duration,
            attrs=attrs,
        )


class Tracer(NullTracer):
    """A JSONL trace writer.

    Args:
        sink: An open text stream to write events to.
        owns_sink: Close *sink* in :meth:`close` (True for
            :meth:`to_path` tracers).

    Writes happen behind a lock (the batch parent emits from
    signal-adjacent paths) and every line is flushed immediately: a
    torn trace loses at most the event being written, and — critically
    — a ``fork``-started worker can never inherit buffered parent
    lines and replay them on exit.
    """

    __slots__ = ("_sink", "_owns_sink", "_t0", "_lock", "_next_span_id")

    enabled = True

    def __init__(self, sink: IO[str], owns_sink: bool = False) -> None:
        self._sink: Optional[IO[str]] = sink
        self._owns_sink = owns_sink
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._next_span_id = 0

    @classmethod
    def to_path(cls, path: str) -> "Tracer":
        """A tracer appending to *path* (UTF-8, created if missing)."""
        return cls(open(path, "a", encoding="utf-8"), owns_sink=True)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, kind: str, name: str, **fields: object) -> None:
        payload: Dict[str, object] = {
            "v": TRACE_VERSION,
            "ts": round(time.monotonic() - self._t0, 6),
            "kind": kind,
            "name": name,
        }
        attrs = fields.pop("attrs", None) or {}
        payload.update(fields)
        payload["attrs"] = attrs
        line = json.dumps(payload, sort_keys=True, default=str)
        with self._lock:
            if self._sink is not None:
                self._sink.write(line + "\n")
                self._sink.flush()

    def span(self, name: str, **attrs: object) -> _Span:
        with self._lock:
            self._next_span_id += 1
            span_id = self._next_span_id
        return _Span(self, name, span_id, attrs)

    def span_point(
        self, name: str, duration_s: float, **attrs: object
    ) -> None:
        """A complete span in one event — for durations observed after
        the fact (e.g. per-phase seconds shipped back from a worker
        subprocess)."""
        self._emit(
            kind="span",
            name=name,
            duration_s=round(float(duration_s), 6),
            attrs=attrs,
        )

    def counter(self, name: str, value: float, **attrs: object) -> None:
        self._emit(kind="counter", name=name, value=value, attrs=attrs)

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        self._emit(kind="gauge", name=name, value=value, attrs=attrs)

    def event(self, name: str, **attrs: object) -> None:
        self._emit(kind="event", name=name, attrs=attrs)

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._sink is None:
                return
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None


# ----------------------------------------------------------------------
# Schema validation (shared by tests and ``repro stats``)
# ----------------------------------------------------------------------

def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event(obj: object) -> Optional[str]:
    """Schema-check one decoded trace event.

    Returns None when *obj* is a valid event, else a human-readable
    description of the first violation found.
    """
    if not isinstance(obj, dict):
        return "event is not an object: {!r}".format(obj)
    if obj.get("v") != TRACE_VERSION:
        return "unknown trace version {!r}".format(obj.get("v"))
    kind = obj.get("kind")
    if kind not in EVENT_KINDS:
        return "unknown event kind {!r}".format(kind)
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        return "event name must be a non-empty string, got {!r}".format(name)
    if not _is_number(obj.get("ts")) or obj["ts"] < 0:
        return "ts must be a non-negative number, got {!r}".format(
            obj.get("ts")
        )
    attrs = obj.get("attrs", {})
    if not isinstance(attrs, dict) or any(
        not isinstance(key, str) for key in attrs
    ):
        return "attrs must be an object with string keys"
    if kind in ("span_begin", "span_end"):
        if not isinstance(obj.get("span_id"), int) or obj["span_id"] < 1:
            return "{} needs a positive integer span_id".format(kind)
    if kind in ("span_end", "span"):
        if not _is_number(obj.get("duration_s")) or obj["duration_s"] < 0:
            return "{} needs a non-negative duration_s".format(kind)
    if kind in ("counter", "gauge") and not _is_number(obj.get("value")):
        return "{} needs a numeric value".format(kind)
    return None
