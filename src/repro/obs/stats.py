"""Trace aggregation: fold a JSONL trace into summary tables.

``repro stats run.jsonl`` reads a trace written by
:class:`~repro.obs.trace.Tracer`, validates every line against the
schema (:func:`~repro.obs.trace.validate_event`), and aggregates:

* **per-phase** — every ``span_end``/``span`` event named
  ``phase.<name>`` contributes its ``duration_s`` to that phase's
  count/total/mean/min/max row (live driver spans and worker phase
  timings folded in by the batch parent land in the same table);
* **spans** — every other span name (``serve.job``,
  ``pig.shard.build``, ...) gets the same count/total/mean/min/max
  treatment in its own table, so service- and transport-level
  latencies show up without claiming to be compile phases;
* **per-rung** — every ``task.done`` event groups by its ``rung``
  attribute into task counts per status plus total task seconds;
* **counters** are summed, **gauges** keep their last value, and
  span begin/end balance is checked (an unbalanced trace usually
  means a compile died mid-span — worth knowing, never fatal).

Torn or foreign lines are tolerated by default (a SIGKILL'd run tears
its final line exactly like the run ledger); ``--check`` turns any
invalid line or unbalanced span into a non-zero exit for CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import validate_event
from repro.utils.errors import InputError

#: Span/phase names emitted by the driver carry this prefix.
PHASE_PREFIX = "phase."


def load_trace(
    path: str,
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse *path* into ``(valid_events, error_descriptions)``.

    Raises:
        InputError: when the file cannot be read at all.
    """
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        raise InputError(
            "cannot read trace {!r}: {}".format(path, exc)
        ) from None
    events: List[Dict[str, object]] = []
    errors: List[str] = []
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                errors.append("line {}: not valid JSON".format(lineno))
                continue
            problem = validate_event(obj)
            if problem is not None:
                errors.append("line {}: {}".format(lineno, problem))
                continue
            events.append(obj)
    return events, errors


def check_spans(events: List[Dict[str, object]]) -> List[str]:
    """Span begin/end balance problems (empty list when balanced)."""
    open_spans: Dict[int, str] = {}
    problems: List[str] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span_begin":
            span_id = event["span_id"]  # type: ignore[index]
            if span_id in open_spans:
                problems.append(
                    "span_id {} begun twice ({})".format(
                        span_id, event["name"]
                    )
                )
            open_spans[span_id] = str(event["name"])
        elif kind == "span_end":
            span_id = event["span_id"]  # type: ignore[index]
            if span_id not in open_spans:
                problems.append(
                    "span_id {} ended without a begin ({})".format(
                        span_id, event["name"]
                    )
                )
            else:
                del open_spans[span_id]
    for span_id, name in sorted(open_spans.items()):
        problems.append(
            "span_id {} ({}) never ended".format(span_id, name)
        )
    return problems


def _phase_of(event: Dict[str, object]) -> Optional[str]:
    name = str(event.get("name", ""))
    if name.startswith(PHASE_PREFIX):
        return name[len(PHASE_PREFIX):]
    return None


def aggregate(events: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold valid trace *events* into the stats document.

    Returns a primitive dict::

        {"events": N,
         "phases": {name: {count, total_s, mean_s, min_s, max_s,
                           share}},
         "spans": {name: {count, total_s, mean_s, min_s, max_s}},
         "rungs": {rung: {tasks, ok, degraded, failed, other,
                          total_s}},
         "counters": {name: total},
         "gauges": {name: last_value},
         "top_phase": name-or-None,
         "span_problems": [...]}

    ``share`` is the phase's fraction of the summed phase wall time
    (``total_s / sum of all phase total_s``) and ``top_phase`` names
    the largest share — the line ``repro stats --expect-top-phase``
    asserts on, so a perf regression that shifts where a run spends
    its time fails CI rather than drifting silently.
    """
    phases: Dict[str, Dict[str, float]] = {}
    spans: Dict[str, Dict[str, float]] = {}
    rungs: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}

    for event in events:
        kind = event.get("kind")
        if kind in ("span_end", "span"):
            phase = _phase_of(event)
            if phase is not None:
                table, key = phases, phase
            else:
                # Non-phase spans (serve.job, pig.shard.build, ...)
                # keep their full name in their own table.
                table, key = spans, str(event.get("name", "?"))
            duration = float(event.get("duration_s", 0.0))
            row = table.setdefault(
                key,
                {"count": 0, "total_s": 0.0,
                 "min_s": float("inf"), "max_s": 0.0},
            )
            row["count"] += 1
            row["total_s"] += duration
            row["min_s"] = min(row["min_s"], duration)
            row["max_s"] = max(row["max_s"], duration)
        elif kind == "counter":
            name = str(event["name"])
            counters[name] = counters.get(name, 0.0) + float(
                event.get("value", 0.0)
            )
        elif kind == "gauge":
            gauges[str(event["name"])] = float(event.get("value", 0.0))
        elif kind == "event" and event.get("name") == "task.done":
            attrs = event.get("attrs") or {}
            rung = str(attrs.get("rung", "?")) or "?"
            status = str(attrs.get("status", "other"))
            row = rungs.setdefault(
                rung,
                {"tasks": 0, "ok": 0, "degraded": 0, "failed": 0,
                 "other": 0, "total_s": 0.0},
            )
            row["tasks"] += 1
            bucket = status if status in ("ok", "degraded", "failed") \
                else "other"
            row[bucket] += 1
            try:
                row["total_s"] += float(attrs.get("duration_s", 0.0))
            except (TypeError, ValueError):
                pass

    for row in list(phases.values()) + list(spans.values()):
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
        if row["min_s"] == float("inf"):
            row["min_s"] = 0.0
        for key in ("total_s", "mean_s", "min_s", "max_s"):
            row[key] = round(row[key], 6)
    for row in rungs.values():
        row["total_s"] = round(row["total_s"], 6)

    phase_wall = sum(row["total_s"] for row in phases.values())
    top_phase: Optional[str] = None
    top_total = -1.0
    for name in sorted(phases):
        row = phases[name]
        row["share"] = round(
            row["total_s"] / phase_wall if phase_wall else 0.0, 6
        )
        if row["total_s"] > top_total:
            top_phase = name
            top_total = row["total_s"]

    return {
        "events": len(events),
        "top_phase": top_phase,
        "phases": {name: phases[name] for name in sorted(phases)},
        "spans": {name: spans[name] for name in sorted(spans)},
        "rungs": {name: rungs[name] for name in sorted(rungs)},
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "span_problems": check_spans(events),
    }


def format_stats(stats: Dict[str, object]) -> str:
    """Human-readable tables for one aggregated stats document."""
    lines: List[str] = []
    lines.append("{} event(s)".format(stats.get("events", 0)))

    phases = stats.get("phases") or {}
    lines.append("")
    lines.append("per-phase:")
    if phases:
        lines.append(
            "  {:<14} {:>7} {:>12} {:>12} {:>12} {:>12} {:>8}".format(
                "phase", "count", "total_s", "mean_s", "min_s", "max_s",
                "share",
            )
        )
        for name, row in phases.items():  # type: ignore[union-attr]
            lines.append(
                "  {:<14} {:>7} {:>12.6f} {:>12.6f} {:>12.6f} "
                "{:>12.6f} {:>7.1%}".format(
                    name, int(row["count"]), row["total_s"],
                    row["mean_s"], row["min_s"], row["max_s"],
                    float(row.get("share", 0.0)),
                )
            )
        top = stats.get("top_phase")
        if top is not None:
            lines.append(
                "  top phase: {} ({:.1%} of phase wall)".format(
                    top, float(phases[top].get("share", 0.0))
                )
            )
    else:
        lines.append("  (no phase spans)")

    spans = stats.get("spans") or {}
    if spans:
        lines.append("")
        lines.append("spans:")
        lines.append(
            "  {:<24} {:>7} {:>12} {:>12} {:>12} {:>12}".format(
                "span", "count", "total_s", "mean_s", "min_s", "max_s"
            )
        )
        for name, row in spans.items():  # type: ignore[union-attr]
            lines.append(
                "  {:<24} {:>7} {:>12.6f} {:>12.6f} {:>12.6f} "
                "{:>12.6f}".format(
                    name, int(row["count"]), row["total_s"],
                    row["mean_s"], row["min_s"], row["max_s"],
                )
            )

    rungs = stats.get("rungs") or {}
    lines.append("")
    lines.append("per-rung:")
    if rungs:
        lines.append(
            "  {:<24} {:>6} {:>5} {:>9} {:>7} {:>12}".format(
                "rung", "tasks", "ok", "degraded", "failed", "total_s"
            )
        )
        for name, row in rungs.items():  # type: ignore[union-attr]
            lines.append(
                "  {:<24} {:>6} {:>5} {:>9} {:>7} {:>12.6f}".format(
                    name, int(row["tasks"]), int(row["ok"]),
                    int(row["degraded"]), int(row["failed"]),
                    row["total_s"],
                )
            )
    else:
        lines.append("  (no task.done events)")

    counters = stats.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():  # type: ignore[union-attr]
            lines.append("  {:<32} {:>14g}".format(name, value))

    gauges = stats.get("gauges") or {}
    if gauges:
        lines.append("")
        lines.append("gauges (last value):")
        for name, value in gauges.items():  # type: ignore[union-attr]
            lines.append("  {:<32} {:>14g}".format(name, value))

    problems = stats.get("span_problems") or []
    if problems:
        lines.append("")
        lines.append("span problems:")
        for problem in problems:  # type: ignore[union-attr]
            lines.append("  {}".format(problem))
    return "\n".join(lines)
