"""In-process metrics: counters, gauges, histograms.

A :class:`Metrics` registry accumulates numeric observations entirely
in memory — nothing is written anywhere until :meth:`Metrics.snapshot`
serializes the whole registry as one primitive dict (the CLI prints it
on ``--metrics``; tests assert against it directly).

Like the tracer (:mod:`repro.obs.trace`), the disabled form is a
no-op **singleton** (:data:`NULL_METRICS`): instrumented code calls
``metrics.counter("x").inc()`` unconditionally and the null registry
hands back shared do-nothing instruments, so call sites carry no
``if enabled`` branches.  Instruments are created on first use and
identified by dotted names (``kernel.builds``, ``batch.retries``).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class NullCounter:
    """Shared do-nothing counter (also the base interface)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    @property
    def value(self) -> float:
        return 0.0


class NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    @property
    def value(self) -> Optional[float]:
        return None


class NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None

    @property
    def count(self) -> int:
        return 0


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetrics:
    """Do-nothing registry with the full :class:`Metrics` interface."""

    __slots__ = ()

    #: False on the null registry; True on a real one.  Only consult
    #: it to skip computing an expensive observation.
    enabled = False

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The process-wide disabled registry (shared, stateless).
NULL_METRICS = NullMetrics()


class Counter(NullCounter):
    """Monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(NullGauge):
    """Last-write-wins instantaneous value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: Optional[float] = None

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        return self._value


class Histogram(NullHistogram):
    """Streaming summary of observations: count/sum/min/max (mean is
    derived at snapshot time).  Deliberately bucket-free — the traces
    carry raw values when a distribution is needed."""

    __slots__ = ("_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    def as_dict(self) -> Dict[str, float]:
        if not self._count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self._count,
            "sum": round(self._sum, 9),
            "min": round(self._min, 9),
            "max": round(self._max, 9),
            "mean": round(self._sum / self._count, 9),
        }


class Metrics(NullMetrics):
    """A live metrics registry.

    Instruments are interned by name on first use; re-requesting a
    name returns the same instrument.  Creation is locked (the batch
    parent touches the registry from reap paths), but the instruments'
    own updates are plain float ops — Python-atomic enough for the
    single-threaded hot paths they sit on.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram())
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The whole registry as sorted primitive dicts."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self._histograms.items())
            },
        }
