"""DOT/ASCII visualization of the framework's graphs and schedules."""

from repro.viz.dot import (
    cfg_to_dot,
    false_dependence_to_dot,
    interference_to_dot,
    pig_to_dot,
    schedule_graph_to_dot,
    schedule_to_ascii,
)

__all__ = [
    "cfg_to_dot",
    "false_dependence_to_dot",
    "interference_to_dot",
    "pig_to_dot",
    "schedule_graph_to_dot",
    "schedule_to_ascii",
]
