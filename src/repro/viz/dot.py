"""Graphviz DOT rendering of every graph in the framework.

No graphviz dependency — the functions emit DOT text; render with
``dot -Tpng out.dot`` or any viewer.  Styling follows the paper's
figures: schedule graphs are directed; E_t/E_f and interference graphs
undirected; parallelizable interference graphs color edges by origin
(solid = interference, dashed = false-dependence, bold = both).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.parallel_interference import (
    EdgeOrigin,
    ParallelInterferenceGraph,
)
from repro.deps.false_dependence import FalseDependenceGraph
from repro.deps.schedule_graph import ScheduleGraph
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.regalloc.interference import InterferenceGraph
from repro.sched.list_scheduler import Schedule


def _instr_label(instr: Instruction) -> str:
    return str(instr).replace('"', "'")


def _node_id(instr: Instruction) -> str:
    return "i{}".format(instr.uid)


def schedule_graph_to_dot(sg: ScheduleGraph, title: str = "G_s") -> str:
    """Directed DOT of a schedule graph with delay-labelled edges."""
    lines = [
        "digraph schedule_graph {",
        '  label="{}"; rankdir=TB;'.format(title),
        "  node [shape=box, fontname=monospace];",
    ]
    for instr in sg.instructions:
        lines.append(
            '  {} [label="{}"];'.format(_node_id(instr), _instr_label(instr))
        )
    for u, v in sg.edges():
        lines.append(
            '  {} -> {} [label="{} d{}"];'.format(
                _node_id(u),
                _node_id(v),
                sg.kind(u, v).value,
                sg.delay(u, v),
            )
        )
    lines.append("}")
    return "\n".join(lines)


def false_dependence_to_dot(
    fdg: FalseDependenceGraph, title: str = "G_f"
) -> str:
    """Undirected DOT with E_t (gray) and E_f (red dashed) edges."""
    lines = [
        "graph false_dependence {",
        '  label="{}";'.format(title),
        "  node [shape=box, fontname=monospace];",
    ]
    for instr in fdg.instructions:
        lines.append(
            '  {} [label="{}"];'.format(_node_id(instr), _instr_label(instr))
        )
    for a, b in sorted(fdg.et_pairs, key=lambda p: (p[0].uid, p[1].uid)):
        lines.append(
            "  {} -- {} [color=gray];".format(_node_id(a), _node_id(b))
        )
    for a, b in sorted(fdg.ef_pairs, key=lambda p: (p[0].uid, p[1].uid)):
        lines.append(
            "  {} -- {} [color=red, style=dashed];".format(
                _node_id(a), _node_id(b)
            )
        )
    lines.append("}")
    return "\n".join(lines)


def interference_to_dot(
    ig: InterferenceGraph,
    coloring: Optional[Dict] = None,
    title: str = "G_r",
) -> str:
    """Undirected DOT of an interference graph; an optional coloring
    fills the nodes with a per-color palette."""
    palette = (
        "lightblue", "lightgreen", "lightsalmon", "gold", "plum",
        "lightcyan", "wheat", "lightpink",
    )
    lines = [
        "graph interference {",
        '  label="{}";'.format(title),
        "  node [shape=ellipse, style=filled, fillcolor=white];",
    ]
    for web in ig.webs:
        fill = "white"
        if coloring is not None and web in coloring:
            fill = palette[coloring[web] % len(palette)]
        lines.append(
            '  w{} [label="{}", fillcolor={}];'.format(
                web.index, web.register, fill
            )
        )
    for a, b in ig.edge_list():
        lines.append("  w{} -- w{};".format(a.index, b.index))
    lines.append("}")
    return "\n".join(lines)


def pig_to_dot(
    pig: ParallelInterferenceGraph,
    coloring: Optional[Dict] = None,
    title: str = "parallelizable interference graph",
) -> str:
    """The PIG with edges styled by origin:
    solid = interference-only, dashed red = false-only, bold = both."""
    palette = (
        "lightblue", "lightgreen", "lightsalmon", "gold", "plum",
        "lightcyan", "wheat", "lightpink",
    )
    lines = [
        "graph pig {",
        '  label="{}";'.format(title),
        "  node [shape=ellipse, style=filled, fillcolor=white];",
    ]
    for web in pig.webs:
        fill = "white"
        if coloring is not None and web in coloring:
            fill = palette[coloring[web] % len(palette)]
        lines.append(
            '  w{} [label="{}", fillcolor={}];'.format(
                web.index, web.register, fill
            )
        )
    for a, b in pig.all_edges():
        origin = pig.origin(a, b)
        if origin == EdgeOrigin.BOTH:
            style = "[style=bold, color=purple]"
        elif origin == EdgeOrigin.FALSE:
            style = "[style=dashed, color=red]"
        else:
            style = "[color=black]"
        lines.append("  w{} -- w{} {};".format(a.index, b.index, style))
    lines.append("}")
    return "\n".join(lines)


def cfg_to_dot(fn: Function, title: Optional[str] = None) -> str:
    """The control-flow graph with instruction listings per block."""
    lines = [
        "digraph cfg {",
        '  label="{}";'.format(title or fn.name),
        "  node [shape=record, fontname=monospace];",
    ]
    for block in fn.blocks():
        body = "\\l".join(_instr_label(i) for i in block) + "\\l"
        lines.append(
            '  {} [label="{{{}:|{}}}"];'.format(block.name, block.name, body)
        )
    for block in fn.blocks():
        for succ in fn.successors(block):
            lines.append("  {} -> {};".format(block.name, succ.name))
    lines.append("}")
    return "\n".join(lines)


def schedule_to_ascii(schedule: Schedule, width: int = 72) -> str:
    """An ASCII Gantt chart: one row per instruction, one column per
    cycle, ``#`` covering issue..completion."""
    if not schedule.cycle_of:
        return "(empty schedule)"
    rows = sorted(
        schedule.cycle_of.items(), key=lambda kv: (kv[1], kv[0].uid)
    )
    makespan = schedule.makespan
    label_width = min(
        max(len(str(instr)) for instr, _ in rows), width - makespan - 3
    )
    lines = []
    header = " " * (label_width + 2) + "".join(
        str(c % 10) for c in range(makespan)
    )
    lines.append(header)
    for instr, cycle in rows:
        latency = schedule.machine.latency_of(instr)
        bar = (
            "." * cycle
            + "#" * latency
            + "." * (makespan - cycle - latency)
        )
        label = str(instr)[:label_width].ljust(label_width)
        lines.append("{}  {}".format(label, bar))
    return "\n".join(lines)
