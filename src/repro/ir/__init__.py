"""RISC-style intermediate representation.

Public surface:

* operand types (:class:`VirtualRegister`, :class:`PhysicalRegister`,
  :class:`Immediate`, :class:`MemorySymbol`, :class:`Label`)
* :class:`Opcode` / :class:`UnitKind`
* :class:`Instruction`, :class:`BasicBlock`, :class:`Function`
* :class:`BlockBuilder` / :class:`FunctionBuilder` for construction
* textual round-trip via :func:`parse_function` / :func:`format_function`
* :func:`verify_function`
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import BlockBuilder, FunctionBuilder
from repro.ir.evaluator import equivalent, run_function
from repro.ir.function import Function, single_block_function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, OpcodeInfo, UnitKind, opcode_from_mnemonic
from repro.ir.operands import (
    Immediate,
    Label,
    MemorySymbol,
    Operand,
    PhysicalRegister,
    Register,
    VirtualRegister,
    is_register,
)
from repro.ir.parser import (
    parse_block,
    parse_function,
    parse_instruction,
    parse_register,
)
from repro.ir.printer import format_block, format_function, format_instruction
from repro.ir.verifier import check_function, verify_function

__all__ = [
    "BasicBlock",
    "BlockBuilder",
    "Function",
    "FunctionBuilder",
    "Immediate",
    "Instruction",
    "Label",
    "MemorySymbol",
    "Opcode",
    "OpcodeInfo",
    "Operand",
    "PhysicalRegister",
    "Register",
    "UnitKind",
    "VirtualRegister",
    "check_function",
    "equivalent",
    "format_block",
    "format_function",
    "format_instruction",
    "is_register",
    "opcode_from_mnemonic",
    "parse_block",
    "parse_function",
    "parse_instruction",
    "parse_register",
    "run_function",
    "single_block_function",
    "verify_function",
]
