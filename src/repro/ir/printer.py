"""Textual rendering of IR programs.

The printer and :mod:`repro.ir.parser` round-trip: ``parse(print(fn))``
reconstructs an equivalent function.  The concrete syntax is close to
the paper's notation::

    func example1 {
    block entry:
      s1 = load @z
      s2 = loadi 0
      s3 = load @a, s2
      s4 = add s1, s1
      s5 = mul s3, 5
    live-out: s4, s5
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction


def format_instruction(instr: Instruction) -> str:
    """One-line textual form of *instr* (parseable)."""
    parts: List[str] = []
    if instr.dests:
        parts.append(", ".join(str(d) for d in instr.dests))
        parts.append("=")
    parts.append(instr.opcode.mnemonic)
    operands = [str(s) for s in instr.srcs]
    if instr.target is not None:
        operands.append("label {}".format(instr.target.name))
    if operands:
        parts.append(", ".join(operands))
    return " ".join(parts)


def format_block(block: BasicBlock) -> str:
    lines = ["block {}:".format(block.name)]
    lines.extend("  {}".format(format_instruction(i)) for i in block)
    return "\n".join(lines)


def format_function(fn: Function) -> str:
    """Full textual form of *fn*, including CFG edges and live-outs."""
    lines = ["func {} {{".format(fn.name)]
    for block in fn.blocks():
        lines.append(format_block(block))
        successors = fn.successors(block)
        if successors:
            lines.append("  -> {}".format(
                ", ".join(b.name for b in successors)
            ))
    if fn.live_in:
        lines.append("live-in: {}".format(
            ", ".join(str(r) for r in fn.live_in)
        ))
    if fn.live_out:
        lines.append("live-out: {}".format(
            ", ".join(str(r) for r in fn.live_out)
        ))
    lines.append("}")
    return "\n".join(lines)


def side_by_side(left: str, right: str, gutter: str = "   |   ") -> str:
    """Render two program texts in two columns (used by examples to
    show the paper's before/after listings)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    width = max((len(line) for line in left_lines), default=0)
    height = max(len(left_lines), len(right_lines))
    rows = []
    for i in range(height):
        l = left_lines[i] if i < len(left_lines) else ""
        r = right_lines[i] if i < len(right_lines) else ""
        rows.append("{:<{w}}{}{}".format(l, gutter, r, w=width))
    return "\n".join(rows)
