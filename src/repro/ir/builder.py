"""Fluent construction of IR programs.

The builder mirrors how the paper writes its examples: each operation
produces a fresh symbolic register (``s1 := load z``), so Example 1
becomes::

    b = BlockBuilder()
    s1 = b.load("z")
    s2 = b.loadi(0, name="s2")          # s2 := i
    s3 = b.load_indexed("a", s2)        # s3 := a[s2]
    s4 = b.add(s1, s1)                  # s4 := s1 + s1
    ...
    fn = b.function("example1", live_out=[s4, s5])
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import (
    Immediate,
    Label,
    MemorySymbol,
    Operand,
    Register,
    VirtualRegister,
)

SourceLike = Union[Register, Immediate, MemorySymbol, int, str]


class _NameCounter:
    """Mutable auto-numbering for ``s1, s2, ...`` register names.

    Shared between the block builders of one function so names stay
    unique across blocks; explicit ``sN`` names fast-forward it.
    """

    def __init__(self, start: int = 1) -> None:
        self.next_id = start

    def take(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value

    def reserve(self, used: int) -> None:
        if used >= self.next_id:
            self.next_id = used + 1


def _as_source(value: SourceLike) -> Operand:
    """Coerce Python literals to operands: ints → immediates,
    strings → memory symbols."""
    if isinstance(value, int):
        return Immediate(value)
    if isinstance(value, str):
        return MemorySymbol(value)
    return value


class BlockBuilder:
    """Builds one basic block of symbolic-register code.

    Every arithmetic/memory helper returns the :class:`VirtualRegister`
    it defines; names default to ``s1, s2, ...`` in program order to
    match the paper's notation.
    """

    def __init__(self, name: str = "entry", prefix: str = "s") -> None:
        self.name = name
        self._prefix = prefix
        self._counter = _NameCounter()
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Register management
    # ------------------------------------------------------------------

    def fresh(self, name: Optional[str] = None) -> VirtualRegister:
        """A fresh symbolic register (``s<k>`` unless *name* is given)."""
        if name is None:
            name = "{}{}".format(self._prefix, self._counter.take())
        elif name.startswith(self._prefix) and name[len(self._prefix):].isdigit():
            # Keep auto-numbering ahead of explicit sN names.
            self._counter.reserve(int(name[len(self._prefix):]))
        return VirtualRegister(name)

    # ------------------------------------------------------------------
    # Generic emission
    # ------------------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        srcs: Sequence[SourceLike] = (),
        dest: Optional[VirtualRegister] = None,
        name: Optional[str] = None,
        target: Optional[str] = None,
    ) -> Optional[VirtualRegister]:
        """Append an instruction; returns its defined register (if any)."""
        operands = tuple(_as_source(s) for s in srcs)
        dests: Sequence[Register]
        if opcode.has_dest:
            if dest is None:
                dest = self.fresh(name)
            dests = (dest,)
        else:
            dests = ()
        label = Label(target) if target is not None else None
        instr = Instruction(opcode, dests, operands, target=label)
        self.instructions.append(instr)
        return dest

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------

    def add(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.ADD, (a, b), name=name)

    def sub(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.SUB, (a, b), name=name)

    def mul(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.MUL, (a, b), name=name)

    def div(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.DIV, (a, b), name=name)

    def and_(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.AND, (a, b), name=name)

    def or_(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.OR, (a, b), name=name)

    def xor(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.XOR, (a, b), name=name)

    def shl(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.SHL, (a, b), name=name)

    def shr(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.SHR, (a, b), name=name)

    def cmp(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.CMP, (a, b), name=name)

    def mov(self, a: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.MOV, (a,), name=name)

    def madd(self, a: SourceLike, b: SourceLike, c: SourceLike,
             name: Optional[str] = None):
        """Fixed-point multiply-add: ``dest := a*b + c``."""
        return self.emit(Opcode.MADD, (a, b, c), name=name)

    def loadi(self, value: int, name: Optional[str] = None):
        return self.emit(Opcode.LOADI, (value,), name=name)

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------

    def fadd(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.FADD, (a, b), name=name)

    def fsub(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.FSUB, (a, b), name=name)

    def fmul(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.FMUL, (a, b), name=name)

    def fdiv(self, a: SourceLike, b: SourceLike, name: Optional[str] = None):
        return self.emit(Opcode.FDIV, (a, b), name=name)

    def fma(self, a: SourceLike, b: SourceLike, c: SourceLike,
            name: Optional[str] = None):
        return self.emit(Opcode.FMA, (a, b, c), name=name)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def load(self, symbol: str, name: Optional[str] = None):
        """``s := load @symbol``"""
        return self.emit(Opcode.LOAD, (symbol,), name=name)

    def fload(self, symbol: str, name: Optional[str] = None):
        return self.emit(Opcode.FLOAD, (symbol,), name=name)

    def load_indexed(self, symbol: str, index: SourceLike,
                     name: Optional[str] = None):
        """``s := load @symbol[index]`` (the paper's ``a[s2]``)."""
        return self.emit(Opcode.LOAD, (symbol, index), name=name)

    def store(self, value: SourceLike, symbol: str):
        """``store value -> @symbol`` (ends the value's live interval)."""
        return self.emit(Opcode.STORE, (value, symbol))

    def fstore(self, value: SourceLike, symbol: str):
        return self.emit(Opcode.FSTORE, (value, symbol))

    # ------------------------------------------------------------------
    # Control / misc
    # ------------------------------------------------------------------

    def br(self, target: str):
        return self.emit(Opcode.BR, (), target=target)

    def cbr(self, cond: SourceLike, target: str):
        return self.emit(Opcode.CBR, (cond,), target=target)

    def ret(self):
        return self.emit(Opcode.RET, ())

    def call(self, name: Optional[str] = None, args: Sequence[SourceLike] = ()):
        return self.emit(Opcode.CALL, tuple(args), name=name)

    def use(self, value: SourceLike):
        """Mark *value* as consumed (keeps its live range open)."""
        return self.emit(Opcode.USE, (value,))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def block(self) -> BasicBlock:
        return BasicBlock(self.name, self.instructions)

    def function(
        self,
        name: str = "main",
        live_out: Sequence[Register] = (),
        live_in: Sequence[Register] = (),
    ) -> Function:
        """Wrap the built block as a single-block function."""
        fn = Function(name, live_out=tuple(live_out), live_in=tuple(live_in))
        fn.add_block(self.block(), entry=True)
        return fn


class FunctionBuilder:
    """Builds a multi-block function with explicit CFG edges.

    Usage::

        fb = FunctionBuilder("f")
        entry = fb.block("entry")
        then = fb.block("then")
        ...
        cond = entry.cmp(x, 0)
        entry.cbr(cond, "then")
        fb.edge("entry", "then")
        fn = fb.function(live_out=[result])
    """

    def __init__(self, name: str = "main", prefix: str = "s") -> None:
        self.name = name
        self._prefix = prefix
        self._shared_counter = _NameCounter()
        self._builders: Dict[str, BlockBuilder] = {}
        self._edges: List[tuple] = []
        self._entry: Optional[str] = None

    def block(self, name: str, entry: bool = False) -> BlockBuilder:
        if name in self._builders:
            return self._builders[name]
        builder = BlockBuilder(name, prefix=self._prefix)
        builder._counter = self._shared_counter  # share numbering across blocks
        self._builders[name] = builder
        if entry or self._entry is None:
            self._entry = name
        return builder

    def edge(self, src: str, dst: str) -> None:
        self._edges.append((src, dst))

    def auto_edges(self) -> None:
        """Derive CFG edges from branch targets and fall-through order."""
        names = list(self._builders)
        for idx, name in enumerate(names):
            builder = self._builders[name]
            term = None
            if builder.instructions and builder.instructions[-1].opcode.is_branch:
                term = builder.instructions[-1]
            if term is not None and term.target is not None:
                self._edges.append((name, term.target.name))
            falls_through = term is None or (
                term.opcode is Opcode.CBR
            )
            if falls_through and idx + 1 < len(names):
                self._edges.append((name, names[idx + 1]))

    def function(
        self,
        live_out: Sequence[Register] = (),
        live_in: Sequence[Register] = (),
    ) -> Function:
        fn = Function(self.name, live_out=tuple(live_out), live_in=tuple(live_in))
        for name, builder in self._builders.items():
            fn.add_block(builder.block(), entry=(name == self._entry))
        seen = set()
        for src, dst in self._edges:
            if (src, dst) not in seen:
                seen.add((src, dst))
                fn.add_edge(src, dst)
        return fn
