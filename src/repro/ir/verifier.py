"""Structural verification of IR functions.

The verifier enforces the invariants the analyses assume:

* every block's branch (if any) is its last instruction;
* branch targets match CFG successor edges;
* within a block, a symbolic register is defined at most once (the
  paper's "one symbolic register per value" discipline; redefinition
  across blocks is allowed — webs handle it);
* every used register is defined earlier in its block, in a CFG
  predecessor, or is declared live-in;
* CFG edges reference existing blocks and the entry block exists.

``verify_function`` raises :class:`~repro.utils.errors.IRError` on the
first violation; ``check_function`` returns the full list of problems
as strings for diagnostic tooling.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.operands import Register, VirtualRegister
from repro.utils.errors import IRError
from repro.utils.faults import trip


def check_block(block: BasicBlock) -> List[str]:
    """Local checks on one block; returns problem descriptions."""
    problems: List[str] = []
    for idx, instr in enumerate(block):
        if instr.opcode.is_branch and idx != len(block.instructions) - 1:
            problems.append(
                "block {!r}: branch {} is not the last instruction".format(
                    block.name, instr
                )
            )
    defined: Set[Register] = set()
    for instr in block:
        for reg in instr.defs():
            if isinstance(reg, VirtualRegister) and reg in defined:
                problems.append(
                    "block {!r}: symbolic register {} redefined "
                    "(one symbolic register per value)".format(block.name, reg)
                )
            defined.add(reg)
    return problems


def _reachable_defs(fn: Function) -> Dict[str, Set[Register]]:
    """For each block, the registers defined on some path reaching it.

    A simple forward fixpoint: defs-in(b) = union over preds of
    (defs-in(p) ∪ defs(p)).  Used only for the definedness check, so
    over-approximating along any path is the right direction.
    """
    defs_in: Dict[str, Set[Register]] = {b.name: set() for b in fn.blocks()}
    changed = True
    while changed:
        changed = False
        for block in fn.blocks():
            incoming: Set[Register] = set()
            for pred in fn.predecessors(block):
                incoming |= defs_in[pred.name]
                incoming |= set(pred.defined_registers())
            if not incoming <= defs_in[block.name]:
                defs_in[block.name] |= incoming
                changed = True
    return defs_in


def check_function(
    fn: Function, live_in: Sequence[Register] = ()
) -> List[str]:
    """All structural problems in *fn* (empty list = valid)."""
    problems: List[str] = []
    if len(fn) == 0:
        return ["function {!r} has no blocks".format(fn.name)]

    for block in fn.blocks():
        problems.extend(check_block(block))
        term = block.terminator
        if term is not None and term.target is not None:
            successor_names = {b.name for b in fn.successors(block)}
            if term.target.name not in fn.block_names():
                problems.append(
                    "block {!r}: branch target {!r} does not exist".format(
                        block.name, term.target.name
                    )
                )
            elif term.target.name not in successor_names:
                problems.append(
                    "block {!r}: branch target {!r} has no CFG edge".format(
                        block.name, term.target.name
                    )
                )

    defs_in = _reachable_defs(fn)
    live_in_set = set(live_in) | set(fn.live_in)
    for block in fn.blocks():
        available = set(defs_in[block.name]) | live_in_set
        for instr in block:
            for reg in instr.uses():
                if isinstance(reg, VirtualRegister) and reg not in available:
                    problems.append(
                        "block {!r}: {} uses {} before any definition".format(
                            block.name, instr, reg
                        )
                    )
            available.update(instr.defs())
    return problems


def verify_function(fn: Function, live_in: Sequence[Register] = ()) -> None:
    """Raise :class:`IRError` on the first structural violation."""
    trip("ir.verify")
    problems = check_function(fn, live_in=live_in)
    if problems:
        raise IRError("; ".join(problems))
