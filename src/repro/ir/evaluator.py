"""A concrete interpreter for IR programs.

Used to check that transformations preserve semantics: run the
original and the rewritten program against the same initial memory and
compare live-out values and final memory.  Register allocation,
pre-scheduling, spilling and region merging must all be invisible to
this interpreter.

The machine word is a Python int (floating opcodes are interpreted
over ints too — the algebra is irrelevant, only dataflow identity
matters for equivalence checking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import (
    Immediate,
    MemorySymbol,
    Register,
)
from repro.utils.errors import IRError

_WORD_MASK = (1 << 64) - 1


def _to_word(value: int) -> int:
    return value & _WORD_MASK


@dataclass
class MachineState:
    """Register file, memory and call counter of one execution.

    ``written`` records the addresses stored to during execution —
    equivalence checking compares only those, since reads of untouched
    addresses merely materialize deterministic pseudo-values.
    """

    registers: Dict[Register, int] = field(default_factory=dict)
    memory: Dict[object, int] = field(default_factory=dict)
    written: set = field(default_factory=set)
    call_counter: int = 0

    def write_memory(self, address: object, value: int) -> None:
        self.memory[address] = value
        self.written.add(address)

    def read_register(self, reg: Register) -> int:
        if reg not in self.registers:
            raise IRError("read of undefined register {}".format(reg))
        return self.registers[reg]

    def read_memory(self, address: object) -> int:
        # Unwritten memory reads a deterministic pseudo-value derived
        # from the address, so two programs see identical "input".
        if address not in self.memory:
            self.memory[address] = _to_word(hash(str(address)))
        return self.memory[address]


_BINARY = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: a // b if b else 0,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b % 64),
    Opcode.SHR: lambda a, b: a >> (b % 64),
    Opcode.CMP: lambda a, b: (a > b) - (a < b) & _WORD_MASK,
    Opcode.MOD: lambda a, b: a % b if b else 0,
    Opcode.SLT: lambda a, b: int(a < b),
    Opcode.SLE: lambda a, b: int(a <= b),
    Opcode.SGT: lambda a, b: int(a > b),
    Opcode.SGE: lambda a, b: int(a >= b),
    Opcode.SEQ: lambda a, b: int(a == b),
    Opcode.SNE: lambda a, b: int(a != b),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a // b if b else 0,
}


def _operand_value(state: MachineState, instr: Instruction, operand) -> int:
    if isinstance(operand, Immediate):
        return _to_word(operand.value)
    if isinstance(operand, MemorySymbol):
        raise IRError(
            "memory symbol {} fed to arithmetic in {}".format(operand, instr)
        )
    return state.read_register(operand)


def execute_instruction(state: MachineState, instr: Instruction) -> None:
    """Apply one non-branch instruction to *state*."""
    op = instr.opcode
    if op in (Opcode.LOAD, Opcode.FLOAD):
        symbol = instr.srcs[0]
        if not isinstance(symbol, MemorySymbol):
            raise IRError("load without memory symbol: {}".format(instr))
        if len(instr.srcs) > 1:
            index = _operand_value(state, instr, instr.srcs[1])
            address: object = (symbol.name, index)
        else:
            address = symbol.name
        state.registers[instr.dest] = state.read_memory(address)
    elif op in (Opcode.STORE, Opcode.FSTORE):
        value = _operand_value(state, instr, instr.srcs[0])
        symbol = instr.srcs[1]
        if not isinstance(symbol, MemorySymbol):
            raise IRError("store without memory symbol: {}".format(instr))
        if len(instr.srcs) > 2:  # indexed store: base[index] = value
            index = _operand_value(state, instr, instr.srcs[2])
            state.write_memory((symbol.name, index), value)
        else:
            state.write_memory(symbol.name, value)
    elif op is Opcode.LOADI:
        state.registers[instr.dest] = _to_word(
            _operand_value(state, instr, instr.srcs[0])
        )
    elif op is Opcode.MOV:
        state.registers[instr.dest] = _operand_value(state, instr, instr.srcs[0])
    elif op in (Opcode.MADD, Opcode.FMA):
        a = _operand_value(state, instr, instr.srcs[0])
        b = _operand_value(state, instr, instr.srcs[1])
        c = _operand_value(state, instr, instr.srcs[2])
        state.registers[instr.dest] = _to_word(a * b + c)
    elif op in _BINARY:
        a = _operand_value(state, instr, instr.srcs[0])
        b = _operand_value(state, instr, instr.srcs[1])
        state.registers[instr.dest] = _to_word(_BINARY[op](a, b))
    elif op is Opcode.USE:
        _operand_value(state, instr, instr.srcs[0])  # must be defined
    elif op is Opcode.CALL:
        state.call_counter += 1
        for idx, dest in enumerate(instr.dests):
            state.registers[dest] = _to_word(
                hash(("call", state.call_counter, idx))
            )
    elif op.is_branch:
        raise IRError("branch reached execute_instruction: {}".format(instr))
    else:  # pragma: no cover - every opcode is handled above
        raise IRError("unhandled opcode {}".format(op))


@dataclass
class ExecutionResult:
    """Final state plus the values of the function's live-out registers
    in declaration order (the comparison key for equivalence)."""

    state: MachineState
    live_out_values: Tuple[int, ...]
    blocks_executed: List[str]


def seed_live_in_registers(fn: Function) -> Dict[Register, int]:
    """Deterministic values for registers *fn* reads before defining
    (its live-in values) — derived from the register name, so a
    rewritten program that keeps live-in names sees identical inputs."""
    seeds: Dict[Register, int] = {}
    # Conservative: any register used somewhere without a def anywhere
    # in the function is live-in; path-sensitive refinement is not
    # needed for seeding.
    all_defs = {reg for instr in fn.instructions() for reg in instr.defs()}
    for instr in fn.instructions():
        for reg in instr.uses():
            if reg not in all_defs and reg not in seeds:
                seeds[reg] = _to_word(hash(("live-in", str(reg))))
    return seeds


def run_function(
    fn: Function,
    initial_memory: Optional[Dict[object, int]] = None,
    initial_registers: Optional[Dict[Register, int]] = None,
    max_blocks: int = 10_000,
) -> ExecutionResult:
    """Execute *fn* from its entry block.

    Control flow: ``br``/``cbr`` follow their label (``cbr`` falls
    through to the other CFG successor when the condition is zero);
    a block without a terminator falls through to its single successor;
    ``ret`` or a successor-less block ends execution.

    Raises:
        IRError: on undefined reads, missing fall-through edges, or
            exceeding *max_blocks* (runaway loop).
    """
    state = MachineState()
    if initial_memory:
        state.memory.update(initial_memory)
    state.registers.update(seed_live_in_registers(fn))
    if initial_registers:
        state.registers.update(initial_registers)

    block: Optional[BasicBlock] = fn.entry
    trace: List[str] = []
    steps = 0
    while block is not None:
        steps += 1
        if steps > max_blocks:
            raise IRError("execution exceeded {} blocks".format(max_blocks))
        trace.append(block.name)
        next_block: Optional[BasicBlock] = None
        for instr in block:
            op = instr.opcode
            if not op.is_branch:
                execute_instruction(state, instr)
                continue
            if op is Opcode.RET:
                next_block = None
            elif op is Opcode.BR:
                next_block = fn.block(instr.target.name)
            elif op is Opcode.CBR:
                cond = _operand_value(state, instr, instr.srcs[0])
                if cond:
                    next_block = fn.block(instr.target.name)
                else:
                    others = [
                        s
                        for s in fn.successors(block)
                        if s.name != instr.target.name
                    ]
                    if not others:
                        next_block = fn.block(instr.target.name)
                    else:
                        next_block = others[0]
            break
        else:
            # No terminator: fall through.
            successors = fn.successors(block)
            if len(successors) > 1:
                raise IRError(
                    "block {!r} falls through to {} successors".format(
                        block.name, len(successors)
                    )
                )
            next_block = successors[0] if successors else None
        block = next_block

    live_out_values = tuple(
        state.read_register(reg) for reg in fn.live_out
    )
    return ExecutionResult(
        state=state, live_out_values=live_out_values, blocks_executed=trace
    )


def equivalent(
    fn_a: Function,
    fn_b: Function,
    initial_memory: Optional[Dict[object, int]] = None,
    ignore_prefix: str = "spill.",
) -> bool:
    """Do the two functions compute the same live-out values and final
    memory from the same initial memory?

    Memory addresses whose name starts with *ignore_prefix* are
    excluded from the comparison — spill slots are an implementation
    detail of the rewritten program, not part of its meaning.
    """
    result_a = run_function(fn_a, dict(initial_memory or {}))
    result_b = run_function(fn_b, dict(initial_memory or {}))
    if result_a.live_out_values != result_b.live_out_values:
        return False

    def visible(state: MachineState) -> Dict[object, int]:
        return {
            addr: state.memory[addr]
            for addr in state.written
            if not str(addr).startswith(ignore_prefix)
        }

    # Only written addresses count: reads of untouched addresses merely
    # materialize deterministic pseudo-values, and dead loads may be
    # legitimately removed by optimization.
    return visible(result_a.state) == visible(result_b.state)
