"""The IR instruction: a RISC-style three-address operation.

Instructions carry a stable ``uid`` that survives register rewriting
and reordering, so that graphs built over the symbolic-register program
(the schedule graph, the false-dependence graph) can be compared
against graphs built over the allocated program — that comparison is
exactly how false dependences are detected (Lemma 1 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.ir.opcodes import Opcode, UnitKind
from repro.ir.operands import (
    Label,
    MemorySymbol,
    Operand,
    Register,
    is_register,
)
from repro.utils.errors import IRError

_UID_COUNTER = itertools.count()


class Instruction:
    """A single IR operation.

    Args:
        opcode: The operation.
        dests: Registers defined by the instruction.  Normally zero or
            one; calls may define several (the paper's Claim 1 treats a
            call as "a multiple register assignment").
        srcs: Source operands in positional order — registers,
            immediates or memory symbols.
        target: Branch-target label for control instructions.
        uid: Stable identity; allocated automatically when omitted and
            preserved by :meth:`rewrite_registers`.

    Instructions are hashable by identity (``uid``), so they can be
    used directly as graph nodes.
    """

    __slots__ = ("opcode", "dests", "srcs", "target", "uid")

    def __init__(
        self,
        opcode: Opcode,
        dests: Sequence[Register] = (),
        srcs: Sequence[Operand] = (),
        target: Optional[Label] = None,
        uid: Optional[int] = None,
    ) -> None:
        self.opcode = opcode
        self.dests: Tuple[Register, ...] = tuple(dests)
        self.srcs: Tuple[Operand, ...] = tuple(srcs)
        self.target = target
        self.uid = next(_UID_COUNTER) if uid is None else uid
        self._check_shape()

    def _check_shape(self) -> None:
        if self.opcode.has_dest and not self.dests:
            raise IRError(
                "{} must define a register".format(self.opcode.mnemonic)
            )
        if not self.opcode.has_dest and self.dests:
            raise IRError(
                "{} cannot define a register".format(self.opcode.mnemonic)
            )
        if self.opcode.is_branch and self.opcode is not Opcode.RET and self.target is None:
            raise IRError("{} needs a branch target".format(self.opcode.mnemonic))
        for dest in self.dests:
            if not is_register(dest):
                raise IRError("destination {!r} is not a register".format(dest))

    # ------------------------------------------------------------------
    # Operand views
    # ------------------------------------------------------------------

    @property
    def dest(self) -> Optional[Register]:
        """The single defined register, or ``None``.

        Raises:
            IRError: for multi-def instructions (calls); use
                :attr:`dests` there.
        """
        if len(self.dests) > 1:
            raise IRError("instruction defines multiple registers; use .dests")
        return self.dests[0] if self.dests else None

    def uses(self) -> Tuple[Register, ...]:
        """Registers read by this instruction, in positional order."""
        return tuple(src for src in self.srcs if is_register(src))

    def defs(self) -> Tuple[Register, ...]:
        """Registers written by this instruction."""
        return self.dests

    def memory_symbols(self) -> Tuple[MemorySymbol, ...]:
        """Memory symbols referenced (for memory disambiguation)."""
        return tuple(src for src in self.srcs if isinstance(src, MemorySymbol))

    @property
    def unit(self) -> UnitKind:
        return self.opcode.unit

    @property
    def latency(self) -> int:
        return self.opcode.latency

    @property
    def is_memory_access(self) -> bool:
        return self.unit is UnitKind.MEMORY

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------

    def rewrite_registers(self, mapping: Mapping[Register, Register]) -> "Instruction":
        """Return a copy with registers substituted through *mapping*.

        Registers absent from the mapping pass through unchanged.  The
        copy keeps this instruction's ``uid`` so dependence graphs of
        the rewritten program remain comparable with the original.
        """
        new_dests = tuple(mapping.get(d, d) for d in self.dests)
        new_srcs = tuple(
            mapping.get(s, s) if is_register(s) else s for s in self.srcs
        )
        return Instruction(
            self.opcode, new_dests, new_srcs, target=self.target, uid=self.uid
        )

    def copy(self, fresh_uid: bool = False) -> "Instruction":
        """Structural copy; keeps the uid unless *fresh_uid* is set."""
        return Instruction(
            self.opcode,
            self.dests,
            self.srcs,
            target=self.target,
            uid=None if fresh_uid else self.uid,
        )

    # ------------------------------------------------------------------
    # Identity and display
    # ------------------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return self.uid == other.uid

    def __str__(self) -> str:
        parts = []
        if self.dests:
            parts.append(", ".join(str(d) for d in self.dests))
            parts.append(":=")
        parts.append(self.opcode.mnemonic)
        operand_text = ", ".join(str(s) for s in self.srcs)
        if operand_text:
            parts.append(operand_text)
        if self.target is not None:
            parts.append(str(self.target))
        return " ".join(parts)

    def __repr__(self) -> str:
        return "<Instruction #{} {}>".format(self.uid, self)


def flow_sources(instructions: Iterable[Instruction]) -> Tuple[Register, ...]:
    """All registers used anywhere in *instructions* (helper for tests)."""
    seen = []
    seen_set = set()
    for instr in instructions:
        for reg in instr.uses():
            if reg not in seen_set:
                seen_set.add(reg)
                seen.append(reg)
    return tuple(seen)
