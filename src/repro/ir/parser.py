"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

Grammar (line-oriented)::

    program   := "func" NAME "{" line* "}"
    line      := block-head | instruction | edge | liveout
    block-head:= "block" NAME ":"
    edge      := "->" NAME ("," NAME)*
    instruction := [dests "="] MNEMONIC [operand ("," operand)*]
    dests     := REG ("," REG)*
    operand   := REG | INT | "@" NAME | "label" NAME
    REG       := "r" INT (physical) | IDENT (virtual)

Comments start with ``;`` or ``#`` and run to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import MNEMONIC_TO_OPCODE
from repro.ir.operands import (
    Immediate,
    Label,
    MemorySymbol,
    Operand,
    PhysicalRegister,
    Register,
    VirtualRegister,
)
from repro.utils.errors import IRError
from repro.utils.faults import trip

_PHYSICAL_RE = re.compile(r"^([rf])(\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")
_INT_RE = re.compile(r"^-?\d+$")


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def parse_register(token: str) -> Register:
    """``rN`` → physical register N; any other identifier → virtual."""
    token = token.strip()
    match = _PHYSICAL_RE.match(token)
    if match:
        return PhysicalRegister(int(match.group(2)), bank=match.group(1))
    if _IDENT_RE.match(token):
        return VirtualRegister(token)
    raise IRError("bad register token {!r}".format(token))


def _parse_operand(token: str) -> Tuple[Optional[Operand], Optional[Label]]:
    """Returns (operand, label) with exactly one non-None component."""
    token = token.strip()
    if token.startswith("label "):
        return None, Label(token[len("label "):].strip())
    if token.startswith("@"):
        return MemorySymbol(token[1:]), None
    if _INT_RE.match(token):
        return Immediate(int(token)), None
    return parse_register(token), None


def parse_instruction(line: str) -> Instruction:
    """Parse one instruction line (without the leading indentation)."""
    text = _strip_comment(line)
    if not text:
        raise IRError("empty instruction line")
    dests: List[Register] = []
    if "=" in text and not text.split("=", 1)[0].strip().startswith("label"):
        dest_text, text = text.split("=", 1)
        dests = [parse_register(t) for t in dest_text.split(",") if t.strip()]
        text = text.strip()
    parts = text.split(None, 1)
    mnemonic = parts[0]
    if mnemonic not in MNEMONIC_TO_OPCODE:
        raise IRError("unknown mnemonic {!r} in {!r}".format(mnemonic, line))
    opcode = MNEMONIC_TO_OPCODE[mnemonic]
    srcs: List[Operand] = []
    target: Optional[Label] = None
    if len(parts) > 1:
        for token in parts[1].split(","):
            token = token.strip()
            if not token:
                continue
            operand, label = _parse_operand(token)
            if label is not None:
                target = label
            else:
                srcs.append(operand)  # type: ignore[arg-type]
    return Instruction(opcode, dests, srcs, target=target)


def parse_function(text: str) -> Function:
    """Parse a full ``func`` definition.

    Raises:
        IRError: on any syntax problem; the message includes the line.
    """
    trip("ir.parse")
    lines = text.splitlines()
    fn: Optional[Function] = None
    current: Optional[BasicBlock] = None
    pending_edges: List[Tuple[str, str]] = []
    live_out_names: List[str] = []
    live_in_names: List[str] = []

    for raw in lines:
        line = _strip_comment(raw)
        if not line:
            continue
        if line.startswith("func"):
            match = re.match(r"func\s+([A-Za-z_][A-Za-z0-9_]*)\s*\{?", line)
            if not match:
                raise IRError("bad func header: {!r}".format(raw))
            fn = Function(match.group(1))
            continue
        if line == "}":
            break
        if fn is None:
            raise IRError("instruction before func header: {!r}".format(raw))
        if line.startswith("block"):
            match = re.match(r"block\s+([A-Za-z_][A-Za-z0-9_.]*)\s*:", line)
            if not match:
                raise IRError("bad block header: {!r}".format(raw))
            current = fn.new_block(match.group(1))
            continue
        if line.startswith("->"):
            if current is None:
                raise IRError("edge outside a block: {!r}".format(raw))
            for dst in line[2:].split(","):
                pending_edges.append((current.name, dst.strip()))
            continue
        if line.startswith("live-out:"):
            live_out_names = [
                t.strip() for t in line[len("live-out:"):].split(",") if t.strip()
            ]
            continue
        if line.startswith("live-in:"):
            live_in_names = [
                t.strip() for t in line[len("live-in:"):].split(",") if t.strip()
            ]
            continue
        if current is None:
            current = fn.new_block("entry")
        try:
            current.append(parse_instruction(line))
        except IRError as exc:
            raise IRError("{} (line {!r})".format(exc, raw)) from exc

    if fn is None:
        raise IRError("no func definition found")
    for src, dst in pending_edges:
        fn.add_edge(src, dst)
    fn.live_out = tuple(parse_register(name) for name in live_out_names)
    fn.live_in = tuple(parse_register(name) for name in live_in_names)
    return fn


def parse_block(text: str, name: str = "entry") -> BasicBlock:
    """Parse bare instruction lines into one block (test convenience)."""
    block = BasicBlock(name)
    for raw in text.splitlines():
        line = _strip_comment(raw)
        if line:
            block.append(parse_instruction(line))
    return block
