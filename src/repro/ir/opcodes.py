"""Opcode definitions for the RISC-style intermediate representation.

The paper assumes "a RISC type processor (memory reference instructions
are only load and store while computations are done in registers)".
Opcodes are grouped by the functional-unit *kind* that executes them,
which is what the machine model's contention constraints key on: the
motivating machines (MIPS R3000, IBM RISC System/6000) comprise fixed
point, floating point and branch units, plus a single fetch unit that
serializes memory references.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class UnitKind(enum.Enum):
    """The class of functional unit an instruction executes on."""

    FIXED = "fixed"
    FLOAT = "float"
    MEMORY = "memory"
    BRANCH = "branch"
    # A dedicated move/immediate port.  Machines that route register
    # moves and immediate loads away from the ALU (as the worked
    # Example 1 of the paper implicitly does) map MOV/LOADI here via
    # MachineDescription.unit_overrides.
    MOVE = "move"

    def __repr__(self) -> str:
        return "UnitKind.{}".format(self.name)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of an opcode.

    Attributes:
        mnemonic: Textual form used by the printer/parser.
        unit: Functional-unit kind the operation needs.
        latency: Default result latency in cycles (machine models may
            override per-opcode latencies).
        arity: Number of register/immediate source operands.
        has_dest: Whether the instruction defines a register.
        is_load: True for memory reads.
        is_store: True for memory writes.
        is_branch: True for control transfers (block terminators).
        is_call: True for calls (multi-def, see Claim 1 of the paper).
        commutative: True when source operand order is irrelevant.
    """

    mnemonic: str
    unit: UnitKind
    latency: int = 1
    arity: int = 2
    has_dest: bool = True
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_call: bool = False
    commutative: bool = False


class Opcode(enum.Enum):
    """All opcodes understood by the IR.

    The integer/float split mirrors the two arithmetic units of the
    paper's worked Example 2 ("a processor with two arithmetic units
    (fixed-point and floating-point)").
    """

    # Fixed-point arithmetic.
    ADD = OpcodeInfo("add", UnitKind.FIXED, commutative=True)
    SUB = OpcodeInfo("sub", UnitKind.FIXED)
    MUL = OpcodeInfo("mul", UnitKind.FIXED, latency=2, commutative=True)
    DIV = OpcodeInfo("div", UnitKind.FIXED, latency=8)
    AND = OpcodeInfo("and", UnitKind.FIXED, commutative=True)
    OR = OpcodeInfo("or", UnitKind.FIXED, commutative=True)
    XOR = OpcodeInfo("xor", UnitKind.FIXED, commutative=True)
    SHL = OpcodeInfo("shl", UnitKind.FIXED)
    SHR = OpcodeInfo("shr", UnitKind.FIXED)
    CMP = OpcodeInfo("cmp", UnitKind.FIXED)
    MOD = OpcodeInfo("mod", UnitKind.FIXED, latency=8)
    # MIPS-style set-on-compare: dest := 1 if the relation holds else 0.
    SLT = OpcodeInfo("slt", UnitKind.FIXED)
    SLE = OpcodeInfo("sle", UnitKind.FIXED)
    SGT = OpcodeInfo("sgt", UnitKind.FIXED)
    SGE = OpcodeInfo("sge", UnitKind.FIXED)
    SEQ = OpcodeInfo("seq", UnitKind.FIXED, commutative=True)
    SNE = OpcodeInfo("sne", UnitKind.FIXED, commutative=True)
    # Fixed-point multiply-add: one instruction, as in the paper's
    # Example 1 where "s5 := s3*5+s1" compiles to a single operation.
    MADD = OpcodeInfo("madd", UnitKind.FIXED, latency=2, arity=3)
    MOV = OpcodeInfo("mov", UnitKind.FIXED, arity=1)
    LOADI = OpcodeInfo("loadi", UnitKind.FIXED, arity=1)

    # Floating-point arithmetic.
    FADD = OpcodeInfo("fadd", UnitKind.FLOAT, latency=2, commutative=True)
    FSUB = OpcodeInfo("fsub", UnitKind.FLOAT, latency=2)
    FMUL = OpcodeInfo("fmul", UnitKind.FLOAT, latency=3, commutative=True)
    FDIV = OpcodeInfo("fdiv", UnitKind.FLOAT, latency=12)
    FMA = OpcodeInfo("fma", UnitKind.FLOAT, latency=3, arity=3)

    # Memory (the RISC model's only memory references).
    LOAD = OpcodeInfo("load", UnitKind.MEMORY, latency=2, arity=1)
    STORE = OpcodeInfo(
        "store", UnitKind.MEMORY, arity=2, has_dest=False, is_store=True
    )
    FLOAD = OpcodeInfo("fload", UnitKind.MEMORY, latency=2, arity=1)
    FSTORE = OpcodeInfo(
        "fstore", UnitKind.MEMORY, arity=2, has_dest=False, is_store=True
    )

    # Control.
    BR = OpcodeInfo("br", UnitKind.BRANCH, arity=0, has_dest=False, is_branch=True)
    CBR = OpcodeInfo("cbr", UnitKind.BRANCH, arity=1, has_dest=False, is_branch=True)
    RET = OpcodeInfo("ret", UnitKind.BRANCH, arity=0, has_dest=False, is_branch=True)
    CALL = OpcodeInfo("call", UnitKind.BRANCH, arity=0, is_call=True)

    # Pseudo-op: marks a value live-out of the fragment (keeps the live
    # interval open to the end of the block without touching memory).
    USE = OpcodeInfo("use", UnitKind.FIXED, arity=1, has_dest=False)

    @property
    def info(self) -> OpcodeInfo:
        return self.value

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic

    @property
    def unit(self) -> UnitKind:
        return self.value.unit

    @property
    def latency(self) -> int:
        return self.value.latency

    @property
    def has_dest(self) -> bool:
        return self.value.has_dest

    @property
    def is_load(self) -> bool:
        # LOAD/FLOAD carry is_load semantics; flagging via unit+has_dest
        # keeps OpcodeInfo defaults terse.
        return self.value.unit is UnitKind.MEMORY and self.value.has_dest

    @property
    def is_store(self) -> bool:
        return self.value.is_store

    @property
    def is_branch(self) -> bool:
        return self.value.is_branch

    @property
    def is_call(self) -> bool:
        return self.value.is_call

    @property
    def commutative(self) -> bool:
        return self.value.commutative

    def __repr__(self) -> str:
        return "Opcode.{}".format(self.name)


MNEMONIC_TO_OPCODE: Dict[str, Opcode] = {op.mnemonic: op for op in Opcode}


def opcode_from_mnemonic(mnemonic: str) -> Opcode:
    """Look up an opcode by its textual mnemonic.

    Raises:
        KeyError: if the mnemonic names no opcode.
    """
    return MNEMONIC_TO_OPCODE[mnemonic]
