"""Basic blocks: maximal straight-line instruction sequences.

The paper's core construction is per basic block ("For a given basic
block define the false dependence undirected graph ..."), with Section
3's extension handling inter-block regions.  A block owns an ordered
instruction list; reordering a block (pre-scheduling, final
scheduling) permutes this list in place.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.ir.instructions import Instruction
from repro.ir.operands import Register
from repro.utils.errors import IRError


class BasicBlock:
    """An ordered sequence of instructions with a single entry and exit.

    Blocks are hashable by name (unique within a function).
    """

    __slots__ = ("name", "instructions")

    def __init__(self, name: str, instructions: Iterable[Instruction] = ()) -> None:
        self.name = name
        self.instructions: List[Instruction] = list(instructions)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, instr: Instruction) -> Instruction:
        """Append *instr*, keeping any terminator last.

        Raises:
            IRError: when appending a non-branch after a terminator.
        """
        if self.terminator is not None and not instr.opcode.is_branch:
            raise IRError(
                "block {!r} already has a terminator; cannot append {}".format(
                    self.name, instr
                )
            )
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> None:
        self.instructions.insert(index, instr)

    def reorder(self, new_order: Sequence[Instruction]) -> None:
        """Replace the instruction order with *new_order*.

        The new order must be a permutation of the current instructions
        and must keep the terminator (if any) last.
        """
        if sorted(i.uid for i in new_order) != sorted(i.uid for i in self.instructions):
            raise IRError(
                "reorder of block {!r} is not a permutation".format(self.name)
            )
        if new_order and any(i.opcode.is_branch for i in new_order[:-1]):
            raise IRError(
                "reorder of block {!r} puts a branch before the end".format(self.name)
            )
        self.instructions = list(new_order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The trailing branch instruction, if present."""
        if self.instructions and self.instructions[-1].opcode.is_branch:
            return self.instructions[-1]
        return None

    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def defined_registers(self) -> List[Register]:
        """Registers defined in this block, in definition order."""
        result: List[Register] = []
        seen = set()
        for instr in self.instructions:
            for reg in instr.defs():
                if reg not in seen:
                    seen.add(reg)
                    result.append(reg)
        return result

    def used_registers(self) -> List[Register]:
        """Registers used in this block, in first-use order."""
        result: List[Register] = []
        seen = set()
        for instr in self.instructions:
            for reg in instr.uses():
                if reg not in seen:
                    seen.add(reg)
                    result.append(reg)
        return result

    def index_of(self, instr: Instruction) -> int:
        """Position of *instr* in the block (matched by uid)."""
        for idx, candidate in enumerate(self.instructions):
            if candidate.uid == instr.uid:
                return idx
        raise IRError(
            "instruction #{} not in block {!r}".format(instr.uid, self.name)
        )

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasicBlock):
            return NotImplemented
        return self.name == other.name

    def __str__(self) -> str:
        lines = ["{}:".format(self.name)]
        lines.extend("  {}".format(instr) for instr in self.instructions)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<BasicBlock {!r} ({} instrs)>".format(self.name, len(self))
