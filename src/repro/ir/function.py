"""Functions: control-flow graphs of basic blocks.

A :class:`Function` owns an ordered collection of blocks plus the CFG
edge set.  Block order is the *layout* order (the sequential input
order the paper's interference graph is relative to); CFG edges carry
the control dependences used by the global schedule graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.operands import Register, VirtualRegister
from repro.utils.errors import IRError


class Function:
    """A named CFG of basic blocks.

    Args:
        name: Function name.
        live_out: Registers whose values are live on exit from the
            function (the paper's examples hinge on this: "if we assume
            that no value is live on the entrance and exit from the code
            fragment ... only three registers are needed").
        live_in: Registers holding values on entry (defined by the
            caller/environment); they may be used before any local
            definition.
    """

    def __init__(
        self,
        name: str,
        live_out: Tuple[Register, ...] = (),
        live_in: Tuple[Register, ...] = (),
    ) -> None:
        self.name = name
        self.live_out: Tuple[Register, ...] = tuple(live_out)
        self.live_in: Tuple[Register, ...] = tuple(live_in)
        self._blocks: Dict[str, BasicBlock] = {}
        self._successors: Dict[str, List[str]] = {}
        self._predecessors: Dict[str, List[str]] = {}
        self._entry: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_block(self, block: BasicBlock, entry: bool = False) -> BasicBlock:
        if block.name in self._blocks:
            raise IRError("duplicate block name {!r}".format(block.name))
        self._blocks[block.name] = block
        self._successors[block.name] = []
        self._predecessors[block.name] = []
        if entry or self._entry is None:
            self._entry = block.name
        return block

    def new_block(self, name: str, entry: bool = False) -> BasicBlock:
        return self.add_block(BasicBlock(name), entry=entry)

    def add_edge(self, src: str, dst: str) -> None:
        """Add a CFG edge between named blocks."""
        if src not in self._blocks:
            raise IRError("unknown source block {!r}".format(src))
        if dst not in self._blocks:
            raise IRError("unknown destination block {!r}".format(dst))
        if dst not in self._successors[src]:
            self._successors[src].append(dst)
            self._predecessors[dst].append(src)

    def remove_edge(self, src: str, dst: str) -> None:
        self._successors[src].remove(dst)
        self._predecessors[dst].remove(src)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if self._entry is None:
            raise IRError("function {!r} has no blocks".format(self.name))
        return self._blocks[self._entry]

    def block(self, name: str) -> BasicBlock:
        try:
            return self._blocks[name]
        except KeyError:
            raise IRError(
                "function {!r} has no block {!r}".format(self.name, name)
            ) from None

    def blocks(self) -> List[BasicBlock]:
        """Blocks in layout order."""
        return list(self._blocks.values())

    def block_names(self) -> List[str]:
        return list(self._blocks.keys())

    def successors(self, block: BasicBlock) -> List[BasicBlock]:
        return [self._blocks[n] for n in self._successors[block.name]]

    def predecessors(self, block: BasicBlock) -> List[BasicBlock]:
        return [self._blocks[n] for n in self._predecessors[block.name]]

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks with no CFG successors."""
        return [b for b in self.blocks() if not self._successors[b.name]]

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in layout order."""
        for block in self.blocks():
            yield from block

    def defining_block(self, reg: Register) -> List[BasicBlock]:
        """Blocks containing a definition of *reg*."""
        return [
            block
            for block in self.blocks()
            if any(reg in instr.defs() for instr in block)
        ]

    def virtual_registers(self) -> List[VirtualRegister]:
        """All virtual registers mentioned, in first-appearance order."""
        result: List[VirtualRegister] = []
        seen = set()
        for instr in self.instructions():
            for reg in list(instr.defs()) + list(instr.uses()):
                if isinstance(reg, VirtualRegister) and reg not in seen:
                    seen.add(reg)
                    result.append(reg)
        return result

    def is_single_block(self) -> bool:
        return len(self._blocks) == 1

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def map_instructions(self, fn) -> "Function":
        """Return a new function with *fn* applied to every instruction.

        *fn* receives an :class:`Instruction` and returns its
        replacement (possibly the same object).  CFG structure,
        live-out set and block order are preserved.
        """
        result = Function(self.name, live_out=self.live_out, live_in=self.live_in)
        for block in self.blocks():
            new_block = BasicBlock(block.name, [fn(i) for i in block])
            result.add_block(new_block, entry=(block.name == self._entry))
        for src, dsts in self._successors.items():
            for dst in dsts:
                result.add_edge(src, dst)
        return result

    def rewrite_registers(self, mapping) -> "Function":
        """Return a copy with registers substituted through *mapping*."""
        rewritten = self.map_instructions(
            lambda instr: instr.rewrite_registers(mapping)
        )
        rewritten.live_out = tuple(mapping.get(r, r) for r in self.live_out)
        rewritten.live_in = tuple(mapping.get(r, r) for r in self.live_in)
        return rewritten

    def copy(self) -> "Function":
        return self.map_instructions(lambda instr: instr.copy())

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __str__(self) -> str:
        lines = ["func {} {{".format(self.name)]
        for block in self.blocks():
            succ = self._successors[block.name]
            header = "block {}:".format(block.name)
            if succ:
                header += "    ; -> {}".format(", ".join(succ))
            lines.append(header)
            lines.extend("  {}".format(instr) for instr in block)
        if self.live_out:
            lines.append("  ; live-out: {}".format(
                ", ".join(str(r) for r in self.live_out)
            ))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<Function {!r} ({} blocks)>".format(self.name, len(self))


def single_block_function(
    name: str,
    instructions,
    live_out: Tuple[Register, ...] = (),
    live_in: Tuple[Register, ...] = (),
) -> Function:
    """Convenience: wrap a straight-line instruction list in a Function."""
    fn = Function(name, live_out=live_out, live_in=live_in)
    block = BasicBlock("entry", instructions)
    fn.add_block(block, entry=True)
    return fn
