"""Operand types: symbolic (virtual) registers, physical registers,
immediates, memory symbols and labels.

The source program is translated into register-based intermediate code
"where an infinite number of symbolic registers is assumed (one
symbolic register per value)".  :class:`VirtualRegister` models those
symbolic registers; :class:`PhysicalRegister` models the machine's
finite register file that allocation maps onto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class VirtualRegister:
    """A symbolic register: one per value, never redefined in a block.

    Ordering/equality is by name, so virtual registers behave as
    lightweight interned names.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "VirtualRegister({!r})".format(self.name)


@dataclass(frozen=True, order=True)
class PhysicalRegister:
    """A machine register: an index within a register bank.

    The default bank ``"r"`` is the unified file the paper's examples
    use; machines with split fixed/floating-point files (the banked
    extension) add an ``"f"`` bank.
    """

    index: int
    bank: str = "r"

    def __str__(self) -> str:
        return "{}{}".format(self.bank, self.index)

    def __repr__(self) -> str:
        if self.bank == "r":
            return "PhysicalRegister({})".format(self.index)
        return "PhysicalRegister({}, bank={!r})".format(self.index, self.bank)


Register = Union[VirtualRegister, PhysicalRegister]


@dataclass(frozen=True, order=True)
class Immediate:
    """A compile-time constant source operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return "Immediate({})".format(self.value)


@dataclass(frozen=True, order=True)
class MemorySymbol:
    """A named memory location (global variable or spill slot).

    Loads and stores reference memory either through a symbol (``@x``)
    or through an address held in a register; the symbol form keeps the
    worked examples from the paper (``load z``, ``a[i]``) readable.
    """

    name: str

    def __str__(self) -> str:
        return "@{}".format(self.name)

    def __repr__(self) -> str:
        return "MemorySymbol({!r})".format(self.name)


@dataclass(frozen=True, order=True)
class Label:
    """A basic-block label used as a branch target."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "Label({!r})".format(self.name)


Operand = Union[VirtualRegister, PhysicalRegister, Immediate, MemorySymbol, Label]


def is_register(operand: object) -> bool:
    """True when *operand* is a virtual or physical register."""
    return isinstance(operand, (VirtualRegister, PhysicalRegister))
