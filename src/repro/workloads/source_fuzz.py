"""Random source-program generation (frontend fuzzing).

Emits *text* in the mini source language — so the lexer and parser are
fuzzed together with lowering, optimization and allocation.  Programs
are guaranteed well-formed and terminating:

* every variable is defined before use on every path (if/else arms
  assign the same new variables);
* loops are counter-bounded (``i = 0; while (i < K) {...; i = i + 1;}``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SourceFuzzConfig:
    """Shape of one random source program."""

    num_inputs: int = 3
    num_statements: int = 8
    max_depth: int = 2
    if_probability: float = 0.25
    while_probability: float = 0.15
    float_probability: float = 0.2
    seed: int = 0


_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^"]
_FLOAT_BINOPS = ["+", "-", "*"]
_CMPOPS = ["<", ">", "<=", ">=", "==", "!="]


class _SourceFuzzer:
    def __init__(self, config: SourceFuzzConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.counter = 0
        self.lines: List[str] = []

    def fresh_name(self) -> str:
        self.counter += 1
        return "v{}".format(self.counter)

    def expression(self, variables: List[str], depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.config.max_depth or rng.random() < 0.35:
            if variables and rng.random() < 0.75:
                return rng.choice(variables)
            if rng.random() < self.config.float_probability:
                return "{}.0f".format(rng.randrange(1, 9))
            return str(rng.randrange(0, 17))
        left = self.expression(variables, depth + 1)
        right = self.expression(variables, depth + 1)
        op = rng.choice(_BINOPS)
        # Division/modulo by an expression may hit zero; the IR defines
        # x/0 = 0, so it is safe — but biasing to nonzero literals keeps
        # outputs interesting.
        if op in ("/", "%") and right == "0":
            right = str(rng.randrange(1, 9))
        return "({} {} {})".format(left, op, right)

    def condition(self, variables: List[str]) -> str:
        left = self.expression(variables, self.config.max_depth - 1)
        right = self.expression(variables, self.config.max_depth - 1)
        return "{} {} {}".format(left, self.rng.choice(_CMPOPS), right)

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def statements(
        self, variables: List[str], budget: int, indent: int, depth: int
    ) -> List[str]:
        """Emit up to *budget* statements; returns variables defined at
        this level (callers may use them afterwards)."""
        rng = self.rng
        defined = list(variables)
        remaining = budget
        while remaining > 0:
            roll = rng.random()
            if (
                roll < self.config.if_probability
                and depth < 2
                and remaining >= 3
            ):
                name = self.fresh_name()
                self.emit(indent, "if ({}) {{".format(self.condition(defined)))
                inner = self.statements(defined, remaining // 3, indent + 1, depth + 1)
                self.emit(
                    indent + 1,
                    "{} = {};".format(name, self.expression(inner)),
                )
                self.emit(indent, "} else {")
                inner = self.statements(defined, remaining // 3, indent + 1, depth + 1)
                self.emit(
                    indent + 1,
                    "{} = {};".format(name, self.expression(inner)),
                )
                self.emit(indent, "}")
                defined.append(name)
                remaining -= 3
            elif (
                roll < self.config.if_probability + self.config.while_probability
                and depth < 1
                and remaining >= 4
            ):
                counter = self.fresh_name()
                acc = self.fresh_name()
                bound = rng.randrange(1, 5)
                self.emit(indent, "{} = 0;".format(counter))
                self.emit(
                    indent, "{} = {};".format(acc, self.expression(defined))
                )
                self.emit(
                    indent,
                    "while ({} < {}) {{".format(counter, bound),
                )
                self.emit(
                    indent + 1,
                    "{} = {} + {};".format(
                        acc, acc, self.expression(defined + [counter])
                    ),
                )
                self.emit(
                    indent + 1, "{} = {} + 1;".format(counter, counter)
                )
                self.emit(indent, "}")
                defined.extend([counter, acc])
                remaining -= 4
            else:
                name = self.fresh_name()
                self.emit(
                    indent,
                    "{} = {};".format(name, self.expression(defined)),
                )
                defined.append(name)
                remaining -= 1
        return defined

    def generate(self) -> str:
        inputs = ["in{}".format(i) for i in range(self.config.num_inputs)]
        self.emit(0, "input {};".format(", ".join(inputs)))
        defined = self.statements(
            inputs, self.config.num_statements, 0, depth=0
        )
        outputs = self.rng.sample(
            defined, k=min(2, len(defined))
        )
        self.emit(0, "output {};".format(", ".join(outputs)))
        return "\n".join(self.lines)


def random_source(config: SourceFuzzConfig) -> str:
    """Generate one random source program (deterministic per seed)."""
    return _SourceFuzzer(config).generate()


def random_input_memory(config: SourceFuzzConfig, case: int = 0) -> dict:
    """A deterministic input-memory binding for the generated program."""
    rng = random.Random("{}:{}".format(config.seed, case))
    return {
        "in{}".format(i): rng.randrange(0, 50)
        for i in range(config.num_inputs)
    }
