"""Parameterized random-program generation for the evaluation sweeps.

The generators are seeded and fully deterministic.  A random block is
grown value by value: each new instruction draws its operands from a
sliding window of recent values, so *fan_in*, *window* and the
unit-kind mix control dependence-DAG shape (deep chains vs. wide
independent strands), which in turn controls both the available
parallelism (|E_f|) and the register pressure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.ir.builder import BlockBuilder, FunctionBuilder
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operands import VirtualRegister

#: Fixed-point binary opcodes drawn for arithmetic instructions.
FIXED_OPS = (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR)
FLOAT_OPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL)


@dataclass(frozen=True)
class RandomBlockConfig:
    """Shape parameters for one random basic block.

    Attributes:
        size: Number of instructions.
        load_fraction: Probability a new instruction is a load (fresh
            value with no register inputs) rather than arithmetic.
        float_fraction: Probability an arithmetic op is floating point.
        store_fraction: Probability of emitting a store after a value
            (ends a live range; adds memory ordering).
        window: How far back operands may reach; small windows produce
            chains, large windows produce wide reuse and pressure.
        live_out_count: How many of the final values stay live-out.
        seed: RNG seed.
    """

    size: int = 20
    load_fraction: float = 0.3
    float_fraction: float = 0.3
    store_fraction: float = 0.05
    window: int = 8
    live_out_count: int = 2
    seed: int = 0

    def describe(self) -> str:
        return (
            "size={} loads={:.0%} floats={:.0%} window={} seed={}".format(
                self.size,
                self.load_fraction,
                self.float_fraction,
                self.window,
                self.seed,
            )
        )


def random_block(config: RandomBlockConfig) -> Function:
    """Generate one straight-line function from *config*."""
    rng = random.Random(config.seed)
    b = BlockBuilder()
    values: List[VirtualRegister] = []
    float_values: List[bool] = []
    symbol_counter = 0

    def fresh_symbol() -> str:
        nonlocal symbol_counter
        symbol_counter += 1
        return "g{}".format(symbol_counter)

    emitted = 0
    while emitted < config.size:
        roll = rng.random()
        window_lo = max(0, len(values) - config.window)
        candidates = list(range(window_lo, len(values)))
        if roll < config.load_fraction or len(candidates) < 1:
            is_float = rng.random() < config.float_fraction
            reg = (
                b.fload(fresh_symbol())
                if is_float
                else b.load(fresh_symbol())
            )
            values.append(reg)
            float_values.append(is_float)
            emitted += 1
            continue
        if roll < config.load_fraction + config.store_fraction and candidates:
            idx = rng.choice(candidates)
            if float_values[idx]:
                b.fstore(values[idx], fresh_symbol())
            else:
                b.store(values[idx], fresh_symbol())
            emitted += 1
            continue
        # Arithmetic over one or two recent values.
        idx_a = rng.choice(candidates)
        idx_b = rng.choice(candidates)
        is_float = float_values[idx_a] or float_values[idx_b]
        opcode = rng.choice(FLOAT_OPS if is_float else FIXED_OPS)
        reg = b.emit(opcode, (values[idx_a], values[idx_b]))
        values.append(reg)
        float_values.append(is_float)
        emitted += 1

    live_out = values[-config.live_out_count:] if config.live_out_count else []
    return b.function(
        "random-{}".format(config.seed), live_out=live_out
    )


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the evaluation grid."""

    label: str
    config: RandomBlockConfig


def pressure_sweep(
    sizes: Sequence[int] = (12, 24, 48),
    windows: Sequence[int] = (3, 8, 16),
    seeds: Sequence[int] = (1, 2, 3),
) -> List[SweepPoint]:
    """The grid used by the strategy-comparison bench: block size ×
    operand window (pressure) × seed."""
    points = []
    for size in sizes:
        for window in windows:
            for seed in seeds:
                points.append(
                    SweepPoint(
                        label="n{}w{}s{}".format(size, window, seed),
                        config=RandomBlockConfig(
                            size=size, window=window, seed=seed
                        ),
                    )
                )
    return points


def adversarial_serial_order(config: RandomBlockConfig) -> Function:
    """A random block whose *input order* interleaves independent
    chains as badly as possible for an order-sensitive allocator: all
    loads first, then all arithmetic (maximizing simultaneous live
    ranges).  Used by the pre-scheduling ablation."""
    fn = random_block(config)
    block = fn.entry
    loads = [i for i in block if i.opcode.is_load]
    rest = [i for i in block if not i.opcode.is_load]
    block.reorder(loads + rest)
    return fn


def diamond_chain(
    num_diamonds: int = 2,
    block_size: int = 6,
    seed: int = 0,
) -> Function:
    """A chain of if-then-else diamonds with straight-line glue blocks —
    the multi-block workload for the global/region experiments.

    Each diamond defines a variable in both arms (web-merge material)
    and the glue blocks carry values across the joins.
    """
    rng = random.Random(seed)
    fb = FunctionBuilder("diamonds-{}".format(seed))
    carried: Optional[VirtualRegister] = None

    entry = fb.block("entry", entry=True)
    base = entry.load("input")
    carried = base
    previous = "entry"

    for d in range(num_diamonds):
        head = "head{}".format(d)
        left = "left{}".format(d)
        right = "right{}".format(d)
        join = "join{}".format(d)

        hb = fb.block(head)
        cond = hb.cmp(carried, rng.randrange(1, 10))
        hb.cbr(cond, left)
        fb.edge(previous, head)

        merged = VirtualRegister("m{}".format(d))
        lb = fb.block(left)
        acc = carried
        for _ in range(block_size // 2):
            acc = lb.add(acc, rng.randrange(1, 5))
        lb.emit(Opcode.MOV, (acc,), dest=merged)
        lb.br(join)

        rb = fb.block(right)
        acc = carried
        for _ in range(block_size // 2):
            acc = rb.mul(acc, rng.randrange(2, 4))
        rb.emit(Opcode.MOV, (acc,), dest=merged)
        rb.br(join)

        jb = fb.block(join)
        carried = jb.add(merged, carried)

        fb.edge(head, left)
        fb.edge(head, right)
        fb.edge(left, join)
        fb.edge(right, join)
        previous = join

    tail = fb.block("tail")
    result = tail.add(carried, carried)
    tail.ret()
    fb.edge(previous, "tail")
    return fb.function(live_out=[result])
