"""The paper's worked examples, verbatim.

Example 1 (Section 1): the motivating five-instruction fragment for
``x := a[i]; y := x+x; z := x*5+x`` — with its naive three-register
allocation (c) that introduces the false dependence between the second
and fourth instructions, and the paper's alternative allocation that
uses three registers with no false dependence.

Example 2 (Section 3): the nine-instruction mixed fixed/float fragment
whose classic interference graph is 3-colorable (Figure 4) while the
parallelizable interference graph needs 4 registers, with the concrete
assignment of Figure 5.

Figure 6: three live intervals of one variable combined at a single
use point — the right-number-of-names scenario.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.builder import BlockBuilder, FunctionBuilder
from repro.ir.opcodes import Opcode
from repro.ir.function import Function
from repro.ir.operands import VirtualRegister
from repro.machine.model import MachineDescription
from repro.machine.presets import example1_machine, two_unit_superscalar


def example1() -> Function:
    """Example 1(b): the fragment with symbolic registers.

    ::

        s1 := load z
        s2 := i
        s3 := a[s2]
        s4 := s1 + s1
        s5 := s3*5 + s1

    ``s4`` and ``s5`` (the values of ``y`` and ``z``) are live-out.
    """
    b = BlockBuilder()
    s1 = b.load("z")
    s2 = b.mov(VirtualRegister("i"))
    s3 = b.load_indexed("a", s2)
    s4 = b.add(s1, s1)
    s5 = b.madd(s3, 5, s1)
    return b.function("example1", live_out=[s4, s5], live_in=[VirtualRegister("i")])


def example1_machine_model() -> MachineDescription:
    """The machine implied by Figure 2(b)'s constraint edges."""
    return example1_machine()


def example1_naive_mapping() -> Dict[str, str]:
    """The allocation of Example 1(c): ``s1→r1, s2→r2, s3→r3, s4→r2,
    s5→r1`` — three registers, but reusing r2 for s4 creates the false
    dependence between the second and fourth instructions."""
    return {"s1": "r1", "s2": "r2", "s3": "r3", "s4": "r2", "s5": "r1"}


def example1_good_mapping() -> Dict[str, str]:
    """The paper's alternative: ``s1→r1, s2→r2, s3→r2, s4→r3, s5→r2``
    — still three registers and no false dependence, so the second and
    fourth instructions "can be executed simultaneously"."""
    return {"s1": "r1", "s2": "r2", "s3": "r2", "s4": "r3", "s5": "r2"}


def example2() -> Function:
    """Example 2 (Section 3)::

        s1 := load z (fixed)     s6 := load x (float)
        s2 := load y (fixed)     s7 := load w (float)
        s3 := s1 + s2            s8 := s7 * s6
        s4 := s1 * s2            s9 := s5 + s8
        s5 := s3 + s4

    Nothing is live on entry or exit ("if we assume that no value is
    live on the entrance and exit from the code fragment").
    """
    b = BlockBuilder()
    s1 = b.load("z")
    s2 = b.load("y")
    s3 = b.add(s1, s2)
    s4 = b.mul(s1, s2)
    s5 = b.add(s3, s4)
    s6 = b.fload("x")
    s7 = b.fload("w")
    s8 = b.fmul(s7, s6)
    b.fadd(s5, s8)
    return b.function("example2")


def example2_machine_model() -> MachineDescription:
    """Example 2's processor: one fixed-point, one floating-point and
    one fetch unit."""
    return two_unit_superscalar()


def figure5_mapping() -> Dict[str, str]:
    """Figure 5's four-register assignment for Example 2::

        r1 := load z        r1 := load x
        r2 := load y        r4 := load w
        r3 := r1 + r2       r4 := r1 * r4
        r2 := r1 * r2       r1 := r3 + r4
        r3 := r3 + r2
    """
    return {
        "s1": "r1",
        "s2": "r2",
        "s3": "r3",
        "s4": "r2",
        "s5": "r3",
        "s6": "r1",
        "s7": "r4",
        "s8": "r4",
        "s9": "r1",
    }


def figure6_diamond() -> Function:
    """A CFG realizing Figure 6: the variable ``x`` is defined in both
    branches of a conditional (and once before it), and a single use
    point after the join consumes whichever definition arrived — three
    def-use chains reaching one use, which web construction must merge
    into a single node."""
    fb = FunctionBuilder("figure6")
    entry = fb.block("entry", entry=True)
    x = VirtualRegister("x")
    cond = entry.load("p", name="cond")
    entry.emit(Opcode.LOADI, (1,), dest=x)  # x := 1 before the branch
    entry.cbr(cond, "left")

    left = fb.block("left")
    left.emit(Opcode.LOADI, (2,), dest=x)
    left.br("join")

    right = fb.block("right")
    right.emit(Opcode.LOADI, (3,), dest=x)
    right.br("join")

    join = fb.block("join")
    result = join.add(x, 0, name="result")
    join.ret()

    fb.edge("entry", "left")
    fb.edge("entry", "right")
    fb.edge("left", "join")
    fb.edge("right", "join")
    return fb.function(live_out=[result])


def apply_name_mapping(fn: Function, mapping: Dict[str, str]) -> Function:
    """Rewrite *fn* by register name (for the hand-written paper
    mappings, where names are unique)."""
    from repro.ir.operands import Register
    from repro.ir.parser import parse_register

    replacements: Dict[Register, Register] = {
        VirtualRegister(sym): parse_register(phys)
        for sym, phys in mapping.items()
    }
    return fn.rewrite_registers(replacements)
