"""Hand-written kernel workloads.

These are the loop bodies the paper's motivation targets — numeric
kernels with a mix of memory traffic, fixed- and floating-point work,
and tunable parallelism.  Each returns a single-block symbolic-register
:class:`~repro.ir.function.Function` (an unrolled/straightened loop
body, the unit both allocators operate on).
"""

from __future__ import annotations

from typing import List

from repro.ir.builder import BlockBuilder
from repro.ir.function import Function


def dot_product(n: int = 4) -> Function:
    """An unrolled dot-product step: ``acc = Σ a[i] * b[i]``.

    The multiplies are mutually independent (good dual-issue material);
    the reduction tree serializes at the end — classic crossover
    workload between parallelism and pressure.
    """
    b = BlockBuilder()
    products = []
    for i in range(n):
        a = b.fload("a{}".format(i))
        v = b.fload("b{}".format(i))
        products.append(b.fmul(a, v))
    acc = products[0]
    for p in products[1:]:
        acc = b.fadd(acc, p)
    return b.function("dot{}".format(n), live_out=[acc])


def fir_filter(taps: int = 4) -> Function:
    """One FIR output: ``y = Σ c[k] * x[n-k]`` with coefficients kept
    in registers — higher pressure than :func:`dot_product` because
    every coefficient stays live across the whole body."""
    b = BlockBuilder()
    coeffs = [b.fload("c{}".format(k)) for k in range(taps)]
    samples = [b.fload("x{}".format(k)) for k in range(taps)]
    acc = b.fmul(coeffs[0], samples[0])
    for k in range(1, taps):
        term = b.fmul(coeffs[k], samples[k])
        acc = b.fadd(acc, term)
    out = acc
    b.fstore(out, "y")
    return b.function("fir{}".format(taps), live_out=[out])


def matmul_tile(size: int = 2) -> Function:
    """A ``size × size`` matrix-multiply tile: loads both tiles, forms
    all products, reduces each output element.  Wide independent
    reductions — the highest-ILP kernel here."""
    b = BlockBuilder()
    a = {}
    c = {}
    for i in range(size):
        for j in range(size):
            a[(i, j)] = b.fload("a{}{}".format(i, j))
            c[(i, j)] = b.fload("b{}{}".format(i, j))
    outs = []
    for i in range(size):
        for j in range(size):
            acc = None
            for k in range(size):
                prod = b.fmul(a[(i, k)], c[(k, j)])
                acc = prod if acc is None else b.fadd(acc, prod)
            b.fstore(acc, "c{}{}".format(i, j))
            outs.append(acc)
    return b.function("mm{}".format(size))


def horner(degree: int = 6) -> Function:
    """Horner polynomial evaluation — a pure serial chain (zero ILP).

    The degenerate case: E_f between chain elements is empty, so the
    parallelizable interference graph equals the interference graph
    and the combined allocator should cost nothing extra.
    """
    b = BlockBuilder()
    x = b.fload("x")
    acc = b.fload("c{}".format(degree))
    for k in range(degree - 1, -1, -1):
        c = b.fload("c{}".format(k))
        t = b.fmul(acc, x)
        acc = b.fadd(t, c)
    return b.function("horner{}".format(degree), live_out=[acc])


def estrin(degree: int = 7) -> Function:
    """Estrin's scheme for the same polynomial — a balanced tree with
    log-depth; the parallel twin of :func:`horner` for the ablations."""
    b = BlockBuilder()
    x = b.fload("x")
    coeffs = [b.fload("c{}".format(k)) for k in range(degree + 1)]
    powers = {1: x}
    p = x
    width = 2
    while width <= degree:
        p = b.fmul(p, p)
        powers[width] = p
        width *= 2

    def combine(terms: List) -> object:
        level = 1
        current = terms
        while len(current) > 1:
            nxt = []
            for i in range(0, len(current) - 1, 2):
                hi = b.fmul(current[i + 1], powers[level])
                nxt.append(b.fadd(current[i], hi))
            if len(current) % 2:
                nxt.append(current[-1])
            current = nxt
            level *= 2
        return current[0]

    result = combine(coeffs)
    return b.function("estrin{}".format(degree), live_out=[result])


def stencil3() -> Function:
    """A 3-point stencil step mixing fixed-point index math with
    floating-point data — exercises both arithmetic units plus the
    fetch unit, like the paper's Example 2."""
    b = BlockBuilder()
    i = b.load("i")
    im1 = b.sub(i, 1)
    ip1 = b.add(i, 1)
    left = b.load_indexed("u", im1)
    mid = b.load_indexed("u", i)
    right = b.load_indexed("u", ip1)
    two_mid = b.add(mid, mid)
    lap = b.sub(left, two_mid)
    lap2 = b.add(lap, right)
    scaled = b.madd(lap2, 3, mid)
    b.store(scaled, "out")
    return b.function("stencil3", live_out=[scaled])


def independent_chains(chains: int = 4, length: int = 3) -> Function:
    """*chains* independent serial strands of *length* adds each —
    the pressure/parallelism dial in its purest form: every pair of
    cross-chain instructions is co-schedulable, so E_f is maximal and
    the PIG demands ~one register per chain."""
    b = BlockBuilder()
    tails = []
    for c in range(chains):
        acc = b.load("in{}".format(c))
        for _ in range(length):
            acc = b.add(acc, 1)
        tails.append(acc)
    return b.function(
        "chains{}x{}".format(chains, length), live_out=tails
    )


ALL_KERNELS = {
    "dot4": lambda: dot_product(4),
    "fir4": lambda: fir_filter(4),
    "mm2": lambda: matmul_tile(2),
    "horner6": lambda: horner(6),
    "estrin7": lambda: estrin(7),
    "stencil3": stencil3,
    "chains4x3": lambda: independent_chains(4, 3),
}
