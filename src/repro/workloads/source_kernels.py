"""Curated source-language kernels with known input/output behaviour.

Each entry pairs a program in the mini source language with a set of
(input memory, expected live-out values) cases — golden tests for the
whole toolchain, and realistic integration workloads for the benches.
The expected values were computed by hand from the language semantics
(64-bit unsigned wraparound; `x/0 = 0`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class SourceKernel:
    """A source program plus golden input/output cases."""

    name: str
    source: str
    #: (input memory, expected live-out tuple) pairs.
    cases: Tuple[Tuple[Dict[str, int], Tuple[int, ...]], ...]


SAXPY = SourceKernel(
    name="saxpy",
    source="""
        input a, n;
        i = 0;
        while (i < n) {
            y[i] = a * x[i] + y[i];
            i = i + 1;
        }
        output i;
    """,
    cases=(
        ({"a": 2, "n": 0}, (0,)),
        ({"a": 2, "n": 3, ("x", 0): 1, ("x", 1): 2, ("x", 2): 3,
          ("y", 0): 10, ("y", 1): 20, ("y", 2): 30}, (3,)),
    ),
)

PREFIX_SUM = SourceKernel(
    name="prefix_sum",
    source="""
        input n;
        acc = 0;
        i = 0;
        while (i < n) {
            acc = acc + in[i];
            out[i] = acc;
            i = i + 1;
        }
        output acc;
    """,
    cases=(
        ({"n": 4, ("in", 0): 1, ("in", 1): 2, ("in", 2): 3, ("in", 3): 4},
         (10,)),
        ({"n": 0}, (0,)),
    ),
)

FIB = SourceKernel(
    name="fib",
    source="""
        input n;
        a = 0;
        b = 1;
        i = 0;
        while (i < n) {
            t = a + b;
            a = b;
            b = t;
            i = i + 1;
        }
        output a;
    """,
    cases=(
        ({"n": 0}, (0,)),
        ({"n": 1}, (1,)),
        ({"n": 10}, (55,)),
    ),
)

CLAMP_SUM = SourceKernel(
    name="clamp_sum",
    source="""
        input n, lo, hi;
        s = 0;
        i = 0;
        while (i < n) {
            v = data[i];
            if (v < lo) { v = lo; } else { v = v; }
            if (v > hi) { v = hi; } else { v = v; }
            s = s + v;
            i = i + 1;
        }
        output s;
    """,
    cases=(
        ({"n": 3, "lo": 2, "hi": 8,
          ("data", 0): 1, ("data", 1): 5, ("data", 2): 99}, (2 + 5 + 8,)),
    ),
)

HORNER_SRC = SourceKernel(
    name="horner_src",
    source="""
        input x, n;
        acc = 0;
        i = 0;
        while (i < n) {
            acc = acc * x + c[i];
            i = i + 1;
        }
        output acc;
    """,
    cases=(
        # c = [1, 2, 3], x = 10 -> ((1*10)+2)*10+3 = 123
        ({"x": 10, "n": 3, ("c", 0): 1, ("c", 1): 2, ("c", 2): 3}, (123,)),
    ),
)

DOT_SRC = SourceKernel(
    name="dot_src",
    source="""
        input n;
        s = 0.0f;
        i = 0;
        while (i < n) {
            s = s + a[i] * b[i];
            i = i + 1;
        }
        output s;
    """,
    cases=(
        ({"n": 3, ("a", 0): 1, ("a", 1): 2, ("a", 2): 3,
          ("b", 0): 4, ("b", 1): 5, ("b", 2): 6}, (32,)),
    ),
)

COLLATZ_STEPS = SourceKernel(
    name="collatz_steps",
    source="""
        input v;
        steps = 0;
        guard = 0;
        while ((v != 1) && (guard < 100)) {
            r = v % 2;
            if (r == 0) { v = v / 2; } else { v = 3 * v + 1; }
            steps = steps + 1;
            guard = guard + 1;
        }
        output steps;
    """,
    cases=(
        ({"v": 1}, (0,)),
        ({"v": 6}, (8,)),   # 6 3 10 5 16 8 4 2 1
        ({"v": 7}, (16,)),
    ),
)

GCD = SourceKernel(
    name="gcd",
    source="""
        input a, b;
        while (b != 0) {
            t = a % b;
            a = b;
            b = t;
        }
        output a;
    """,
    cases=(
        ({"a": 48, "b": 18}, (6,)),
        ({"a": 7, "b": 13}, (1,)),
        ({"a": 5, "b": 0}, (5,)),
    ),
)

ALL_SOURCE_KERNELS: Dict[str, SourceKernel] = {
    kernel.name: kernel
    for kernel in (
        SAXPY, PREFIX_SUM, FIB, CLAMP_SUM, HORNER_SRC, DOT_SRC,
        COLLATZ_STEPS, GCD,
    )
}
