"""Workloads: the paper's worked examples, seeded random program
generators, and hand-written numeric kernels."""

from repro.workloads.generator import (
    RandomBlockConfig,
    SweepPoint,
    adversarial_serial_order,
    diamond_chain,
    pressure_sweep,
    random_block,
)
from repro.workloads.kernels import (
    ALL_KERNELS,
    dot_product,
    estrin,
    fir_filter,
    horner,
    independent_chains,
    matmul_tile,
    stencil3,
)
from repro.workloads.source_fuzz import (
    SourceFuzzConfig,
    random_input_memory,
    random_source,
)
from repro.workloads.paper_examples import (
    apply_name_mapping,
    example1,
    example1_good_mapping,
    example1_machine_model,
    example1_naive_mapping,
    example2,
    example2_machine_model,
    figure5_mapping,
    figure6_diamond,
)

__all__ = [
    "ALL_KERNELS",
    "RandomBlockConfig",
    "SourceFuzzConfig",
    "SweepPoint",
    "adversarial_serial_order",
    "apply_name_mapping",
    "diamond_chain",
    "dot_product",
    "estrin",
    "example1",
    "example1_good_mapping",
    "example1_machine_model",
    "example1_naive_mapping",
    "example2",
    "example2_machine_model",
    "figure5_mapping",
    "figure6_diamond",
    "fir_filter",
    "horner",
    "independent_chains",
    "matmul_tile",
    "pressure_sweep",
    "random_block",
    "random_input_memory",
    "random_source",
    "stencil3",
]
