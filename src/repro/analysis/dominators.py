"""Dominator and postdominator trees.

Used by the region machinery: the paper selects block pairs "plausible
for being scheduled together ... when one block dominates the other and
the second one postdominates the first, and can be verified by
observing the dominators tree and the postdominators tree (constructed
like a dominators tree when the edges in the program flow graph are
reversed)".

The implementation is the standard iterative set-intersection fixpoint
(Aho–Sethi–Ullman), adequate for the CFG sizes compilers see per
function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.ir.function import Function
from repro.utils.errors import IRError


@dataclass
class DominatorInfo:
    """Dominator sets and the immediate-dominator tree.

    ``dominators[b]`` contains every block name dominating ``b``
    (including ``b`` itself); ``idom[b]`` is the immediate dominator,
    absent for the root.
    """

    root: str
    dominators: Dict[str, FrozenSet[str]]
    idom: Dict[str, Optional[str]]

    def dominates(self, a: str, b: str) -> bool:
        """Does block *a* dominate block *b*?"""
        return a in self.dominators[b]

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, a: str) -> List[str]:
        """Blocks whose immediate dominator is *a* (tree children)."""
        return [name for name, parent in self.idom.items() if parent == a]

    def depth(self, a: str) -> int:
        """Distance from the tree root (root has depth 0)."""
        depth = 0
        current: Optional[str] = a
        while self.idom.get(current) is not None:
            current = self.idom[current]
            depth += 1
        return depth


def _solve_dominators(
    names: List[str],
    root: str,
    predecessors: Dict[str, List[str]],
) -> DominatorInfo:
    all_names = frozenset(names)
    dom: Dict[str, Set[str]] = {name: set(all_names) for name in names}
    dom[root] = {root}

    changed = True
    while changed:
        changed = False
        for name in names:
            if name == root:
                continue
            preds = predecessors[name]
            reachable_preds = [p for p in preds if p in dom]
            if reachable_preds:
                new_dom = set(all_names)
                for pred in reachable_preds:
                    new_dom &= dom[pred]
            else:
                new_dom = set()
            new_dom.add(name)
            if new_dom != dom[name]:
                dom[name] = new_dom
                changed = True

    idom: Dict[str, Optional[str]] = {root: None}
    for name in names:
        if name == root:
            continue
        strict = dom[name] - {name}
        # The immediate dominator is the strict dominator dominated by
        # all other strict dominators.
        candidate: Optional[str] = None
        for d in strict:
            if all(other == d or other in dom[d] for other in strict):
                candidate = d
                break
        idom[name] = candidate

    return DominatorInfo(
        root=root,
        dominators={name: frozenset(s) for name, s in dom.items()},
        idom=idom,
    )


def dominator_tree(fn: Function) -> DominatorInfo:
    """Dominators of *fn* rooted at its entry block."""
    names = fn.block_names()
    if not names:
        raise IRError("cannot compute dominators of an empty function")
    preds = {
        block.name: [p.name for p in fn.predecessors(block)]
        for block in fn.blocks()
    }
    return _solve_dominators(names, fn.entry.name, preds)


_VIRTUAL_EXIT = "<exit>"


def postdominator_tree(fn: Function) -> DominatorInfo:
    """Postdominators of *fn*: dominators of the reversed CFG.

    Functions with several exit blocks are handled by a virtual exit
    node (named ``"<exit>"`` in the result) that every real exit block
    flows to.
    """
    names = fn.block_names()
    if not names:
        raise IRError("cannot compute postdominators of an empty function")
    exits = [b.name for b in fn.exit_blocks()]
    if not exits:
        raise IRError(
            "function {!r} has no exit block (irreducible or cyclic CFG "
            "without exit)".format(fn.name)
        )
    # Reverse edges; successors become predecessors.
    rev_preds: Dict[str, List[str]] = {name: [] for name in names}
    for block in fn.blocks():
        for succ in fn.successors(block):
            rev_preds[block.name].append(succ.name)

    if len(exits) == 1:
        return _solve_dominators(names, exits[0], rev_preds)

    # The virtual exit is the root of the reversed graph: every real
    # exit block has it as its (reversed-graph) predecessor.
    rev_preds[_VIRTUAL_EXIT] = []
    for exit_name in exits:
        rev_preds[exit_name].append(_VIRTUAL_EXIT)
    return _solve_dominators(names + [_VIRTUAL_EXIT], _VIRTUAL_EXIT, rev_preds)


def control_equivalent_pairs(fn: Function) -> List[tuple]:
    """Block pairs (a, b) where a dominates b and b postdominates a —
    the paper's criterion for blocks that execute iff the other does
    ("one block is executed if and only if the other one is also
    executed")."""
    dom = dominator_tree(fn)
    pdom = postdominator_tree(fn)
    pairs = []
    names = fn.block_names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if dom.dominates(a, b) and pdom.dominates(b, a):
                pairs.append((a, b))
            elif dom.dominates(b, a) and pdom.dominates(a, b):
                pairs.append((b, a))
    return pairs
