"""Liveness analysis and live-interval extraction.

Two layers:

* :func:`live_variables` — classic backward may-dataflow over the CFG,
  producing live-in/live-out register sets per block.
* :func:`block_live_intervals` — within one block, the *program
  intervals* the paper's interference graph is built from: "Every
  vertex v ∈ V_r corresponds to a distinct program interval in which a
  definition of a variable's value is live."

The paper notes the convention most compilers use: "the end point of
the live interval of a symbolic register (i.e. the statement
corresponding to its last use) is not considered part of the interval;
this enables the reuse of the register in the same statement that last
uses it."  :class:`LiveInterval` follows that convention — the interval
is half-open at the last use — with a switch for the closed variant.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    DataflowSolution,
    Direction,
    GenKillTransfer,
    solve_gen_kill,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.operands import Register


def block_use_def(block: BasicBlock) -> Tuple[FrozenSet[Register], FrozenSet[Register]]:
    """(upward-exposed uses, defs) of *block* for the liveness transfer."""
    uses: Set[Register] = set()
    defs: Set[Register] = set()
    for instr in block:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(instr.defs())
    return frozenset(uses), frozenset(defs)


@dataclass
class LivenessInfo:
    """Live-in/live-out register sets per block."""

    live_in: Dict[str, FrozenSet[Register]]
    live_out: Dict[str, FrozenSet[Register]]

    def live_at_entry(self, block: BasicBlock) -> FrozenSet[Register]:
        return self.live_in[block.name]

    def live_at_exit(self, block: BasicBlock) -> FrozenSet[Register]:
        return self.live_out[block.name]


def live_variables(fn: Function) -> LivenessInfo:
    """Solve liveness over the CFG.

    The function's declared ``live_out`` registers are injected at
    every exit block ("if we assume that no value is live on the
    entrance and exit from the code fragment" is the empty default).
    """
    exit_names = {b.name for b in fn.exit_blocks()}
    fn_live_out = frozenset(fn.live_out)

    def transfer(block: BasicBlock) -> GenKillTransfer[Register]:
        uses, defs = block_use_def(block)
        return GenKillTransfer(gen=uses, kill=defs)

    def boundary(block: BasicBlock) -> FrozenSet[Register]:
        if block.name in exit_names:
            return fn_live_out
        return frozenset()

    solution: DataflowSolution[Register] = solve_gen_kill(
        fn, Direction.BACKWARD, transfer, boundary
    )
    # For a backward problem, inputs[b] is the set at block exit.
    return LivenessInfo(live_in=solution.outputs, live_out=solution.inputs)


def per_instruction_liveness(
    block: BasicBlock, live_out: FrozenSet[Register]
) -> List[FrozenSet[Register]]:
    """Registers live *after* each instruction of *block*.

    ``result[i]`` is the live set immediately after instruction ``i``;
    the live set before instruction 0 can be recovered with one more
    transfer step if needed.
    """
    result: List[FrozenSet[Register]] = [frozenset()] * len(block.instructions)
    live: Set[Register] = set(live_out)
    for idx in range(len(block.instructions) - 1, -1, -1):
        result[idx] = frozenset(live)
        instr = block.instructions[idx]
        live.difference_update(instr.defs())
        live.update(instr.uses())
    return result


@dataclass(frozen=True)
class LiveInterval:
    """The live interval of one definition within one block.

    Attributes:
        register: The defined register.
        block: Owning block name.
        start: Instruction index of the definition, or ``-1`` when the
            value is live-in to the block (defined upstream).
        end: Instruction index of the last use (open-end convention:
            the interval covers positions ``(start, end)`` exclusive of
            the last-use statement itself), or ``len(block)`` when the
            value is live-out of the block.  ``end == start`` marks a
            dead definition.
        defining_instruction: The defining instruction, or ``None`` for
            live-in pseudo-intervals.
    """

    register: Register
    block: str
    start: int
    end: int
    defining_instruction: Optional[Instruction] = None

    @property
    def is_dead(self) -> bool:
        return self.end <= self.start

    @property
    def is_live_in(self) -> bool:
        return self.start < 0

    def covers_definition_at(self, index: int, closed_end: bool = False) -> bool:
        """Is this value live at the point where another definition at
        instruction *index* executes?

        Under the open-end convention a definition at this interval's
        last-use statement does NOT conflict (register reuse in the
        statement of last use, e.g. incrementing a register).
        """
        if closed_end:
            return self.start < index <= self.end
        return self.start < index < self.end

    def overlaps(self, other: "LiveInterval", closed_end: bool = False) -> bool:
        """Do the two intervals interfere (one live at the other's def)?

        Two definitions at the same statement (a multi-def call) always
        interfere; live-in intervals interfere with each other (both
        live at block entry).
        """
        if self.block != other.block:
            return False
        if self.start == other.start:
            return True
        if self.start < other.start:
            return self.covers_definition_at(other.start, closed_end)
        return other.covers_definition_at(self.start, closed_end)

    def __str__(self) -> str:
        return "{}@{}[{}..{})".format(self.register, self.block, self.start, self.end)


def block_live_intervals(
    block: BasicBlock,
    live_out: FrozenSet[Register] = frozenset(),
    live_in: FrozenSet[Register] = frozenset(),
    include_live_in: bool = True,
) -> List[LiveInterval]:
    """Extract the definition live intervals of *block*.

    Args:
        block: The block to analyze.
        live_out: Registers live after the block's last instruction.
        live_in: Registers live (defined upstream) at block entry; each
            becomes a pseudo-interval starting at ``-1`` when
            *include_live_in* is set.
        include_live_in: Emit pseudo-intervals for live-in values.

    Returns:
        Intervals in definition order (live-in pseudo-intervals first).
        A register redefined in the block yields several intervals, one
        per definition — the vertex set of the interference graph.
    """
    n = len(block.instructions)
    uses_by_reg: Dict[Register, List[int]] = {}
    defs_by_reg: Dict[Register, List[int]] = {}
    for idx, instr in enumerate(block.instructions):
        for reg in instr.uses():
            uses_by_reg.setdefault(reg, []).append(idx)
        for reg in instr.defs():
            defs_by_reg.setdefault(reg, []).append(idx)

    def last_use_in(reg: Register, lo: int, hi: int) -> int:
        """Last use position p of *reg* with lo < p <= hi, or -1."""
        positions = uses_by_reg.get(reg)
        if not positions:
            return -1
        k = bisect_right(positions, hi) - 1
        if k >= 0 and positions[k] > lo:
            return positions[k]
        return -1

    intervals: List[LiveInterval] = []

    if include_live_in:
        for reg in sorted(live_in, key=str):
            def_positions = defs_by_reg.get(reg)
            redefined_at = def_positions[0] if def_positions else n
            # The incoming value dies at its last use up to AND
            # including any local redefinition — an instruction that
            # both uses and defines the register reads the old value
            # (e.g. a loop-carried self-move) — or extends to block end
            # if live-out and never redefined.
            end = last_use_in(reg, -1, min(redefined_at, n - 1))
            if reg in live_out and not def_positions:
                end = n
            elif end < 0:
                end = 0  # live-in but never used before redefinition: dead on arrival
            intervals.append(
                LiveInterval(register=reg, block=block.name, start=-1, end=end)
            )

    # One interval per definition: from the def to the last use before
    # the next definition of the same register (or block end if live-out).
    for idx, instr in enumerate(block.instructions):
        for reg in instr.defs():
            def_positions = defs_by_reg[reg]
            k = bisect_right(def_positions, idx)
            horizon = def_positions[k] if k < len(def_positions) else n
            # A use at the next redefinition itself reads THIS value
            # (read-before-write), so the window includes the horizon.
            end = last_use_in(reg, idx, min(horizon, n - 1))
            if end < 0:
                end = idx  # dead unless a use was found
            if reg in live_out and horizon == n:
                end = n
            intervals.append(
                LiveInterval(
                    register=reg,
                    block=block.name,
                    start=idx,
                    end=end,
                    defining_instruction=instr,
                )
            )
    return intervals


# ----------------------------------------------------------------------
# Packed-bitrow dataflow path (the compact back-end's liveness layer)
# ----------------------------------------------------------------------
#
# The set-based solver above allocates a frozenset per transfer step;
# on large functions that is the whole cost of liveness.  The compact
# path numbers every register once and represents each live set as one
# big Python int (bit i = register i live), so a transfer step is two
# word-parallel integer operations.  The rows are the substrate the
# compact interference builder (:mod:`repro.regalloc.compact`) and the
# sharded back-end consume; :meth:`LivenessRows.to_info` converts back
# to the reference representation for equivalence tests.


@dataclass(frozen=True)
class RegisterIndex:
    """Dense, deterministic numbering of every register a function
    mentions (defs, uses, and the declared live-in/live-out names).

    Attributes:
        registers: Registers in canonical order (sorted by ``str``).
        position: Register → bit position.
    """

    registers: Tuple[Register, ...]
    position: Dict[Register, int]

    @classmethod
    def build(cls, fn: Function) -> "RegisterIndex":
        seen: Set[Register] = set(fn.live_out) | set(fn.live_in)
        for block in fn.blocks():
            for instr in block:
                seen.update(instr.uses())
                seen.update(instr.defs())
        ordered = tuple(sorted(seen, key=str))
        return cls(
            registers=ordered,
            position={reg: i for i, reg in enumerate(ordered)},
        )

    def __len__(self) -> int:
        return len(self.registers)

    def mask_of(self, registers) -> int:
        """The bitmask with exactly *registers* set."""
        mask = 0
        position = self.position
        for reg in registers:
            mask |= 1 << position[reg]
        return mask

    def registers_of(self, mask: int) -> FrozenSet[Register]:
        """The register set a row encodes."""
        result = []
        registers = self.registers
        while mask:
            lsb = mask & -mask
            result.append(registers[lsb.bit_length() - 1])
            mask ^= lsb
        return frozenset(result)


@dataclass
class LivenessRows:
    """Live-in/live-out bitrows per block (compact twin of
    :class:`LivenessInfo`)."""

    index: RegisterIndex
    live_in: Dict[str, int]
    live_out: Dict[str, int]

    def to_info(self) -> LivenessInfo:
        """Materialize the reference representation (equivalence
        guard; also lets row-based callers feed set-based consumers)."""
        return LivenessInfo(
            live_in={
                name: self.index.registers_of(mask)
                for name, mask in self.live_in.items()
            },
            live_out={
                name: self.index.registers_of(mask)
                for name, mask in self.live_out.items()
            },
        )


def block_use_def_masks(
    block: BasicBlock, index: RegisterIndex
) -> Tuple[int, int]:
    """(upward-exposed-use row, def row) of *block* — the gen/kill
    masks of the bitrow liveness transfer."""
    use_mask = 0
    def_mask = 0
    position = index.position
    for instr in block:
        for reg in instr.uses():
            bit = 1 << position[reg]
            if not def_mask & bit:
                use_mask |= bit
        for reg in instr.defs():
            def_mask |= 1 << position[reg]
    return use_mask, def_mask


def live_variables_rows(
    fn: Function, index: Optional[RegisterIndex] = None
) -> LivenessRows:
    """Solve liveness over the CFG on packed bitrows.

    Same fixpoint as :func:`live_variables` (union meet, gen/kill
    transfer, function ``live_out`` injected at exit blocks), so
    ``live_variables_rows(fn).to_info()`` equals ``live_variables(fn)``
    — the equivalence suite pins exactly that.
    """
    if index is None:
        index = RegisterIndex.build(fn)
    blocks = fn.blocks()
    gen: Dict[str, int] = {}
    kill: Dict[str, int] = {}
    for block in blocks:
        gen[block.name], kill[block.name] = block_use_def_masks(block, index)

    exit_names = {b.name for b in fn.exit_blocks()}
    boundary = index.mask_of(fn.live_out)

    live_in: Dict[str, int] = {b.name: 0 for b in blocks}
    live_out: Dict[str, int] = {b.name: 0 for b in blocks}

    # Same deterministic worklist discipline as solve_gen_kill: seeded
    # in reverse layout order, FIFO with membership de-dup.
    pending: List[str] = [b.name for b in reversed(blocks)]
    queued: Set[str] = set(pending)
    block_by_name = {b.name: b for b in blocks}
    while pending:
        name = pending.pop(0)
        queued.discard(name)
        block = block_by_name[name]
        out_mask = boundary if name in exit_names else 0
        for succ in fn.successors(block):
            out_mask |= live_in[succ.name]
        live_out[name] = out_mask
        new_in = gen[name] | (out_mask & ~kill[name])
        if new_in != live_in[name]:
            live_in[name] = new_in
            for pred in fn.predecessors(block):
                if pred.name not in queued:
                    pending.append(pred.name)
                    queued.add(pred.name)
    return LivenessRows(index=index, live_in=live_in, live_out=live_out)


def per_instruction_liveness_rows(
    block: BasicBlock, live_out_mask: int, index: RegisterIndex
) -> List[int]:
    """Bitrow twin of :func:`per_instruction_liveness`: ``result[i]``
    is the mask of registers live immediately after instruction i."""
    n = len(block.instructions)
    result = [0] * n
    position = index.position
    live = live_out_mask
    for idx in range(n - 1, -1, -1):
        result[idx] = live
        instr = block.instructions[idx]
        for reg in instr.defs():
            live &= ~(1 << position[reg])
        for reg in instr.uses():
            live |= 1 << position[reg]
    return result


def max_register_pressure(
    block: BasicBlock, live_out: FrozenSet[Register] = frozenset()
) -> int:
    """Maximum number of simultaneously live values at any point in the
    block — a lower bound on the registers any allocation needs."""
    after = per_instruction_liveness(block, live_out)
    pressure = 0
    live: Set[Register] = set(live_out)
    pressure = len(live)
    for idx in range(len(block.instructions) - 1, -1, -1):
        live = set(after[idx])
        instr = block.instructions[idx]
        # At the instruction itself, its defs and uses are simultaneously
        # occupied unless reuse-at-last-use applies; count the live-after
        # set plus upward-exposed uses as the conservative pressure.
        live_before = (live - set(instr.defs())) | set(instr.uses())
        pressure = max(pressure, len(live), len(live_before))
    return pressure
