"""Natural-loop detection and nesting depth.

Spill costs in both the classic heuristic ``h(v) = cost(v)/deg(v)`` and
the paper's ``h*`` variant are "a function of the instruction's nesting
level"; this module supplies that nesting level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.dominators import dominator_tree
from repro.ir.function import Function


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: header block plus body (includes the header)."""

    header: str
    body: FrozenSet[str]

    def __contains__(self, block_name: str) -> bool:
        return block_name in self.body


def back_edges(fn: Function) -> List[Tuple[str, str]]:
    """CFG edges (tail, head) where head dominates tail."""
    dom = dominator_tree(fn)
    edges = []
    for block in fn.blocks():
        for succ in fn.successors(block):
            if dom.dominates(succ.name, block.name):
                edges.append((block.name, succ.name))
    return edges


def natural_loops(fn: Function) -> List[NaturalLoop]:
    """All natural loops, one per back edge (loops sharing a header are
    kept separate, matching the textbook construction)."""
    loops: List[NaturalLoop] = []
    preds = {
        block.name: [p.name for p in fn.predecessors(block)]
        for block in fn.blocks()
    }
    for tail, head in back_edges(fn):
        body: Set[str] = {head, tail}
        stack = [tail]
        while stack:
            name = stack.pop()
            for pred in preds[name]:
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops.append(NaturalLoop(header=head, body=frozenset(body)))
    return loops


def loop_nesting_depth(fn: Function) -> Dict[str, int]:
    """Nesting depth per block: number of natural loops containing it.

    Straight-line blocks have depth 0; a block inside two nested loops
    has depth 2.  Used to weight spill costs by ``10 ** depth``.
    """
    depth = {name: 0 for name in fn.block_names()}
    for loop in natural_loops(fn):
        for name in loop.body:
            depth[name] += 1
    return depth
