"""Scheduling regions: maximal acyclic groups of plausible blocks.

For inter-basic-block scheduling the paper follows region scheduling
([11], [3]): "moving instructions is possible only within a region
which is a maximal acyclic fragment of code.  The scheduling is done by
logically ignoring the control dependence edges between two basic
blocks that are considered as a single block for scheduling."  Two
blocks are *plausible* for joint scheduling when one dominates the
other and the second postdominates the first (control equivalence).

:func:`schedule_regions` groups control-equivalent blocks into regions,
never crossing loop back edges, so each region is an acyclic fragment
the global parallelizable interference graph can treat as one block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.dominators import control_equivalent_pairs
from repro.analysis.loops import loop_nesting_depth
from repro.ir.function import Function


@dataclass(frozen=True)
class Region:
    """An ordered group of blocks scheduled as one unit.

    Attributes:
        blocks: Block names in layout order.
        index: Dense region id.
    """

    blocks: Tuple[str, ...]
    index: int

    def __contains__(self, name: str) -> bool:
        return name in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def __str__(self) -> str:
        return "region{}({})".format(self.index, "+".join(self.blocks))


def plausible_pairs(fn: Function) -> List[Tuple[str, str]]:
    """Control-equivalent block pairs at equal loop depth.

    Blocks at different loop depths execute different numbers of times,
    so instructions must not migrate between them; restricting to equal
    depth keeps regions acyclic fragments.
    """
    depth = loop_nesting_depth(fn)
    return [
        (a, b)
        for a, b in control_equivalent_pairs(fn)
        if depth[a] == depth[b]
    ]


def schedule_regions(fn: Function) -> List[Region]:
    """Partition the CFG into maximal regions of plausible blocks.

    Plausibility is closed into equivalence classes (it is transitive
    for control-equivalent same-depth blocks); each class becomes one
    region, ordered by layout.
    """
    parent: Dict[str, str] = {name: name for name in fn.block_names()}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for a, b in plausible_pairs(fn):
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    groups: Dict[str, List[str]] = {}
    for name in fn.block_names():  # layout order keeps regions ordered
        groups.setdefault(find(name), []).append(name)

    # Region order is canonical: by layout position of each region's
    # first block.  The dict above already inserts in that order, but
    # the sort states the invariant rather than inheriting it — region
    # indices feed serialized artifacts (the region cache keys tasks
    # by digest), so the same CFG must number regions identically in
    # every process.
    layout_pos = {name: i for i, name in enumerate(fn.block_names())}
    ordered = sorted(
        groups.values(), key=lambda members: layout_pos[members[0]]
    )
    return [
        Region(blocks=tuple(members), index=i)
        for i, members in enumerate(ordered)
    ]


def region_instructions(fn: Function, region: Region) -> List:
    """All instructions of a region in layout order (the joint "block"
    the global schedule graph is built over)."""
    instructions = []
    for name in region.blocks:
        instructions.extend(fn.block(name).instructions)
    return instructions
