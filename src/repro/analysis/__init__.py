"""Dataflow and control-flow analyses over the IR."""

from repro.analysis.dataflow import (
    DataflowSolution,
    Direction,
    GenKillTransfer,
    solve_gen_kill,
)
from repro.analysis.defuse import DefUseChains, def_use_chains
from repro.analysis.dominators import (
    DominatorInfo,
    control_equivalent_pairs,
    dominator_tree,
    postdominator_tree,
)
from repro.analysis.liveness import (
    LiveInterval,
    LivenessInfo,
    LivenessRows,
    RegisterIndex,
    block_live_intervals,
    live_variables,
    live_variables_rows,
    max_register_pressure,
    per_instruction_liveness,
    per_instruction_liveness_rows,
)
from repro.analysis.loops import (
    NaturalLoop,
    back_edges,
    loop_nesting_depth,
    natural_loops,
)
from repro.analysis.reaching import (
    DefPoint,
    ReachingInfo,
    all_definitions,
    reaching_at_uses,
    reaching_definitions,
)
from repro.analysis.regions import (
    Region,
    plausible_pairs,
    region_instructions,
    schedule_regions,
)
from repro.analysis.webs import Web, build_webs, web_of_definition

__all__ = [
    "DataflowSolution",
    "DefPoint",
    "DefUseChains",
    "Direction",
    "DominatorInfo",
    "GenKillTransfer",
    "LiveInterval",
    "LivenessInfo",
    "LivenessRows",
    "NaturalLoop",
    "ReachingInfo",
    "Region",
    "RegisterIndex",
    "Web",
    "all_definitions",
    "back_edges",
    "block_live_intervals",
    "build_webs",
    "control_equivalent_pairs",
    "def_use_chains",
    "dominator_tree",
    "live_variables",
    "live_variables_rows",
    "loop_nesting_depth",
    "max_register_pressure",
    "natural_loops",
    "per_instruction_liveness",
    "per_instruction_liveness_rows",
    "plausible_pairs",
    "postdominator_tree",
    "reaching_at_uses",
    "reaching_definitions",
    "region_instructions",
    "schedule_regions",
    "solve_gen_kill",
    "web_of_definition",
]
