"""Def-use chains built on reaching definitions."""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.analysis.reaching import DefPoint, UseSite, reaching_at_uses
from repro.ir.function import Function
from repro.ir.instructions import Instruction


@dataclass
class DefUseChains:
    """Bidirectional def↔use maps for a function.

    ``uses_of[def_point]`` lists every use site the definition may
    flow into; ``defs_of[use_site]`` lists every definition that may
    reach the use (several when control-flow paths join — the paper's
    Figure 6 situation).
    """

    uses_of: Dict[DefPoint, List[UseSite]] = field(default_factory=dict)
    defs_of: Dict[UseSite, FrozenSet[DefPoint]] = field(default_factory=dict)

    def multi_def_uses(self) -> List[UseSite]:
        """Use sites reached by more than one definition — exactly the
        places where the right-number-of-names analysis must combine
        live intervals into one web."""
        return [use for use, defs in self.defs_of.items() if len(defs) > 1]

    def dead_definitions(self) -> List[DefPoint]:
        """Definitions with no reachable use (spill/DCE candidates)."""
        return [point for point, uses in self.uses_of.items() if not uses]


def def_use_chains(fn: Function) -> DefUseChains:
    """Compute def-use chains for *fn*.

    Registers listed in ``fn.live_out`` get a synthetic use at function
    exit so their final definitions are not reported dead: the synthetic
    use site pairs the defining instruction's own terminator position
    with the register (represented as ``(None, register)`` is avoided —
    instead, live-out defs simply keep an empty use list but are
    excluded from :meth:`DefUseChains.dead_definitions`).
    """
    chains = DefUseChains()
    reach = reaching_at_uses(fn)
    chains.defs_of = dict(reach)

    for instr in fn.instructions():
        for reg in instr.defs():
            chains.uses_of.setdefault(DefPoint(instr, reg), [])
    for use_site, defs in reach.items():
        for point in defs:
            chains.uses_of.setdefault(point, []).append(use_site)

    # Live-out registers are consumed by the environment: model that as
    # ONE synthetic use site per register (an out-of-program USE pseudo
    # instruction).  Sharing the site is essential — all definitions
    # reaching any exit must merge into one web, exactly like the
    # paper's Figure 6 join; a value that leaves through two exit
    # blocks is still one value to the caller.
    if fn.live_out:
        from repro.analysis.reaching import reaching_definitions
        from repro.ir.instructions import Instruction
        from repro.ir.opcodes import Opcode

        info = reaching_definitions(fn)
        for reg in fn.live_out:
            reaching = {
                point
                for block in fn.exit_blocks()
                for point in info.reach_out[block.name]
                if point.register == reg
            }
            if not reaching:
                continue
            anchor = Instruction(Opcode.USE, (), (reg,))
            marker: UseSite = (anchor, reg)
            chains.defs_of[marker] = frozenset(reaching)
            for point in sorted(reaching, key=lambda p: p.instruction.uid):
                chains.uses_of.setdefault(point, []).append(marker)
    return chains


#: Memoized chains, keyed by function identity.
_CHAINS_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_def_use_chains(fn: Function) -> DefUseChains:
    """:func:`def_use_chains` memoized on function identity.

    Several analyses of one compile walk the same function's chains
    (the whole-function dependence graph, web construction, and the
    interference build all start here), and every pipeline rewrite
    constructs a fresh :class:`~repro.ir.function.Function`, so
    identity is a sound memo key there.  Callers that mutate a
    function in place (the optimizer's DCE loop) must call
    :func:`def_use_chains` directly.
    """
    chains = _CHAINS_MEMO.get(fn)
    if chains is None:
        chains = def_use_chains(fn)
        _CHAINS_MEMO[fn] = chains
    return chains
