"""Reaching-definitions analysis.

A *definition point* is an (instruction, register) pair.  The forward
may-dataflow computes, for each block, the set of definition points
that reach its entry/exit; :func:`reaching_at_uses` refines that to the
def set reaching each individual use, which is what def-use chains and
web construction consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.dataflow import Direction, GenKillTransfer, solve_gen_kill
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.operands import Register


@dataclass(frozen=True)
class DefPoint:
    """One register definition: instruction (by uid) plus the register."""

    instruction: Instruction
    register: Register

    def __str__(self) -> str:
        return "def({} @ #{})".format(self.register, self.instruction.uid)


def all_definitions(fn: Function) -> List[DefPoint]:
    """Every definition point in layout order."""
    points: List[DefPoint] = []
    for instr in fn.instructions():
        for reg in instr.defs():
            points.append(DefPoint(instr, reg))
    return points


def _block_gen_kill(
    block: BasicBlock, defs_of: Dict[Register, FrozenSet[DefPoint]]
) -> GenKillTransfer[DefPoint]:
    gen: Set[DefPoint] = set()
    kill: Set[DefPoint] = set()
    for instr in block:
        for reg in instr.defs():
            point = DefPoint(instr, reg)
            kill |= defs_of[reg] - {point}
            gen -= defs_of[reg]
            gen.add(point)
    return GenKillTransfer(gen=frozenset(gen), kill=frozenset(kill))


@dataclass
class ReachingInfo:
    """Definition points reaching each block boundary."""

    reach_in: Dict[str, FrozenSet[DefPoint]]
    reach_out: Dict[str, FrozenSet[DefPoint]]


def reaching_definitions(fn: Function) -> ReachingInfo:
    """Solve reaching definitions over the CFG."""
    defs_of: Dict[Register, Set[DefPoint]] = {}
    for point in all_definitions(fn):
        defs_of.setdefault(point.register, set()).add(point)
    frozen_defs_of: Dict[Register, FrozenSet[DefPoint]] = {
        reg: frozenset(points) for reg, points in defs_of.items()
    }

    def transfer(block: BasicBlock) -> GenKillTransfer[DefPoint]:
        return _block_gen_kill(block, frozen_defs_of)

    def boundary(block: BasicBlock) -> FrozenSet[DefPoint]:
        return frozenset()

    solution = solve_gen_kill(fn, Direction.FORWARD, transfer, boundary)
    return ReachingInfo(reach_in=solution.inputs, reach_out=solution.outputs)


UseSite = Tuple[Instruction, Register]


def reaching_at_uses(fn: Function) -> Dict[UseSite, FrozenSet[DefPoint]]:
    """For every use site, the definition points that may flow into it.

    Walks each block forward from its reach-in set, updating the
    per-register reaching set at each definition.
    """
    info = reaching_definitions(fn)
    result: Dict[UseSite, FrozenSet[DefPoint]] = {}
    for block in fn.blocks():
        current: Dict[Register, Set[DefPoint]] = {}
        for point in info.reach_in[block.name]:
            current.setdefault(point.register, set()).add(point)
        for instr in block:
            for reg in instr.uses():
                result[(instr, reg)] = frozenset(current.get(reg, set()))
            for reg in instr.defs():
                current[reg] = {DefPoint(instr, reg)}
    return result
