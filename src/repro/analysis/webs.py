"""Web construction — the paper's "right number of names" analysis.

"When generating the global interference graph, the right number of
names analysis is used to combine live intervals in those cases in
which there is a use whose value depends on more than one definition
(i.e., several def-use chains reach a single use; e.g., when coming
from different branches of an if-then-else statement)."

A :class:`Web` is a maximal set of definitions and uses of one register
name connected through shared def-use chains; it is the allocation
unit of the *global* interference graph ("we may view a node v in G_r
as representing all the live intervals of the definitions v_i which
comprise the combined non-linear interval").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.defuse import DefUseChains, shared_def_use_chains
from repro.analysis.reaching import DefPoint, UseSite
from repro.ir.function import Function
from repro.ir.operands import Register


class _UnionFind:
    """Path-compressing union-find keyed on arbitrary hashables."""

    def __init__(self) -> None:
        self._parent: Dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, a, b) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


@dataclass(frozen=True)
class Web:
    """A combined (possibly non-linear) live range.

    Attributes:
        register: The register name all members share.
        definitions: The definition points merged into this web.
        uses: The use sites the definitions flow into.
        index: Dense id assigned in deterministic order.
    """

    register: Register
    definitions: FrozenSet[DefPoint]
    uses: FrozenSet[UseSite]
    index: int

    def __hash__(self) -> int:
        # The dataclass-generated hash re-hashes both frozensets on
        # every dict/set operation — a measurable cost given how often
        # webs key graph adjacency dicts.  The dense index is unique
        # per build, and equal webs (same field tuple) carry the same
        # index, so hashing by index alone is consistent with __eq__.
        return self.index

    @property
    def name(self) -> str:
        uids = sorted(d.instruction.uid for d in self.definitions)
        return "web{}({}:{})".format(
            self.index, self.register, ",".join(str(u) for u in uids)
        )

    def __str__(self) -> str:
        return self.name


def build_webs(fn: Function, chains: DefUseChains = None) -> List[Web]:
    """Partition all definitions of *fn* into webs.

    Two definitions of the same register land in one web when some use
    is reached by both (directly or transitively through other shared
    uses).  Definitions of different registers never merge — symbolic
    registers are distinct values by construction.

    Returns:
        Webs in deterministic order (by first defining instruction uid).
    """
    if chains is None:
        chains = shared_def_use_chains(fn)

    uf = _UnionFind()
    for use_site, defs in chains.defs_of.items():
        defs_list = sorted(defs, key=lambda d: d.instruction.uid)
        for other in defs_list[1:]:
            uf.union(defs_list[0], other)

    groups: Dict[DefPoint, List[DefPoint]] = {}
    for point in chains.uses_of:
        groups.setdefault(uf.find(point), []).append(point)

    web_list: List[Tuple[int, Register, List[DefPoint]]] = []
    for members in groups.values():
        members.sort(key=lambda d: (d.instruction.uid, str(d.register)))
        web_list.append((members[0].instruction.uid, members[0].register, members))
    # Canonical web order: first-def uid, register name as the tie
    # break — an instruction defining two registers starts two webs at
    # the same uid, and falling through to object comparison there
    # would order them arbitrarily (web indices must be reproducible;
    # the region cache digests IR that mentions them).
    web_list.sort(key=lambda item: (item[0], str(item[1])))

    webs: List[Web] = []
    for index, (_, register, members) in enumerate(web_list):
        use_sites: List[UseSite] = []
        for point in members:
            use_sites.extend(chains.uses_of.get(point, []))
        webs.append(
            Web(
                register=register,
                definitions=frozenset(members),
                uses=frozenset(use_sites),
                index=index,
            )
        )
    return webs


def web_of_definition(webs: Sequence[Web]) -> Dict[DefPoint, Web]:
    """Reverse map: definition point → owning web."""
    mapping: Dict[DefPoint, Web] = {}
    for web in webs:
        for point in web.definitions:
            mapping[point] = web
    return mapping
