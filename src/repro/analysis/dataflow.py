"""A generic iterative dataflow framework.

Liveness and reaching definitions are both instances of the classic
worklist scheme: pick a direction, a meet (union for *may* problems),
and per-block transfer functions, then iterate to a fixpoint.  Keeping
the engine generic lets the two analyses (and tests that cross-check
them) share one carefully-tested solver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generic, Hashable, TypeVar

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.utils.orderedset import OrderedSet

Fact = TypeVar("Fact", bound=Hashable)


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass
class GenKillTransfer(Generic[Fact]):
    """A transfer function of the form ``out = gen ∪ (in − kill)``.

    Both liveness and reaching definitions fit this shape, so block
    transfer functions are represented as (gen, kill) pairs computed
    once per block.
    """

    gen: FrozenSet[Fact]
    kill: FrozenSet[Fact]

    def apply(self, facts: FrozenSet[Fact]) -> FrozenSet[Fact]:
        return self.gen | (facts - self.kill)


@dataclass
class DataflowSolution(Generic[Fact]):
    """Per-block input/output fact sets.

    For a FORWARD problem ``inputs[b]`` holds at block entry and
    ``outputs[b]`` at block exit; for a BACKWARD problem the roles are
    mirrored (``inputs[b]`` is the fact set at block *exit*, i.e. the
    set flowing into the backward transfer).
    """

    inputs: Dict[str, FrozenSet[Fact]]
    outputs: Dict[str, FrozenSet[Fact]]
    iterations: int


def solve_gen_kill(
    fn: Function,
    direction: Direction,
    transfer: Callable[[BasicBlock], GenKillTransfer[Fact]],
    boundary: Callable[[BasicBlock], FrozenSet[Fact]],
) -> DataflowSolution[Fact]:
    """Solve a union-meet (may) gen/kill problem to fixpoint.

    Args:
        fn: The function to analyze.
        direction: FORWARD propagates along CFG edges, BACKWARD against
            them.
        transfer: Per-block gen/kill sets.
        boundary: Extra facts injected at the flow boundary of each
            block — e.g. a function's ``live_out`` registers at exit
            blocks for liveness.  Blocks with no boundary contribution
            should return the empty frozenset.

    Returns:
        A :class:`DataflowSolution`; the worklist is seeded in layout
        order so the result (and iteration count) is deterministic.
    """
    transfers: Dict[str, GenKillTransfer[Fact]] = {
        block.name: transfer(block) for block in fn.blocks()
    }
    empty: FrozenSet[Fact] = frozenset()
    inputs: Dict[str, FrozenSet[Fact]] = {b.name: empty for b in fn.blocks()}
    outputs: Dict[str, FrozenSet[Fact]] = {b.name: empty for b in fn.blocks()}

    if direction is Direction.FORWARD:
        flow_preds = fn.predecessors
        flow_succs = fn.successors
        order = fn.blocks()
    else:
        flow_preds = fn.successors
        flow_succs = fn.predecessors
        order = list(reversed(fn.blocks()))

    worklist: OrderedSet = OrderedSet(block.name for block in order)
    block_by_name = {block.name: block for block in fn.blocks()}
    iterations = 0

    while worklist:
        iterations += 1
        name = worklist.pop_first()
        block = block_by_name[name]
        incoming = boundary(block)
        for neighbor in flow_preds(block):
            incoming = incoming | outputs[neighbor.name]
        inputs[name] = incoming
        new_output = transfers[name].apply(incoming)
        if new_output != outputs[name]:
            outputs[name] = new_output
            for neighbor in flow_succs(block):
                worklist.add(neighbor.name)

    return DataflowSolution(inputs=inputs, outputs=outputs, iterations=iterations)
