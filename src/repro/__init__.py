"""repro — Register Allocation with Instruction Scheduling (Pinter, PLDI 1993).

A full reimplementation of the paper's framework: the parallelizable
interference graph, on which ordinary graph coloring yields a register
allocation that introduces no false dependences, together with the
substrates it needs (RISC IR, dataflow analyses, dependence/schedule
graphs, superscalar machine models, list scheduling and a cycle-level
issue simulator) and the baselines it is compared against (Chaitin
coloring with either phase order).

Quickstart::

    from repro import BlockBuilder, presets
    from repro.core import PinterAllocator

    b = BlockBuilder()
    s1 = b.load("z")
    s2 = b.loadi(0)
    s3 = b.load_indexed("a", s2)
    s4 = b.add(s1, s1)
    s5 = b.mul(s3, 5)
    fn = b.function("example1", live_out=[s4, s5])

    machine = presets.two_unit_superscalar()
    result = PinterAllocator(machine, num_registers=3).run(fn)
    print(result.allocated_function)
"""

from repro.ir import (
    BasicBlock,
    BlockBuilder,
    Function,
    FunctionBuilder,
    Immediate,
    Instruction,
    Label,
    MemorySymbol,
    Opcode,
    PhysicalRegister,
    UnitKind,
    VirtualRegister,
    format_function,
    parse_function,
    single_block_function,
    verify_function,
)
from repro.machine import MachineDescription, presets

__version__ = "1.0.0"

__all__ = [
    "BasicBlock",
    "BlockBuilder",
    "Function",
    "FunctionBuilder",
    "Immediate",
    "Instruction",
    "Label",
    "MachineDescription",
    "MemorySymbol",
    "Opcode",
    "PhysicalRegister",
    "UnitKind",
    "VirtualRegister",
    "format_function",
    "parse_function",
    "presets",
    "single_block_function",
    "verify_function",
    "__version__",
]
