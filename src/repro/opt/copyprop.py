"""Copy propagation and immediate folding (block-local).

* Copy propagation: after ``x := mov y``, later uses of ``x`` in the
  same block read ``y`` directly — as long as neither ``x`` nor ``y``
  has been redefined in between.  Cross-block copies (the lowerer's
  join/loop movs) are left alone: they are the merge points webs need.
* Immediate folding: after ``x := loadi K``, later same-block uses of
  ``x`` become the literal ``K`` where the instruction shape allows an
  immediate operand.

Both passes only rewrite operands; dead movs/loadis are left for DCE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Immediate, Register, VirtualRegister, is_register


@dataclass
class CopyPropStats:
    """Operand rewrites performed."""

    copies_propagated: int
    immediates_folded: int


def _rewrite_block_uses(
    block: BasicBlock, index: int, mapping: Dict[Register, object]
) -> int:
    """Rewrite one instruction's register sources through *mapping*;
    returns the number of operands changed."""
    instr = block.instructions[index]
    changed = 0
    new_srcs = []
    for src in instr.srcs:
        if is_register(src) and src in mapping:
            new_srcs.append(mapping[src])
            changed += 1
        else:
            new_srcs.append(src)
    if changed:
        block.instructions[index] = Instruction(
            instr.opcode,
            instr.dests,
            tuple(new_srcs),
            target=instr.target,
            uid=instr.uid,
        )
    return changed


def propagate_copies(fn: Function) -> CopyPropStats:
    """Run block-local copy propagation + immediate folding in place."""
    copies = 0
    immediates = 0
    for block in fn.blocks():
        copy_of: Dict[Register, Register] = {}
        const_of: Dict[Register, Immediate] = {}
        for index in range(len(block.instructions)):
            instr = block.instructions[index]

            # 1. rewrite this instruction's uses through known copies.
            mapping: Dict[Register, object] = {}
            for src in instr.uses():
                if src in copy_of:
                    mapping[src] = copy_of[src]
                elif src in const_of and _immediate_allowed(instr):
                    mapping[src] = const_of[src]
            if mapping:
                copies += sum(
                    1
                    for src in instr.uses()
                    if src in mapping and is_register(mapping[src])
                )
                immediates += sum(
                    1
                    for src in instr.uses()
                    if src in mapping and isinstance(mapping[src], Immediate)
                )
                _rewrite_block_uses(block, index, mapping)
                instr = block.instructions[index]

            # 2. kill facts invalidated by this instruction's defs.
            for reg in instr.defs():
                copy_of.pop(reg, None)
                const_of.pop(reg, None)
                for key in [k for k, v in copy_of.items() if v == reg]:
                    del copy_of[key]

            # 3. learn new facts.
            if instr.opcode is Opcode.MOV and isinstance(
                instr.dest, VirtualRegister
            ):
                source = instr.srcs[0]
                if is_register(source):
                    copy_of[instr.dest] = source
                elif isinstance(source, Immediate):
                    const_of[instr.dest] = source
            elif instr.opcode is Opcode.LOADI and isinstance(
                instr.dest, VirtualRegister
            ):
                value = instr.srcs[0]
                if isinstance(value, Immediate):
                    const_of[instr.dest] = value

        # Self-moves (``x := mov x``, typically created when copy
        # propagation feeds a join/loop mov its own destination) are
        # no-ops: drop them.
        before = len(block.instructions)
        block.instructions = [
            i
            for i in block.instructions
            if not (
                i.opcode is Opcode.MOV
                and i.dests
                and i.srcs
                and i.dest == i.srcs[0]
            )
        ]
        copies += before - len(block.instructions)
    return CopyPropStats(
        copies_propagated=copies, immediates_folded=immediates
    )


def _immediate_allowed(instr: Instruction) -> bool:
    """May this instruction take a literal source operand?

    Loads/stores address memory through symbols + index registers;
    keeping their operands in registers avoids encoding questions.
    Branch conditions must be registers too.  Everything arithmetic
    accepts immediates in this IR.
    """
    op = instr.opcode
    if op.is_branch or op.is_store or op.is_load or op is Opcode.USE:
        return False
    if op in (Opcode.MOV, Opcode.LOADI):
        return False  # learning loop handles these
    return True
