"""Dead-code elimination.

Removes instructions whose results are never used: a definition with
no reachable use site and no live-out consumer, provided the
instruction has no side effect (stores, calls, branches and USE
markers always stay).  Runs to a fixpoint — removing one dead
instruction can kill its operands' last uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.analysis.defuse import def_use_chains
from repro.analysis.reaching import DefPoint
from repro.ir.function import Function


@dataclass
class DCEStats:
    """How much dead code one :func:`eliminate_dead_code` call removed."""

    removed_instructions: int
    iterations: int


def _has_side_effect(instr) -> bool:
    op = instr.opcode
    return (
        op.is_store
        or op.is_branch
        or op.is_call
        or op.mnemonic == "use"
    )


def eliminate_dead_code(fn: Function) -> DCEStats:
    """Remove dead instructions from *fn* in place."""
    removed_total = 0
    iterations = 0
    while True:
        iterations += 1
        chains = def_use_chains(fn)
        dead_uids: Set[int] = set()
        for block in fn.blocks():
            for instr in block:
                if _has_side_effect(instr) or not instr.defs():
                    continue
                all_dead = all(
                    not chains.uses_of.get(DefPoint(instr, reg), [])
                    for reg in instr.defs()
                )
                if all_dead:
                    dead_uids.add(instr.uid)
        if not dead_uids:
            return DCEStats(
                removed_instructions=removed_total, iterations=iterations
            )
        removed_total += len(dead_uids)
        for block in fn.blocks():
            block.instructions = [
                i for i in block.instructions if i.uid not in dead_uids
            ]
