"""Local value numbering with algebraic simplification.

Block-local redundancy elimination: each computed value gets a number
keyed by ``(opcode, operand value numbers)``; a recomputation of an
already-available value becomes a MOV (which copy propagation then
dissolves).  Commutative opcodes normalize operand order.  On the way,
algebraic identities simplify:

* ``x + 0``, ``x - 0``, ``x * 1``, ``x / 1``, ``x | 0``, ``x ^ 0``,
  ``x << 0``, ``x >> 0``  →  ``mov x``
* ``x * 0``, ``x & 0``  →  ``loadi 0``
* ``x - x``, ``x ^ x``  →  ``loadi 0``
* ``x * 2^k``  →  ``x << k`` (strength reduction)
* constant folding when every operand is a literal.

Loads are *not* value-numbered across stores/calls (the memory fence
invalidates them); for simplicity any store or call flushes load
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Immediate, Register, VirtualRegister, is_register

_WORD_MASK = (1 << 64) - 1

_FOLDABLE = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b % 64),
    Opcode.SHR: lambda a, b: a >> (b % 64),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}

#: (opcode, identity literal position, identity value) → becomes mov of
#: the other operand.  Position 1 = right operand.
_RIGHT_IDENTITY = {
    (Opcode.ADD, 0), (Opcode.SUB, 0), (Opcode.OR, 0), (Opcode.XOR, 0),
    (Opcode.SHL, 0), (Opcode.SHR, 0), (Opcode.MUL, 1), (Opcode.DIV, 1),
    (Opcode.FADD, 0), (Opcode.FSUB, 0), (Opcode.FMUL, 1), (Opcode.FDIV, 1),
}

_RIGHT_ZEROING = {(Opcode.MUL, 0), (Opcode.AND, 0), (Opcode.FMUL, 0)}

_SELF_ZEROING = {Opcode.SUB, Opcode.XOR, Opcode.FSUB}


@dataclass
class LVNStats:
    """What one :func:`value_number` run changed."""

    redundant_replaced: int
    simplified: int
    folded: int


ValueNumber = int


def _power_of_two(value: int) -> Optional[int]:
    if value > 1 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class _BlockNumbering:
    def __init__(self) -> None:
        self._next: ValueNumber = 0
        self.of_register: Dict[Register, ValueNumber] = {}
        self.of_literal: Dict[int, ValueNumber] = {}
        self.of_expression: Dict[Tuple, ValueNumber] = {}
        self.representative: Dict[ValueNumber, Register] = {}

    def fresh(self) -> ValueNumber:
        self._next += 1
        return self._next

    def number_of(self, operand) -> ValueNumber:
        if isinstance(operand, Immediate):
            value = operand.value & _WORD_MASK
            if value not in self.of_literal:
                self.of_literal[value] = self.fresh()
            return self.of_literal[value]
        if operand not in self.of_register:
            self.of_register[operand] = self.fresh()
        return self.of_register[operand]

    def flush_loads(self) -> None:
        """Invalidate memory-derived expression numbers (after a store
        or call)."""
        stale = [key for key in self.of_expression if key[0] == "load"]
        for key in stale:
            del self.of_expression[key]


def _expression_key(instr: Instruction, numbering: _BlockNumbering):
    op = instr.opcode
    operand_numbers = tuple(
        numbering.number_of(src) for src in instr.srcs
        if is_register(src) or isinstance(src, Immediate)
    )
    if op.is_load:
        symbols = tuple(s.name for s in instr.memory_symbols())
        return ("load", op, symbols, operand_numbers)
    if op.commutative:
        operand_numbers = tuple(sorted(operand_numbers))
    return ("op", op, operand_numbers)


def value_number(fn: Function) -> LVNStats:
    """Run LVN + simplification over every block of *fn* in place."""
    redundant = 0
    simplified = 0
    folded = 0

    for block in fn.blocks():
        numbering = _BlockNumbering()
        for index in range(len(block.instructions)):
            instr = block.instructions[index]
            op = instr.opcode

            if op.is_store or op.is_call:
                numbering.flush_loads()
                continue
            if op.is_branch or op is Opcode.USE or not instr.dests:
                continue
            if len(instr.dests) != 1 or not isinstance(
                instr.dest, VirtualRegister
            ):
                continue

            replacement = _simplify(instr)
            if replacement is not None:
                block.instructions[index] = replacement
                instr = replacement
                op = instr.opcode
                if op is Opcode.LOADI:
                    folded += 1
                else:
                    simplified += 1

            key = _expression_key(instr, numbering)
            if op in (Opcode.MOV, Opcode.LOADI):
                # copy/constant: share the operand's number.
                source = instr.srcs[0]
                numbering.of_register[instr.dest] = numbering.number_of(source)
                continue

            existing = numbering.of_expression.get(key)
            if existing is not None and existing in numbering.representative:
                block.instructions[index] = Instruction(
                    Opcode.MOV,
                    (instr.dest,),
                    (numbering.representative[existing],),
                    uid=instr.uid,
                )
                numbering.of_register[instr.dest] = existing
                redundant += 1
                continue

            number = numbering.fresh()
            numbering.of_expression[key] = number
            numbering.of_register[instr.dest] = number
            numbering.representative[number] = instr.dest

    return LVNStats(
        redundant_replaced=redundant, simplified=simplified, folded=folded
    )


def _simplify(instr: Instruction) -> Optional[Instruction]:
    """Algebraic simplification of one instruction; None = unchanged."""
    op = instr.opcode
    srcs = instr.srcs

    # Full constant folding.
    if op in _FOLDABLE and all(isinstance(s, Immediate) for s in srcs):
        value = _FOLDABLE[op](
            srcs[0].value & _WORD_MASK, srcs[1].value & _WORD_MASK
        ) & _WORD_MASK
        return Instruction(
            Opcode.LOADI, instr.dests, (Immediate(value),), uid=instr.uid
        )

    if len(srcs) != 2:
        return None
    left, right = srcs

    # x OP x → 0 for subtraction/xor.
    if (
        op in _SELF_ZEROING
        and is_register(left)
        and left == right
    ):
        return Instruction(
            Opcode.LOADI, instr.dests, (Immediate(0),), uid=instr.uid
        )

    if isinstance(right, Immediate):
        # Identity element on the right.
        if (op, right.value) in {
            (o, v) for o, v in _RIGHT_IDENTITY
        } and is_register(left):
            return Instruction(
                Opcode.MOV, instr.dests, (left,), uid=instr.uid
            )
        # Zeroing element on the right.
        if (op, right.value) in {
            (o, v) for o, v in _RIGHT_ZEROING
        }:
            return Instruction(
                Opcode.LOADI, instr.dests, (Immediate(0),), uid=instr.uid
            )
        # Strength reduction: x * 2^k → x << k (fixed point only).
        if op is Opcode.MUL and is_register(left):
            shift = _power_of_two(right.value)
            if shift is not None:
                return Instruction(
                    Opcode.SHL,
                    instr.dests,
                    (left, Immediate(shift)),
                    uid=instr.uid,
                )

    if isinstance(left, Immediate) and op.commutative and is_register(right):
        # Normalize literal to the right and retry.
        swapped = Instruction(
            op, instr.dests, (right, left), uid=instr.uid
        )
        return _simplify(swapped) or swapped
    return None
