"""Optimization passes over the IR: dead-code elimination, block-local
copy propagation and immediate folding, plus a fixpoint pass manager."""

from repro.opt.copyprop import CopyPropStats, propagate_copies
from repro.opt.dce import DCEStats, eliminate_dead_code
from repro.opt.lvn import LVNStats, value_number
from repro.opt.manager import OptimizationReport, optimize

__all__ = [
    "CopyPropStats",
    "DCEStats",
    "LVNStats",
    "OptimizationReport",
    "eliminate_dead_code",
    "optimize",
    "propagate_copies",
    "value_number",
]
