"""A small pass manager chaining the optimization passes to a fixpoint."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function
from repro.opt.copyprop import CopyPropStats, propagate_copies
from repro.opt.dce import DCEStats, eliminate_dead_code
from repro.opt.lvn import LVNStats, value_number


@dataclass
class OptimizationReport:
    """Aggregate statistics of one :func:`optimize` run."""

    rounds: int = 0
    copies_propagated: int = 0
    immediates_folded: int = 0
    instructions_removed: int = 0
    redundancies_eliminated: int = 0
    simplifications: int = 0

    def __str__(self) -> str:
        return (
            "optimize: {} round(s), {} copies propagated, "
            "{} immediates folded, {} redundancies eliminated, "
            "{} simplifications, {} instructions removed".format(
                self.rounds,
                self.copies_propagated,
                self.immediates_folded,
                self.redundancies_eliminated,
                self.simplifications,
                self.instructions_removed,
            )
        )


def optimize(fn: Function, max_rounds: int = 8) -> OptimizationReport:
    """Run LVN + copy-prop + immediate folding + DCE on *fn* (in place)
    until nothing changes or *max_rounds* is hit.

    The pipeline is semantics-preserving (every pass is individually,
    and the property suite checks the composition against the
    interpreter).
    """
    report = OptimizationReport()
    for _round in range(max_rounds):
        report.rounds += 1
        lvn: LVNStats = value_number(fn)
        cp: CopyPropStats = propagate_copies(fn)
        dce: DCEStats = eliminate_dead_code(fn)
        report.redundancies_eliminated += lvn.redundant_replaced
        report.simplifications += lvn.simplified + lvn.folded
        report.copies_propagated += cp.copies_propagated
        report.immediates_folded += cp.immediates_folded
        report.instructions_removed += dce.removed_instructions
        if (
            lvn.redundant_replaced == 0
            and lvn.simplified == 0
            and lvn.folded == 0
            and cp.copies_propagated == 0
            and cp.immediates_folded == 0
            and dce.removed_instructions == 0
        ):
            break
    return report
