"""Region-sharded PIG construction over the warm worker pool.

:func:`repro.core.parallel_interference.build_parallel_interference_graph`
is a strict loop over scheduling regions: each region's schedule graph
feeds a dependence kernel whose rows are projected onto webs.  The
regions are independent until the splice (instructions of different
regions are never co-issued, so no cross-region false edges exist —
the module docstring of :mod:`repro.core.parallel_interference`), which
makes the kernel builds embarrassingly parallel.  This module dispatches
them across the persistent :class:`~repro.service.pool.WorkerPool`:

1. The parent builds the interference graph, webs, and every region's
   schedule graph locally (downstream consumers —
   ``SchedulingValueModel``, the augmented scheduler — walk
   ``fdg.schedule_graph``, so those objects must live in the parent).
2. Each non-empty region becomes one ``pig_region`` payload: the
   function's IR text, the region's block names, the machine
   description in wire form, and the engine name.  Payloads are
   primitive-only JSON, like every pool frame.
3. A worker parses the function, rebuilds the region's schedule graph
   (deterministic, so dense kernel positions match the parent's), runs
   the requested kernel, and ships all four row families back as hex
   strings (:func:`repro.deps.vector.rows_to_hex`).
4. The parent reconstructs a kernel per region from the wire rows and
   splices exactly as the in-process build would — same shared-dict
   insertion, same :class:`EdgeOrigin` algebra, bit-identical output.

Failure containment mirrors the batch service: a crashed, overdue, or
frame-poisoned worker costs only its region — the parent rebuilds that
region's kernel locally (``pig.shard.fallback_local``) and the stitched
graph is still exact.  A ``check_deadline`` that fires mid-build shuts
the pool down (a busy worker's unread frame would desync the stream)
and re-raises, preserving the driver's ``--time-budget`` semantics.
"""

from __future__ import annotations

import atexit
import time
import uuid
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.regions import Region, schedule_regions
from repro.analysis.webs import web_of_definition
from repro.core.parallel_interference import (
    EdgeOrigin,
    ParallelInterferenceGraph,
    _insert_edges_fast,
    _splice_false_edges,
    _splice_false_edges_vector,
)
from repro.deps.bitset import DependenceBitKernel, InstructionIndex
from repro.deps.false_dependence import (
    FalseDependenceGraph,
    false_dependence_graph,
)
from repro.deps.schedule_graph import ScheduleGraph, region_schedule_graph
from repro.deps.vector import (
    VectorDependenceKernel,
    rows_from_hex,
    rows_to_hex,
)
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.model import (
    MachineDescription,
    machine_from_wire,
    machine_to_wire,
)
from repro.obs import get_metrics, get_tracer
from repro.regalloc.interference import build_interference_graph
from repro.service.manifest import CompileTask
from repro.service.pool import PoolHandle, WorkerPool
from repro.service.worker import RESULT_VERSION, WorkerOutcome
from repro.utils import faults
from repro.utils.errors import InputError

#: Payload discriminators routed by ``execute_payload``.
PIG_REGION_KIND = "pig_region"
INTERFERENCE_REGION_KIND = "interference_region"
SCHED_REGION_KIND = "sched_region"

#: Every region-task kind a pool worker understands.
REGION_KINDS = (PIG_REGION_KIND, INTERFERENCE_REGION_KIND, SCHED_REGION_KIND)

#: Default wall-clock budget per region task, seconds.
DEFAULT_TASK_TIMEOUT = 60.0

#: Engines a shard worker may be asked to run (reference stays
#: in-process: sharding exists to parallelize the fast kernels).
SHARDABLE_ENGINES = ("vector", "bitset")


# The wire form lives with the machine model now (the cache
# fingerprints it too); re-exported here for existing importers.
__all__ = ["machine_to_wire", "machine_from_wire"]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def kernel_to_report(kernel, engine: str) -> Dict[str, object]:
    """One kernel's four row families as the ``pig_region`` report
    payload — hex wire rows, JSON-safe.  This is both what a shard
    worker ships back and what the region cache stores."""
    return {
        "kind": PIG_REGION_KIND,
        "engine": engine,
        "n": len(kernel.index),
        "reach": rows_to_hex(kernel.reach_rows),
        "contention": rows_to_hex(kernel.contention_rows),
        "et": rows_to_hex(kernel.et_rows),
        "ef": rows_to_hex(kernel.ef_rows),
    }


def build_region_payload(
    fn_text: str,
    fn_name: str,
    machine: MachineDescription,
    region: Region,
    engine: str,
    task_id: str,
) -> Dict[str, object]:
    """One primitive-only ``pig_region`` attempt description.  Armed
    parent-process faults ride along, exactly like compile payloads."""
    return {
        "v": RESULT_VERSION,
        "kind": PIG_REGION_KIND,
        "task_id": task_id,
        "name": fn_name,
        "text": fn_text,
        "machine": machine_to_wire(machine),
        "region_blocks": list(region.blocks),
        "engine": engine,
        "faults": [spec.as_dict() for spec in faults.active_specs()],
    }


def execute_pig_region(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker-side body of one region build (called from
    :func:`repro.service.worker.execute_payload` after fault arming).

    Parses the function, rebuilds the region's schedule graph — the
    parse and the region walk are deterministic, so the kernel's dense
    positions match the parent's — runs the requested kernel, and
    returns the result fields with every row family in hex wire form.
    """
    engine = payload["engine"]
    if engine not in SHARDABLE_ENGINES:
        raise InputError("unshardable PIG engine {!r}".format(engine))
    fn = parse_function(payload["text"])
    machine = machine_from_wire(payload["machine"])
    sg = region_schedule_graph(
        fn, tuple(payload["region_blocks"]), machine=machine
    )
    if engine == "vector":
        kernel = VectorDependenceKernel.build(sg, machine)
    else:
        kernel = DependenceBitKernel.build(sg, machine)
    return {
        "status": "ok",
        "exit_code": 0,
        "failure_kind": None,
        "metrics": None,
        "report": kernel_to_report(kernel, engine),
    }


def _uid_map(fn: Function) -> Dict[str, List[int]]:
    """Per-block instruction uids, in layout order.  Spill rounds
    insert instructions with *later* uids mid-block, so a re-parse
    (which numbers textually) would order webs differently; shipping
    the parent's uids keeps every uid-sorted structure — webs,
    def-use chains, priority tie-breaks — identical across the wire."""
    return {
        block.name: [instr.uid for instr in block.instructions]
        for block in fn.blocks()
    }


def _apply_uids(fn: Function, uids: object) -> None:
    """Reassign the parsed function's uids from the parent's wire map
    (immediately after parse, before anything hashes an instruction)."""
    if not isinstance(uids, dict):
        raise InputError("malformed uid map")
    for block in fn.blocks():
        wired = uids.get(block.name)
        if not isinstance(wired, list) or len(wired) != len(
            block.instructions
        ):
            raise InputError(
                "uid map does not match parsed block {!r}".format(block.name)
            )
        for instr, uid in zip(block.instructions, wired):
            instr.uid = int(uid)


def build_interference_payload(
    fn: Function,
    fn_text: str,
    region: Region,
    task_id: str,
) -> Dict[str, object]:
    """One ``interference_region`` attempt: ship the function text and
    the region's block names; the worker returns the region's global
    interference contribution as adjacency bitrows."""
    return {
        "v": RESULT_VERSION,
        "kind": INTERFERENCE_REGION_KIND,
        "task_id": task_id,
        "name": fn.name,
        "text": fn_text,
        "region_blocks": list(region.blocks),
        "uids": _uid_map(fn),
        "faults": [spec.as_dict() for spec in faults.active_specs()],
    }


def execute_interference_region(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker-side body of one interference region: rebuild the
    (global, deterministic) webs and liveness from the parsed function,
    stab only this region's blocks, and ship the adjacency bitrows over
    global web indices back in hex wire form."""
    from repro.regalloc.compact import region_interference_rows

    fn = parse_function(payload["text"])
    _apply_uids(fn, payload["uids"])
    rows, _intervals = region_interference_rows(
        fn, tuple(payload["region_blocks"])
    )
    return {
        "status": "ok",
        "exit_code": 0,
        "failure_kind": None,
        "metrics": None,
        "report": {
            "kind": INTERFERENCE_REGION_KIND,
            "n": len(rows),
            "rows": rows_to_hex(rows),
        },
    }


def build_sched_payload(
    fn: Function,
    fn_text: str,
    machine: MachineDescription,
    region: Region,
    engine: str,
    backend: str,
    task_id: str,
) -> Dict[str, object]:
    """One ``sched_region`` attempt: the *allocated* function's text
    plus the region's block names; the worker schedules each block and
    returns the region's total makespan."""
    return {
        "v": RESULT_VERSION,
        "kind": SCHED_REGION_KIND,
        "task_id": task_id,
        "name": fn.name,
        "text": fn_text,
        "machine": machine_to_wire(machine),
        "region_blocks": list(region.blocks),
        "engine": engine,
        "backend": backend,
        "uids": _uid_map(fn),
        "faults": [spec.as_dict() for spec in faults.active_specs()],
    }


def execute_sched_region(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker-side body of one scheduling region: per block, rebuild
    the schedule graph and false-dependence graph, run the augmented
    scheduler (compact or reference per the backend knob), and return
    the sum of block makespans.  Block schedules are independent, so
    the parent's stitched total is exactly the in-process loop's."""
    from repro.deps.schedule_graph import block_schedule_graph
    from repro.sched.augmented import (
        augmented_schedule,
        compact_augmented_schedule,
    )

    engine = payload["engine"]
    if engine not in SHARDABLE_ENGINES:
        raise InputError("unshardable scheduling engine {!r}".format(engine))
    fn = parse_function(payload["text"])
    _apply_uids(fn, payload["uids"])
    machine = machine_from_wire(payload["machine"])
    wanted = set(payload["region_blocks"])
    run = (
        compact_augmented_schedule
        if payload.get("backend") == "compact"
        else augmented_schedule
    )
    total = 0
    blocks = 0
    for block in fn.blocks():
        if block.name not in wanted or not block.instructions:
            continue
        sg = block_schedule_graph(block, machine=machine)
        fdg = false_dependence_graph(sg, machine, engine=engine)
        total += run(sg, fdg, machine).makespan
        blocks += 1
    return {
        "status": "ok",
        "exit_code": 0,
        "failure_kind": None,
        "metrics": None,
        "report": {
            "kind": SCHED_REGION_KIND,
            "makespan": total,
            "blocks": blocks,
        },
    }


def execute_region_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Route one region payload to its executor (the single entry
    :func:`repro.service.worker.execute_payload` calls for every kind
    in :data:`REGION_KINDS`)."""
    kind = payload.get("kind")
    if kind == PIG_REGION_KIND:
        return execute_pig_region(payload)
    if kind == INTERFERENCE_REGION_KIND:
        return execute_interference_region(payload)
    if kind == SCHED_REGION_KIND:
        return execute_sched_region(payload)
    raise InputError("unknown region payload kind {!r}".format(kind))


# ----------------------------------------------------------------------
# Parent side: reconstruction and stitching
# ----------------------------------------------------------------------


def _kernel_from_report(
    report: Dict[str, object], instructions: List[Instruction], engine: str
):
    """Rebuild a kernel from wire rows over the parent's own
    instruction sequence, or ``None`` when the report does not
    type-check (a poisoned worker may ship anything — trust nothing
    unvalidated)."""
    if not isinstance(report, dict) or report.get("kind") != PIG_REGION_KIND:
        return None
    n = len(instructions)
    if report.get("n") != n:
        return None
    rows: Dict[str, List[int]] = {}
    for key in ("reach", "contention", "et", "ef"):
        texts = report.get(key)
        if not isinstance(texts, list) or len(texts) != n:
            return None
        try:
            rows[key] = rows_from_hex(texts)
        except (TypeError, ValueError):
            return None
    index = InstructionIndex(list(instructions))
    if engine == "vector":
        return VectorDependenceKernel(
            index=index,
            reach_rows=rows["reach"],
            contention_rows=rows["contention"],
            et_rows=rows["et"],
            ef_rows=rows["ef"],
            packed_ef=None,  # packed lazily by packed_ef_matrix()
            backend="wire",
        )
    return DependenceBitKernel(
        index=index,
        reach_rows=rows["reach"],
        contention_rows=rows["contention"],
        et_rows=rows["et"],
        ef_rows=rows["ef"],
    )


# ----------------------------------------------------------------------
# Shared pool (one per process, grown on demand)
# ----------------------------------------------------------------------

_POOL: Optional[WorkerPool] = None


def _pool_for(shards: int) -> WorkerPool:
    """The process-wide shard pool, recreated larger when needed.  The
    warm workers persist across driver compiles — that amortization is
    the point of pooling."""
    global _POOL
    if _POOL is None or _POOL.size < shards:
        if _POOL is not None:
            _POOL.shutdown()
        _POOL = WorkerPool(size=shards)
    return _POOL


def shutdown_shared_pool() -> None:
    """Retire the process-wide shard pool (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_shared_pool)


# ----------------------------------------------------------------------
# The sharded build
# ----------------------------------------------------------------------


def _collect_done(
    pool: WorkerPool,
    inflight: Dict[str, Tuple[int, PoolHandle]],
    outcomes: Dict[int, WorkerOutcome],
    check_deadline: Optional[Callable[[], None]],
) -> None:
    """Block until at least one in-flight region resolves, then collect
    every resolved handle.  Polls *check_deadline* between waits; a
    deadline raise propagates with busy workers still attached — the
    caller shuts the pool down."""
    while True:
        now = time.monotonic()
        done = [
            task_id
            for task_id, (_, handle) in inflight.items()
            if handle.is_done(now)
        ]
        if done:
            for task_id in done:
                region_index, handle = inflight.pop(task_id)
                outcomes[region_index] = pool.collect(handle)
            return
        if check_deadline is not None:
            check_deadline()
        timeouts = [h.deadline - now for _, h in inflight.values()]
        _wait_connections(
            [h.waitable for _, h in inflight.values()],
            timeout=max(0.0, min(min(timeouts), 0.05)),
        )


def _run_region_tasks(
    pool: WorkerPool,
    payloads: List[Dict[str, object]],
    fn_name: str,
    fn_text: str,
    check_deadline: Optional[Callable[[], None]],
    task_timeout: float,
    dispatch_counter: str,
) -> Dict[int, WorkerOutcome]:
    """Fan *payloads* out over *pool* (bounded by pool size) and
    collect one outcome per payload slot.  On a mid-fan-out abort
    (deadline, Ctrl-C) the pool is shut down — a busy worker's unread
    frame would desync a reused stream."""
    metrics = get_metrics()
    outcomes: Dict[int, WorkerOutcome] = {}
    inflight: Dict[str, Tuple[int, PoolHandle]] = {}
    try:
        for slot, payload in enumerate(payloads):
            while len(inflight) >= pool.size:
                _collect_done(pool, inflight, outcomes, check_deadline)
            if check_deadline is not None:
                check_deadline()
            task_id = payload["task_id"]
            handle = pool.dispatch(
                CompileTask(task_id=task_id, name=fn_name, text=fn_text),
                payload,
                timeout=task_timeout,
            )
            inflight[task_id] = (slot, handle)
            metrics.counter(dispatch_counter).inc()
        while inflight:
            _collect_done(pool, inflight, outcomes, check_deadline)
    except BaseException:
        pool.shutdown()
        raise
    return outcomes


def _interference_rows_from_report(
    report: Dict[str, object], n: int
) -> Optional[List[int]]:
    """Adjacency bitrows from one ``interference_region`` report, or
    None when the report does not type-check."""
    if not isinstance(report, dict):
        return None
    if report.get("kind") != INTERFERENCE_REGION_KIND or report.get("n") != n:
        return None
    texts = report.get("rows")
    if not isinstance(texts, list) or len(texts) != n:
        return None
    try:
        return rows_from_hex(texts)
    except (TypeError, ValueError):
        return None


def build_sharded_interference(
    fn: Function,
    shards: int = 2,
    use_regions: bool = True,
    pool: Optional[WorkerPool] = None,
    check_deadline: Optional[Callable[[], None]] = None,
    task_timeout: float = DEFAULT_TASK_TIMEOUT,
):
    """Build the classic interference graph G_r with the quadratic
    interval-stabbing work fanned out per region.

    The parent builds the cheap skeleton — liveness rows, def-use
    chains, webs, and every live interval, all linear passes — while
    each worker stabs only its region's blocks and ships the resulting
    adjacency bitrows (over global web indices) back as hex.  OR-ing
    the region rows reproduces exactly the whole-function edge set,
    because a conflict edge is witnessed inside a single block and the
    regions partition the blocks.  A failed region is re-stabbed
    locally (``interference.shard.fallback_local``).

    Returns the reference :class:`InterferenceGraph`, bit-identical to
    :func:`repro.regalloc.interference.build_interference_graph`.
    """
    from repro.regalloc.compact import (
        CompactGraph,
        CompactInterference,
        build_compact_interference,
        region_interference_rows,
    )

    if shards < 2:
        raise InputError("shards must be >= 2, got {}".format(shards))
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "interference.shard.build", function=fn.name, shards=shards
    ):
        skeleton = build_compact_interference(fn, collect_edges=False)
        n = len(skeleton.webs)
        if use_regions:
            regions = schedule_regions(fn)
        else:
            regions = [
                Region(blocks=(name,), index=i)
                for i, name in enumerate(fn.block_names())
            ]
        fn_text = format_function(fn)
        active_pool = _pool_for(shards) if pool is None else pool
        run_id = uuid.uuid4().hex[:8]
        payloads = [
            build_interference_payload(
                fn, fn_text, region,
                "inter-{}-r{}".format(run_id, region.index),
            )
            for region in regions
        ]
        outcomes = _run_region_tasks(
            active_pool, payloads, fn.name, fn_text,
            check_deadline, task_timeout, "interference.shard.dispatched",
        )

        adj = [0] * n
        fallbacks = 0
        for slot, region in enumerate(regions):
            outcome = outcomes.get(slot)
            rows = None
            if outcome is not None and outcome.kind == "result":
                rows = _interference_rows_from_report(
                    (outcome.result or {}).get("report"), n
                )
            if rows is None:
                fallbacks += 1
                tracer.event(
                    "interference.shard.fallback",
                    region=region.index,
                    kind=outcome.kind if outcome else "missing",
                )
                metrics.counter("interference.shard.fallback_local").inc()
                rows, _ = region_interference_rows(fn, region.blocks)
            for i, row in enumerate(rows):
                if row:
                    adj[i] |= row

        tracer.event(
            "interference.shard.done",
            function=fn.name,
            regions=len(regions),
            fallbacks=fallbacks,
        )
        metrics.counter("interference.shard.builds").inc()
        return CompactInterference(
            graph=CompactGraph.from_rows(adj),
            webs=skeleton.webs,
            rows=skeleton.rows,
            intervals_of=skeleton.intervals_of,
            chains=skeleton.chains,
            function=fn,
        ).to_reference()


def schedule_sharded(
    fn: Function,
    machine: MachineDescription,
    engine: str = "vector",
    backend: str = "compact",
    shards: int = 2,
    use_regions: bool = True,
    pool: Optional[WorkerPool] = None,
    check_deadline: Optional[Callable[[], None]] = None,
    task_timeout: float = DEFAULT_TASK_TIMEOUT,
) -> int:
    """Total cycle count of the *allocated* function with per-region
    scheduling fanned out over the pool.

    Block schedules are independent (the driver's in-process loop sums
    per-block makespans), so each worker schedules its region's blocks
    and the parent sums region totals — identical to the in-process
    result.  A failed region is rescheduled locally
    (``sched.shard.fallback_local``).
    """
    if engine not in SHARDABLE_ENGINES:
        raise InputError(
            "sharded scheduling needs one of {}, got {!r}".format(
                "/".join(SHARDABLE_ENGINES), engine
            )
        )
    if shards < 2:
        raise InputError("shards must be >= 2, got {}".format(shards))

    from repro.deps.schedule_graph import block_schedule_graph
    from repro.sched.augmented import (
        augmented_schedule,
        compact_augmented_schedule,
    )

    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "sched.shard.build",
        function=fn.name,
        engine=engine,
        backend=backend,
        shards=shards,
    ):
        if use_regions:
            regions = schedule_regions(fn)
        else:
            regions = [
                Region(blocks=(name,), index=i)
                for i, name in enumerate(fn.block_names())
            ]
        blocks_by_name = {block.name: block for block in fn.blocks()}
        work_regions = [
            region
            for region in regions
            if any(
                blocks_by_name[name].instructions for name in region.blocks
            )
        ]
        fn_text = format_function(fn)
        active_pool = _pool_for(shards) if pool is None else pool
        run_id = uuid.uuid4().hex[:8]
        payloads = [
            build_sched_payload(
                fn, fn_text, machine, region, engine, backend,
                "sched-{}-r{}".format(run_id, region.index),
            )
            for region in work_regions
        ]
        outcomes = _run_region_tasks(
            active_pool, payloads, fn.name, fn_text,
            check_deadline, task_timeout, "sched.shard.dispatched",
        )

        run = (
            compact_augmented_schedule
            if backend == "compact"
            else augmented_schedule
        )
        total = 0
        fallbacks = 0
        for slot, region in enumerate(work_regions):
            outcome = outcomes.get(slot)
            makespan = None
            if outcome is not None and outcome.kind == "result":
                report = (outcome.result or {}).get("report")
                if (
                    isinstance(report, dict)
                    and report.get("kind") == SCHED_REGION_KIND
                    and isinstance(report.get("makespan"), int)
                    and report["makespan"] >= 0
                ):
                    makespan = report["makespan"]
            if makespan is None:
                fallbacks += 1
                tracer.event(
                    "sched.shard.fallback",
                    region=region.index,
                    kind=outcome.kind if outcome else "missing",
                )
                metrics.counter("sched.shard.fallback_local").inc()
                makespan = 0
                for name in region.blocks:
                    block = blocks_by_name[name]
                    if not block.instructions:
                        continue
                    sg = block_schedule_graph(block, machine=machine)
                    fdg = false_dependence_graph(
                        sg, machine, check_deadline=check_deadline,
                        engine=engine,
                    )
                    makespan += run(sg, fdg, machine).makespan
            total += makespan

        tracer.event(
            "sched.shard.done",
            function=fn.name,
            regions=len(work_regions),
            fallbacks=fallbacks,
            cycles=total,
        )
        metrics.counter("sched.shard.builds").inc()
        return total


def build_sharded_pig(
    fn: Function,
    machine: MachineDescription,
    use_regions: bool = True,
    engine: str = "vector",
    shards: int = 2,
    check_deadline: Optional[Callable[[], None]] = None,
    pool: Optional[WorkerPool] = None,
    task_timeout: float = DEFAULT_TASK_TIMEOUT,
    backend: str = "reference",
) -> ParallelInterferenceGraph:
    """Build G for *fn* with per-region kernels fanned out over a
    worker pool.  Output is bit-identical to
    :func:`build_parallel_interference_graph` with the same *engine*.

    Args:
        fn / machine / use_regions / engine / check_deadline: As in the
            in-process builder; *engine* must be one of
            :data:`SHARDABLE_ENGINES`.
        shards: Worker-pool size (>= 2; the driver routes smaller
            settings to the in-process build).
        pool: An externally owned pool to dispatch on; when None the
            process-shared pool is used (and left warm for the next
            compile).
        task_timeout: Per-region wall-clock budget; an overdue region
            is killed and rebuilt locally.
        backend: With ``"compact"`` the embedded interference graph is
            *also* sharded — workers stab each region's intervals and
            the parent ORs the returned bitrows — making the whole back
            half region-parallel; ``"reference"`` builds it serially
            in-process.
    """
    if engine not in SHARDABLE_ENGINES:
        raise InputError(
            "sharded PIG build needs one of {}, got {!r}".format(
                "/".join(SHARDABLE_ENGINES), engine
            )
        )
    if shards < 2:
        raise InputError("shards must be >= 2, got {}".format(shards))

    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "pig.shard.build",
        function=fn.name,
        engine=engine,
        shards=shards,
    ):
        owned_pool = pool is None
        active_pool = _pool_for(shards) if owned_pool else pool
        if backend == "compact":
            interference = build_sharded_interference(
                fn, shards=shards, use_regions=use_regions,
                pool=active_pool, check_deadline=check_deadline,
                task_timeout=task_timeout,
            )
        else:
            interference = build_interference_graph(fn)
        def_to_web = web_of_definition(interference.webs)
        if use_regions:
            regions = schedule_regions(fn)
        else:
            regions = [
                Region(blocks=(name,), index=i)
                for i, name in enumerate(fn.block_names())
            ]

        graph = nx.Graph()
        graph.add_nodes_from(interference.webs)
        _insert_edges_fast(
            graph, list(interference.graph.edges()), EdgeOrigin.INTERFERENCE
        )

        # Parent-side schedule graphs, built up front: downstream
        # consumers walk fdg.schedule_graph, and the kernel wire rows
        # are positional against exactly these instruction sequences.
        region_sgs: List[Tuple[Region, ScheduleGraph]] = []
        for region in regions:
            if check_deadline is not None:
                check_deadline()
            sg = region_schedule_graph(fn, region.blocks, machine=machine)
            if sg.instructions:
                region_sgs.append((region, sg))

        fn_text = format_function(fn)
        run_id = uuid.uuid4().hex[:8]
        payloads = [
            build_region_payload(
                fn_text, fn.name, machine, region, engine,
                "pig-{}-r{}".format(run_id, region.index),
            )
            for region, _sg in region_sgs
        ]
        outcomes = _run_region_tasks(
            active_pool, payloads, fn.name, fn_text,
            check_deadline, task_timeout, "pig.shard.dispatched",
        )

        false_graphs: List[FalseDependenceGraph] = []
        fallbacks = 0
        for slot, (region, sg) in enumerate(region_sgs):
            outcome = outcomes.get(slot)
            kernel = None
            if outcome is not None and outcome.kind == "result":
                kernel = _kernel_from_report(
                    (outcome.result or {}).get("report"), sg.instructions,
                    engine,
                )
            if kernel is None:
                # Crash / timeout / malformed rows: this region costs
                # one local rebuild, the batch is unharmed.
                fallbacks += 1
                tracer.event(
                    "pig.shard.fallback",
                    region=region.index,
                    kind=outcome.kind if outcome else "missing",
                )
                metrics.counter("pig.shard.fallback_local").inc()
                fdg = false_dependence_graph(
                    sg, machine, check_deadline=check_deadline,
                    engine=engine,
                )
            else:
                metrics.counter("pig.shard.completed").inc()
                fdg = FalseDependenceGraph(
                    instructions=list(sg.instructions),
                    schedule_graph=sg,
                    kernel=kernel,
                )
            false_graphs.append(fdg)
            if engine == "vector":
                _splice_false_edges_vector(
                    fdg.kernel, def_to_web, graph,
                    check_deadline=check_deadline,
                    inter_graph=interference.graph,
                )
            else:
                _splice_false_edges(fdg.kernel, def_to_web, graph)

        tracer.event(
            "pig.shard.done",
            function=fn.name,
            regions=len(region_sgs),
            fallbacks=fallbacks,
            workers=active_pool.live_workers(),
        )
        metrics.counter("pig.shard.builds").inc()
        return ParallelInterferenceGraph(
            graph=graph,
            interference=interference,
            false_graphs=false_graphs,
            regions=regions,
            function=fn,
            machine=machine,
        )
