"""Region-sharded PIG construction over the warm worker pool.

:func:`repro.core.parallel_interference.build_parallel_interference_graph`
is a strict loop over scheduling regions: each region's schedule graph
feeds a dependence kernel whose rows are projected onto webs.  The
regions are independent until the splice (instructions of different
regions are never co-issued, so no cross-region false edges exist —
the module docstring of :mod:`repro.core.parallel_interference`), which
makes the kernel builds embarrassingly parallel.  This module dispatches
them across the persistent :class:`~repro.service.pool.WorkerPool`:

1. The parent builds the interference graph, webs, and every region's
   schedule graph locally (downstream consumers —
   ``SchedulingValueModel``, the augmented scheduler — walk
   ``fdg.schedule_graph``, so those objects must live in the parent).
2. Each non-empty region becomes one ``pig_region`` payload: the
   function's IR text, the region's block names, the machine
   description in wire form, and the engine name.  Payloads are
   primitive-only JSON, like every pool frame.
3. A worker parses the function, rebuilds the region's schedule graph
   (deterministic, so dense kernel positions match the parent's), runs
   the requested kernel, and ships all four row families back as hex
   strings (:func:`repro.deps.vector.rows_to_hex`).
4. The parent reconstructs a kernel per region from the wire rows and
   splices exactly as the in-process build would — same shared-dict
   insertion, same :class:`EdgeOrigin` algebra, bit-identical output.

Failure containment mirrors the batch service: a crashed, overdue, or
frame-poisoned worker costs only its region — the parent rebuilds that
region's kernel locally (``pig.shard.fallback_local``) and the stitched
graph is still exact.  A ``check_deadline`` that fires mid-build shuts
the pool down (a busy worker's unread frame would desync the stream)
and re-raises, preserving the driver's ``--time-budget`` semantics.
"""

from __future__ import annotations

import atexit
import time
import uuid
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.regions import Region, schedule_regions
from repro.analysis.webs import web_of_definition
from repro.core.parallel_interference import (
    EdgeOrigin,
    ParallelInterferenceGraph,
    _insert_edges_fast,
    _splice_false_edges,
    _splice_false_edges_vector,
)
from repro.deps.bitset import DependenceBitKernel, InstructionIndex
from repro.deps.false_dependence import (
    FalseDependenceGraph,
    false_dependence_graph,
)
from repro.deps.schedule_graph import ScheduleGraph, region_schedule_graph
from repro.deps.vector import (
    VectorDependenceKernel,
    rows_from_hex,
    rows_to_hex,
)
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.model import (
    MachineDescription,
    machine_from_wire,
    machine_to_wire,
)
from repro.obs import get_metrics, get_tracer
from repro.regalloc.interference import build_interference_graph
from repro.service.manifest import CompileTask
from repro.service.pool import PoolHandle, WorkerPool
from repro.service.worker import RESULT_VERSION, WorkerOutcome
from repro.utils import faults
from repro.utils.errors import InputError

#: Payload discriminator routed by ``execute_payload``.
PIG_REGION_KIND = "pig_region"

#: Default wall-clock budget per region task, seconds.
DEFAULT_TASK_TIMEOUT = 60.0

#: Engines a shard worker may be asked to run (reference stays
#: in-process: sharding exists to parallelize the fast kernels).
SHARDABLE_ENGINES = ("vector", "bitset")


# The wire form lives with the machine model now (the cache
# fingerprints it too); re-exported here for existing importers.
__all__ = ["machine_to_wire", "machine_from_wire"]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def kernel_to_report(kernel, engine: str) -> Dict[str, object]:
    """One kernel's four row families as the ``pig_region`` report
    payload — hex wire rows, JSON-safe.  This is both what a shard
    worker ships back and what the region cache stores."""
    return {
        "kind": PIG_REGION_KIND,
        "engine": engine,
        "n": len(kernel.index),
        "reach": rows_to_hex(kernel.reach_rows),
        "contention": rows_to_hex(kernel.contention_rows),
        "et": rows_to_hex(kernel.et_rows),
        "ef": rows_to_hex(kernel.ef_rows),
    }


def build_region_payload(
    fn_text: str,
    fn_name: str,
    machine: MachineDescription,
    region: Region,
    engine: str,
    task_id: str,
) -> Dict[str, object]:
    """One primitive-only ``pig_region`` attempt description.  Armed
    parent-process faults ride along, exactly like compile payloads."""
    return {
        "v": RESULT_VERSION,
        "kind": PIG_REGION_KIND,
        "task_id": task_id,
        "name": fn_name,
        "text": fn_text,
        "machine": machine_to_wire(machine),
        "region_blocks": list(region.blocks),
        "engine": engine,
        "faults": [spec.as_dict() for spec in faults.active_specs()],
    }


def execute_pig_region(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker-side body of one region build (called from
    :func:`repro.service.worker.execute_payload` after fault arming).

    Parses the function, rebuilds the region's schedule graph — the
    parse and the region walk are deterministic, so the kernel's dense
    positions match the parent's — runs the requested kernel, and
    returns the result fields with every row family in hex wire form.
    """
    engine = payload["engine"]
    if engine not in SHARDABLE_ENGINES:
        raise InputError("unshardable PIG engine {!r}".format(engine))
    fn = parse_function(payload["text"])
    machine = machine_from_wire(payload["machine"])
    sg = region_schedule_graph(
        fn, tuple(payload["region_blocks"]), machine=machine
    )
    if engine == "vector":
        kernel = VectorDependenceKernel.build(sg, machine)
    else:
        kernel = DependenceBitKernel.build(sg, machine)
    return {
        "status": "ok",
        "exit_code": 0,
        "failure_kind": None,
        "metrics": None,
        "report": kernel_to_report(kernel, engine),
    }


# ----------------------------------------------------------------------
# Parent side: reconstruction and stitching
# ----------------------------------------------------------------------


def _kernel_from_report(
    report: Dict[str, object], instructions: List[Instruction], engine: str
):
    """Rebuild a kernel from wire rows over the parent's own
    instruction sequence, or ``None`` when the report does not
    type-check (a poisoned worker may ship anything — trust nothing
    unvalidated)."""
    if not isinstance(report, dict) or report.get("kind") != PIG_REGION_KIND:
        return None
    n = len(instructions)
    if report.get("n") != n:
        return None
    rows: Dict[str, List[int]] = {}
    for key in ("reach", "contention", "et", "ef"):
        texts = report.get(key)
        if not isinstance(texts, list) or len(texts) != n:
            return None
        try:
            rows[key] = rows_from_hex(texts)
        except (TypeError, ValueError):
            return None
    index = InstructionIndex(list(instructions))
    if engine == "vector":
        return VectorDependenceKernel(
            index=index,
            reach_rows=rows["reach"],
            contention_rows=rows["contention"],
            et_rows=rows["et"],
            ef_rows=rows["ef"],
            packed_ef=None,  # packed lazily by packed_ef_matrix()
            backend="wire",
        )
    return DependenceBitKernel(
        index=index,
        reach_rows=rows["reach"],
        contention_rows=rows["contention"],
        et_rows=rows["et"],
        ef_rows=rows["ef"],
    )


# ----------------------------------------------------------------------
# Shared pool (one per process, grown on demand)
# ----------------------------------------------------------------------

_POOL: Optional[WorkerPool] = None


def _pool_for(shards: int) -> WorkerPool:
    """The process-wide shard pool, recreated larger when needed.  The
    warm workers persist across driver compiles — that amortization is
    the point of pooling."""
    global _POOL
    if _POOL is None or _POOL.size < shards:
        if _POOL is not None:
            _POOL.shutdown()
        _POOL = WorkerPool(size=shards)
    return _POOL


def shutdown_shared_pool() -> None:
    """Retire the process-wide shard pool (idempotent)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_shared_pool)


# ----------------------------------------------------------------------
# The sharded build
# ----------------------------------------------------------------------


def _collect_done(
    pool: WorkerPool,
    inflight: Dict[str, Tuple[int, PoolHandle]],
    outcomes: Dict[int, WorkerOutcome],
    check_deadline: Optional[Callable[[], None]],
) -> None:
    """Block until at least one in-flight region resolves, then collect
    every resolved handle.  Polls *check_deadline* between waits; a
    deadline raise propagates with busy workers still attached — the
    caller shuts the pool down."""
    while True:
        now = time.monotonic()
        done = [
            task_id
            for task_id, (_, handle) in inflight.items()
            if handle.is_done(now)
        ]
        if done:
            for task_id in done:
                region_index, handle = inflight.pop(task_id)
                outcomes[region_index] = pool.collect(handle)
            return
        if check_deadline is not None:
            check_deadline()
        timeouts = [h.deadline - now for _, h in inflight.values()]
        _wait_connections(
            [h.waitable for _, h in inflight.values()],
            timeout=max(0.0, min(min(timeouts), 0.05)),
        )


def build_sharded_pig(
    fn: Function,
    machine: MachineDescription,
    use_regions: bool = True,
    engine: str = "vector",
    shards: int = 2,
    check_deadline: Optional[Callable[[], None]] = None,
    pool: Optional[WorkerPool] = None,
    task_timeout: float = DEFAULT_TASK_TIMEOUT,
) -> ParallelInterferenceGraph:
    """Build G for *fn* with per-region kernels fanned out over a
    worker pool.  Output is bit-identical to
    :func:`build_parallel_interference_graph` with the same *engine*.

    Args:
        fn / machine / use_regions / engine / check_deadline: As in the
            in-process builder; *engine* must be one of
            :data:`SHARDABLE_ENGINES`.
        shards: Worker-pool size (>= 2; the driver routes smaller
            settings to the in-process build).
        pool: An externally owned pool to dispatch on; when None the
            process-shared pool is used (and left warm for the next
            compile).
        task_timeout: Per-region wall-clock budget; an overdue region
            is killed and rebuilt locally.
    """
    if engine not in SHARDABLE_ENGINES:
        raise InputError(
            "sharded PIG build needs one of {}, got {!r}".format(
                "/".join(SHARDABLE_ENGINES), engine
            )
        )
    if shards < 2:
        raise InputError("shards must be >= 2, got {}".format(shards))

    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "pig.shard.build",
        function=fn.name,
        engine=engine,
        shards=shards,
    ):
        interference = build_interference_graph(fn)
        def_to_web = web_of_definition(interference.webs)
        if use_regions:
            regions = schedule_regions(fn)
        else:
            regions = [
                Region(blocks=(name,), index=i)
                for i, name in enumerate(fn.block_names())
            ]

        graph = nx.Graph()
        graph.add_nodes_from(interference.webs)
        _insert_edges_fast(
            graph, list(interference.graph.edges()), EdgeOrigin.INTERFERENCE
        )

        # Parent-side schedule graphs, built up front: downstream
        # consumers walk fdg.schedule_graph, and the kernel wire rows
        # are positional against exactly these instruction sequences.
        region_sgs: List[Tuple[Region, ScheduleGraph]] = []
        for region in regions:
            if check_deadline is not None:
                check_deadline()
            sg = region_schedule_graph(fn, region.blocks, machine=machine)
            if sg.instructions:
                region_sgs.append((region, sg))

        fn_text = format_function(fn)
        owned_pool = pool is None
        active_pool = _pool_for(shards) if owned_pool else pool
        run_id = uuid.uuid4().hex[:8]

        outcomes: Dict[int, WorkerOutcome] = {}
        inflight: Dict[str, Tuple[int, PoolHandle]] = {}
        try:
            for slot, (region, sg) in enumerate(region_sgs):
                while len(inflight) >= active_pool.size:
                    _collect_done(
                        active_pool, inflight, outcomes, check_deadline
                    )
                if check_deadline is not None:
                    check_deadline()
                task_id = "pig-{}-r{}".format(run_id, region.index)
                payload = build_region_payload(
                    fn_text, fn.name, machine, region, engine, task_id
                )
                handle = active_pool.dispatch(
                    CompileTask(
                        task_id=task_id, name=fn.name, text=fn_text
                    ),
                    payload,
                    timeout=task_timeout,
                )
                inflight[task_id] = (slot, handle)
                metrics.counter("pig.shard.dispatched").inc()
            while inflight:
                _collect_done(
                    active_pool, inflight, outcomes, check_deadline
                )
        except BaseException:
            # A mid-build abort (deadline, Ctrl-C) may leave busy
            # workers with unread frames; a reused pool would desync,
            # so retire them all.  The pool respawns lazily.
            active_pool.shutdown()
            raise

        false_graphs: List[FalseDependenceGraph] = []
        fallbacks = 0
        for slot, (region, sg) in enumerate(region_sgs):
            outcome = outcomes.get(slot)
            kernel = None
            if outcome is not None and outcome.kind == "result":
                kernel = _kernel_from_report(
                    (outcome.result or {}).get("report"), sg.instructions,
                    engine,
                )
            if kernel is None:
                # Crash / timeout / malformed rows: this region costs
                # one local rebuild, the batch is unharmed.
                fallbacks += 1
                tracer.event(
                    "pig.shard.fallback",
                    region=region.index,
                    kind=outcome.kind if outcome else "missing",
                )
                metrics.counter("pig.shard.fallback_local").inc()
                fdg = false_dependence_graph(
                    sg, machine, check_deadline=check_deadline,
                    engine=engine,
                )
            else:
                metrics.counter("pig.shard.completed").inc()
                fdg = FalseDependenceGraph(
                    instructions=list(sg.instructions),
                    schedule_graph=sg,
                    kernel=kernel,
                )
            false_graphs.append(fdg)
            if engine == "vector":
                _splice_false_edges_vector(
                    fdg.kernel, def_to_web, graph,
                    check_deadline=check_deadline,
                    inter_graph=interference.graph,
                )
            else:
                _splice_false_edges(fdg.kernel, def_to_web, graph)

        tracer.event(
            "pig.shard.done",
            function=fn.name,
            regions=len(region_sgs),
            fallbacks=fallbacks,
            workers=active_pool.live_workers(),
        )
        metrics.counter("pig.shard.builds").inc()
        return ParallelInterferenceGraph(
            graph=graph,
            interference=interference,
            false_graphs=false_graphs,
            regions=regions,
            function=fn,
            machine=machine,
        )
