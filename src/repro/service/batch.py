"""The batch runner: fault-tolerant fan-out over isolated workers.

:class:`BatchRunner` drives a list of :class:`~repro.service.manifest.
CompileTask`\\ s through the hardened driver on a pool of subprocess
workers (:mod:`repro.service.worker`), applying the fleet-level
containment policies the single-compile ladder cannot provide:

* **Isolation** — a crash, OOM, wedged loop, or armed fault inside one
  compile kills one child process, never the batch.
* **Hard timeouts** — every attempt gets a wall-clock deadline enforced
  by the parent with SIGTERM → SIGKILL escalation; the cooperative
  ``--time-budget`` inside the driver is thereby backed by preemption.
* **Retry with backoff** — :class:`RetryPolicy` retries only
  *retryable* failures (worker crash, timeout, worker exception) with
  exponential backoff and deterministic jitter; deterministic driver
  failures (malformed input, exhausted budgets) are never retried.
* **Circuit breaking** — a :class:`~repro.service.circuit.
  CircuitBreaker` keyed per strategy/engine rung opens after
  consecutive failures and routes subsequent tasks straight to the
  degraded reference-engine rung, with half-open probing.
* **Checkpoint/resume** — every terminal outcome is journaled to a
  :class:`~repro.service.checkpoint.RunLedger`; SIGINT/SIGTERM drain
  gracefully (stop dispatching, let in-flight workers finish or hit
  their deadlines, flush the ledger), and a re-run with the same
  ledger skips every journaled task whose input digest is unchanged.

Batch exit codes (surfaced by ``repro batch``):

* ``0`` — every task ok (possibly degraded);
* ``2`` — invalid manifest or arguments (raised as
  :class:`~repro.utils.errors.InputError` before any work starts);
* ``3`` — the batch completed but some tasks failed after retries;
* ``130`` — interrupted (drained after SIGINT/SIGTERM; resume with the
  ledger to finish).
"""

from __future__ import annotations

import random
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _mp_wait
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.cache import CompileCache, compile_cache_key
from repro.machine.presets import ALL_PRESETS
from repro.obs import get_metrics, get_tracer
from repro.pipeline.driver import DriverConfig
from repro.service.checkpoint import RunLedger
from repro.service.circuit import CircuitBreaker
from repro.service.manifest import CompileTask
from repro.service.pool import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_TASKS_PER_WORKER,
    PoolHandle,
    WorkerPool,
)
from repro.service.worker import (
    WorkerOutcome,
    _kill,
    build_payload,
    reap_worker,
    start_worker,
)
from repro.utils import faults
from repro.utils.errors import InputError

#: Batch process exit codes (``repro batch`` contract).
EXIT_BATCH_OK = 0
EXIT_BATCH_INPUT = 2
EXIT_BATCH_FAILURES = 3
EXIT_BATCH_INTERRUPTED = 130

#: Dispatch rungs.
PRIMARY_RUNG = "primary"
CIRCUIT_RUNG = "circuit-open"
RECHECK_RUNG = "recheck"


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Only *worker-level* failures are retryable: a killed/hung/crashed
    worker may have been unlucky (load spike, armed fault, OOM), but a
    driver that *reported* failure did so deterministically — retrying
    an :class:`~repro.utils.errors.InputError` burns a worker to learn
    nothing.

    Attributes:
        max_retries: Extra attempts after the first (0 disables retry).
        base_delay: Backoff before the first retry, seconds.
        multiplier: Backoff growth factor per retry.
        max_delay: Backoff ceiling, seconds.
        jitter: ± fraction applied to each delay (decorrelates herds).
        seed: Jitter RNG seed — batches are reproducible end to end.
    """

    max_retries: int = 2
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    seed: int = 0

    #: Outcome kinds worth retrying.
    RETRYABLE = ("timeout", "crash", "worker-exception")

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InputError(
                "max_retries must be >= 0, got {}".format(self.max_retries)
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise InputError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise InputError(
                "backoff multiplier must be >= 1, got {}".format(
                    self.multiplier
                )
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InputError(
                "jitter must be within [0, 1], got {}".format(self.jitter)
            )
        self._rng = random.Random(self.seed)

    def is_retryable(self, kind: str) -> bool:
        return kind in self.RETRYABLE

    def delay(self, failures: int) -> float:
        """Backoff before the next attempt, given *failures* so far
        (>= 1)."""
        exponent = max(0, failures - 1)
        base = min(self.max_delay, self.base_delay * self.multiplier ** exponent)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, base)


@dataclass
class TaskRecord:
    """Everything the batch observed about one task (summary + ledger
    row source)."""

    task_id: str
    name: str
    digest: str
    status: str = "pending"
    exit_code: Optional[int] = None
    attempts: int = 0
    pids: List[int] = field(default_factory=list)
    duration_s: float = 0.0
    rung: str = ""
    kinds: List[str] = field(default_factory=list)
    resumed: bool = False
    cached: bool = False
    message: str = ""
    metrics: Optional[Dict[str, object]] = None
    notes: List[str] = field(default_factory=list)
    provisional: Optional[Dict[str, object]] = None

    @property
    def terminal(self) -> bool:
        return self.status in ("ok", "degraded", "failed")

    def adopt_prior(self, prior: Dict[str, object]) -> None:
        """Reuse a ledgered outcome on resume (zero recompiles)."""
        self.resumed = True
        self.status = str(prior.get("status", "failed"))
        exit_code = prior.get("exit_code")
        self.exit_code = exit_code if isinstance(exit_code, int) else None
        attempts = prior.get("attempts")
        self.attempts = attempts if isinstance(attempts, int) else 1
        pids = prior.get("pids")
        self.pids = [p for p in pids if isinstance(p, int)] \
            if isinstance(pids, list) else []
        self.rung = str(prior.get("rung", ""))
        kinds = prior.get("kinds")
        self.kinds = [str(k) for k in kinds] if isinstance(kinds, list) else []
        self.message = str(prior.get("message", ""))
        metrics = prior.get("metrics")
        self.metrics = metrics if isinstance(metrics, dict) else None

    def adopt_cached(self, result: Dict[str, object]) -> None:
        """Finalize straight from a compile-cache hit: no worker was
        dispatched, so attempts stay 0 and no pid is recorded.  Only
        clean successes enter the cache, so *result* is an ``ok``."""
        self.cached = True
        self.status = str(result.get("status", "ok"))
        exit_code = result.get("exit_code", 0)
        self.exit_code = exit_code if isinstance(exit_code, int) else 0
        self.rung = "cache"
        metrics = result.get("metrics")
        self.metrics = metrics if isinstance(metrics, dict) else None
        self.message = "compile cache hit"
        self.notes.append("result served from the compile cache")

    def finalize(
        self,
        status: str,
        exit_code: Optional[int],
        message: str = "",
        metrics: Optional[Dict[str, object]] = None,
    ) -> None:
        self.status = status
        self.exit_code = exit_code
        if message:
            self.message = message
        self.metrics = metrics

    def as_entry(
        self, finished_at: Optional[float] = None
    ) -> Dict[str, object]:
        """The ledger row for this record.

        *finished_at* is the batch runner's wall-clock stamp, derived
        from one per-batch ``time.time()`` base plus a monotonic
        offset — never raw ``time.time()`` per record, so an NTP step
        mid-batch cannot make ledger stamps run backwards.
        """
        return {
            "task_id": self.task_id,
            "digest": self.digest,
            "status": self.status,
            "exit_code": self.exit_code,
            "attempts": self.attempts,
            "pids": list(self.pids),
            "rung": self.rung,
            "kinds": list(self.kinds),
            "resumed": self.resumed,
            "cached": self.cached,
            "duration_s": round(self.duration_s, 6),
            "message": self.message,
            "metrics": self.metrics,
            "finished_at": finished_at,
        }

    def as_dict(self) -> Dict[str, object]:
        data = self.as_entry()
        del data["finished_at"]
        data["name"] = self.name
        data["notes"] = list(self.notes)
        return data


@dataclass
class BatchSummary:
    """Final batch accounting."""

    records: List[TaskRecord]
    interrupted: bool = False
    wall_s: float = 0.0
    breaker: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {
            "total": len(self.records),
            "ok": 0, "degraded": 0, "failed": 0, "pending": 0,
            "resumed": 0, "cached": 0, "compiled": 0,
        }
        for rec in self.records:
            counts[rec.status] = counts.get(rec.status, 0) + 1
            if rec.resumed:
                counts["resumed"] += 1
            elif rec.cached:
                counts["cached"] += 1
            elif rec.terminal:
                counts["compiled"] += 1
        return counts

    @property
    def exit_code(self) -> int:
        if self.interrupted:
            return EXIT_BATCH_INTERRUPTED
        if any(rec.status == "failed" for rec in self.records):
            return EXIT_BATCH_FAILURES
        return EXIT_BATCH_OK

    def as_dict(self) -> Dict[str, object]:
        return {
            "counts": self.counts,
            "exit_code": self.exit_code,
            "interrupted": self.interrupted,
            "wall_s": round(self.wall_s, 6),
            "breaker": self.breaker,
            "tasks": [rec.as_dict() for rec in self.records],
        }


@dataclass
class _Attempt:
    task: CompileTask
    number: int
    rung: str = PRIMARY_RUNG


class BatchRunner:
    """Fault-tolerant batch compilation over subprocess workers.

    Args:
        machine: Machine preset name (validated here; workers rebuild
            the preset by name, so payloads stay primitive).
        registers: r override, forwarded to every worker's driver.
        driver_config: Base :class:`DriverConfig` for every task.
        max_workers: In-flight worker bound.
        task_timeout: Hard per-attempt wall-clock limit, seconds.
        retry_policy: Backoff policy; None uses :class:`RetryPolicy`
            defaults.
        breaker: Circuit breaker; None uses :class:`CircuitBreaker`
            defaults.  The breaker only reroutes when the primary
            engine is a fast kernel (``"vector"``/``"bitset"``; there
            is no rung below the reference engine).
        ledger_path: JSONL journal to append terminal outcomes to
            (None disables journaling — and therefore resume).
        resume_path: Existing ledger to load; journaled tasks with
            matching digests are skipped.  Implies journaling to the
            same file when *ledger_path* is unset.  ``failed`` records
            whose kinds include a worker-level failure (timeout,
            crash, worker exception) are *not* skipped — a transient
            failure deserves another run.
        retry_failed: On resume, recompile every ``failed`` record —
            even deterministic driver failures (``--retry-failed``).
        recheck_degraded: Re-run tasks that completed *degraded* once
            on the strict reference rung (the retry-on-stricter-rung
            policy): a clean strict run upgrades the task to ``ok``,
            anything else keeps the degraded result.
        kill_grace: SIGTERM→SIGKILL grace for overdue workers, seconds.
        use_pool: Dispatch attempts to a persistent
            :class:`~repro.service.pool.WorkerPool` instead of forking
            one process per attempt.  Containment, retry, circuit, and
            ledger semantics are identical — only the transport (and
            the per-task overhead) changes.  The CLI defaults this on;
            the library default stays off so embedders opt in.
        max_tasks_per_worker: Pool recycling bound (pool mode only).
        worker_idle_timeout: Pool idle recycle, seconds (pool mode
            only; None disables).
        cache: Optional :class:`~repro.cache.CompileCache` consulted
            before dispatch and populated from clean primary-rung
            successes.  Tasks (or batches) with armed faults bypass it
            entirely, in both directions.
    """

    def __init__(
        self,
        machine: str = "two-unit-superscalar",
        registers: Optional[int] = None,
        driver_config: Optional[DriverConfig] = None,
        max_workers: int = 4,
        task_timeout: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        ledger_path: Optional[str] = None,
        resume_path: Optional[str] = None,
        recheck_degraded: bool = False,
        retry_failed: bool = False,
        kill_grace: float = 0.5,
        use_pool: bool = False,
        max_tasks_per_worker: Optional[int] = DEFAULT_MAX_TASKS_PER_WORKER,
        worker_idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        cache: Optional[CompileCache] = None,
    ) -> None:
        if machine not in ALL_PRESETS:
            raise InputError(
                "unknown machine {!r}; choose from: {}".format(
                    machine, ", ".join(sorted(ALL_PRESETS))
                )
            )
        if max_workers < 1:
            raise InputError(
                "max_workers must be >= 1, got {}".format(max_workers)
            )
        if task_timeout <= 0:
            raise InputError(
                "task_timeout must be positive seconds, got {}".format(
                    task_timeout
                )
            )
        self.machine = machine
        self.registers = registers
        self.config = driver_config or DriverConfig()
        self.max_workers = max_workers
        self.task_timeout = task_timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.ledger_path = ledger_path or resume_path
        self.resume_path = resume_path
        self.recheck_degraded = recheck_degraded
        self.retry_failed = retry_failed
        self.kill_grace = kill_grace
        self.use_pool = use_pool
        self.max_tasks_per_worker = max_tasks_per_worker
        self.worker_idle_timeout = worker_idle_timeout
        self.cache = cache
        self._pool: Optional[WorkerPool] = None
        self._stop = False
        self._wall_base = 0.0
        self._mono_base = 0.0
        if self.breaker.listener is None:
            self.breaker.listener = self._on_circuit_transition

    def _on_circuit_transition(
        self, key: str, old_state: str, new_state: str
    ) -> None:
        get_tracer().event(
            "circuit.transition", key=key, old=old_state, new=new_state
        )
        get_metrics().counter(
            "circuit.transitions.{}".format(new_state)
        ).inc()

    def _stamp(self) -> float:
        """Wall-clock 'now' derived from the batch's single wall base
        plus a monotonic offset (see :meth:`TaskRecord.as_entry`)."""
        return self._wall_base + (time.monotonic() - self._mono_base)

    # ------------------------------------------------------------------
    # Rung plumbing
    # ------------------------------------------------------------------

    def _config_for(self, rung: str) -> DriverConfig:
        # Degraded rungs run with the region cache off outright: a
        # rung exists because the primary path misbehaved, and the PR 5
        # "only clean primary-rung successes" rule applies at region
        # grain too (the driver's own gates also refuse the reference
        # engine, but the rung config should not rely on that).
        if rung == CIRCUIT_RUNG:
            return replace(
                self.config, engine="reference", region_cache=False
            )
        if rung == RECHECK_RUNG:
            return replace(
                self.config, engine="reference", strict=True,
                paranoid=False, region_cache=False,
            )
        return self.config

    def _breaker_key(self, rung: str) -> str:
        config = self._config_for(rung)
        key = "pinter/" + config.engine
        if rung == RECHECK_RUNG:
            key += "/strict"
        return key

    # ------------------------------------------------------------------
    # Compile cache
    # ------------------------------------------------------------------

    def _cache_key(self, task: CompileTask):
        return compile_cache_key(
            name=task.name,
            text=task.text,
            is_ir=task.is_ir,
            machine=self.machine,
            registers=self.registers,
            config=self.config,
        )

    def _cache_lookup(
        self, task: CompileTask
    ) -> Optional[Dict[str, object]]:
        """The cached result for *task*, or None.  Fault-armed runs
        (per-task specs or parent-armed globals) bypass the cache —
        a fault's whole purpose is to exercise the real transport."""
        if self.cache is None:
            return None
        if task.faults or faults.active_specs():
            return None
        return self.cache.get(self._cache_key(task))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[CompileTask],
        install_signal_handlers: bool = False,
        progress: Optional[Callable[[TaskRecord], None]] = None,
    ) -> BatchSummary:
        """Run every task to exactly one terminal state (or drain on a
        signal) and return the summary.

        Args:
            tasks: Unique-id compile tasks.
            install_signal_handlers: Install SIGINT/SIGTERM graceful-
                drain handlers for the duration of the run (the CLI
                does; library embedders usually should not).
            progress: Optional callback invoked once per task as its
                record becomes terminal (and once per resumed task).
        """
        started = time.monotonic()
        self._mono_base = started
        self._wall_base = time.time()
        tracer = get_tracer()
        tasks = list(tasks)
        ids = [task.task_id for task in tasks]
        if len(set(ids)) != len(ids):
            raise InputError("batch contains duplicate task ids")

        resume_entries = (
            RunLedger.load(self.resume_path) if self.resume_path else {}
        )
        ledger = RunLedger(self.ledger_path) if self.ledger_path else None
        records: Dict[str, TaskRecord] = {}
        pending: Deque[_Attempt] = deque()
        for task in tasks:
            digest = task.digest()
            rec = TaskRecord(
                task_id=task.task_id, name=task.name, digest=digest
            )
            records[task.task_id] = rec
            prior = resume_entries.get(task.task_id)
            if RunLedger.is_reusable(
                prior, digest, retry_failed=self.retry_failed
            ):
                rec.adopt_prior(prior)
                tracer.event(
                    "task.done",
                    task_id=rec.task_id,
                    rung=rec.rung,
                    status=rec.status,
                    attempts=rec.attempts,
                    duration_s=round(rec.duration_s, 6),
                    resumed=True,
                )
                get_metrics().counter("batch.tasks.resumed").inc()
                if progress is not None:
                    progress(rec)
            else:
                if (
                    prior is not None
                    and prior.get("status") == "failed"
                    and prior.get("digest") == digest
                ):
                    # The resume decided to give a failed task another
                    # run — journal why, so the ledger tells the story.
                    kinds = prior.get("kinds")
                    reason = (
                        "--retry-failed" if self.retry_failed
                        else "worker-level failure kinds: {}".format(
                            ", ".join(str(k) for k in kinds)
                            if isinstance(kinds, list) and kinds else "?"
                        )
                    )
                    rec.notes.append(
                        "resume: retrying failed task ({})".format(reason)
                    )
                    tracer.event(
                        "resume.retry_failed",
                        task_id=task.task_id,
                        reason=reason,
                    )
                    get_metrics().counter("batch.resume_retries").inc()
                cached = self._cache_lookup(task)
                if cached is not None:
                    rec.adopt_cached(cached)
                    get_metrics().counter("batch.tasks.cache_hits").inc()
                    self._settle(rec, ledger, progress)
                    continue
                pending.append(_Attempt(task=task, number=1))

        in_flight: List[object] = []
        delayed: List[Tuple[float, _Attempt]] = []
        self._stop = False
        if self.use_pool:
            self._pool = WorkerPool(
                size=self.max_workers,
                kill_grace=self.kill_grace,
                max_tasks_per_worker=self.max_tasks_per_worker,
                idle_timeout=self.worker_idle_timeout,
            )
        try:
            with self._signal_guard(install_signal_handlers), \
                    tracer.span("batch.run", tasks=len(tasks)):
                while pending or delayed or in_flight:
                    now = time.monotonic()
                    if self._stop:
                        # Graceful drain: dispatch nothing further;
                        # in-flight workers finish or hit deadlines.
                        pending.clear()
                        delayed = []
                        if not in_flight:
                            break
                    if self._pool is not None:
                        self._pool.maintain(now)
                    due = [a for t, a in delayed if t <= now]
                    delayed = [(t, a) for t, a in delayed if t > now]
                    pending.extend(due)
                    while pending and len(in_flight) < self.max_workers:
                        self._dispatch(pending.popleft(), records, in_flight)
                    if not in_flight:
                        if delayed:
                            next_ready = min(t for t, _ in delayed)
                            time.sleep(
                                min(0.05, max(0.0, next_ready - time.monotonic()))
                            )
                        continue
                    horizon = min(handle.deadline for handle in in_flight)
                    timeout = max(0.01, min(0.2, horizon - time.monotonic()))
                    _mp_wait(
                        [self._waitable(handle) for handle in in_flight],
                        timeout=timeout,
                    )
                    now = time.monotonic()
                    done = [
                        handle for handle in in_flight
                        if self._handle_done(handle, now)
                    ]
                    for handle in done:
                        in_flight.remove(handle)
                        outcome = self._collect(handle)
                        self._absorb(
                            handle, outcome, records, delayed, ledger,
                            progress,
                        )
        finally:
            for handle in in_flight:  # exception safety net
                if isinstance(handle, PoolHandle):
                    continue  # pool shutdown below reaps these workers
                try:
                    _kill(handle.process, 0.1)
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
            if ledger is not None:
                ledger.close()

        summary = BatchSummary(
            records=[records[task_id] for task_id in ids],
            interrupted=self._stop,
            wall_s=time.monotonic() - started,
            breaker=self.breaker.snapshot(),
        )
        tracer.event(
            "batch.summary",
            interrupted=summary.interrupted,
            wall_s=round(summary.wall_s, 6),
            **{k: v for k, v in summary.counts.items()}
        )
        return summary

    # ------------------------------------------------------------------
    # Transport adapters (fork-per-task vs pool)
    # ------------------------------------------------------------------

    @staticmethod
    def _waitable(handle):
        """What ``multiprocessing.connection.wait`` should block on:
        the process sentinel (fork transport — readable at exit) or the
        result pipe (pool — readable at result arrival *or* EOF)."""
        if isinstance(handle, PoolHandle):
            return handle.waitable
        return handle.sentinel

    @staticmethod
    def _handle_done(handle, now: float) -> bool:
        if isinstance(handle, PoolHandle):
            return handle.is_done(now)
        return not handle.process.is_alive() or now >= handle.deadline

    def _collect(self, handle) -> WorkerOutcome:
        if isinstance(handle, PoolHandle):
            return self._pool.collect(handle)
        return reap_worker(
            handle,
            timed_out=handle.process.is_alive(),
            kill_grace=self.kill_grace,
        )

    # ------------------------------------------------------------------
    # Dispatch / outcome handling
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        attempt: _Attempt,
        records: Dict[str, TaskRecord],
        in_flight: List[object],
    ) -> None:
        rec = records[attempt.task.task_id]
        if (
            attempt.rung == PRIMARY_RUNG
            and self.config.engine in ("vector", "bitset")
            and not self.breaker.allow(self._breaker_key(PRIMARY_RUNG))
        ):
            attempt.rung = CIRCUIT_RUNG
            rec.notes.append(
                "circuit open for {}: routed to the reference engine".format(
                    self._breaker_key(PRIMARY_RUNG)
                )
            )
        config = self._config_for(attempt.rung)
        payload = build_payload(
            attempt.task, self.machine, self.registers, config
        )
        if self._pool is not None:
            handle = self._pool.dispatch(
                attempt.task,
                payload,
                self.task_timeout,
                attempt=attempt.number,
                rung=attempt.rung,
            )
        else:
            handle = start_worker(
                attempt.task,
                payload,
                self.task_timeout,
                attempt=attempt.number,
                rung=attempt.rung,
            )
        rec.attempts += 1
        rec.pids.append(handle.pid)
        rec.rung = self._breaker_key(attempt.rung)
        in_flight.append(handle)
        get_tracer().event(
            "worker.dispatch",
            task_id=attempt.task.task_id,
            rung=rec.rung,
            attempt=attempt.number,
            pid=handle.pid,
        )
        get_metrics().counter("batch.dispatches").inc()

    def _settle(
        self,
        rec: TaskRecord,
        ledger: Optional[RunLedger],
        progress: Optional[Callable[[TaskRecord], None]],
    ) -> None:
        tracer = get_tracer()
        metrics = get_metrics()
        if ledger is not None:
            ledger.record(rec.as_entry(finished_at=self._stamp()))
            tracer.event(
                "ledger.write", task_id=rec.task_id, status=rec.status
            )
            metrics.counter("ledger.writes").inc()
        tracer.event(
            "task.done",
            task_id=rec.task_id,
            rung=rec.rung,
            status=rec.status,
            attempts=rec.attempts,
            duration_s=round(rec.duration_s, 6),
        )
        metrics.counter("batch.tasks.{}".format(rec.status)).inc()
        if progress is not None:
            progress(rec)

    def _absorb(
        self,
        handle,
        outcome: WorkerOutcome,
        records: Dict[str, TaskRecord],
        delayed: List[Tuple[float, _Attempt]],
        ledger: Optional[RunLedger],
        progress: Optional[Callable[[TaskRecord], None]],
    ) -> None:
        rec = records[handle.task.task_id]
        rec.duration_s += outcome.duration_s
        key = self._breaker_key(handle.rung)
        tracer = get_tracer()
        tracer.event(
            "worker.reap",
            task_id=handle.task.task_id,
            rung=key,
            kind=outcome.kind,
            pid=outcome.pid,
            exitcode=outcome.exitcode,
            duration_s=round(outcome.duration_s, 6),
        )

        result = outcome.result
        if outcome.kind == "result" and isinstance(result, dict):
            # Fold the worker's per-phase wall seconds into the trace
            # as complete spans, tagged with the task and rung — the
            # per-phase table of ``repro stats`` aggregates them next
            # to the parent's own live spans.
            report = result.get("report")
            if isinstance(report, dict):
                phase_seconds = report.get("phase_seconds")
                if isinstance(phase_seconds, dict):
                    for phase, seconds in sorted(phase_seconds.items()):
                        tracer.span_point(
                            "phase.{}".format(phase),
                            seconds,
                            task_id=handle.task.task_id,
                            rung=key,
                        )
        if outcome.kind == "result" and \
                result["status"] != "worker-exception":
            completed_ok = result["exit_code"] == 0
            if completed_ok:
                self.breaker.record_success(key)
                if (
                    self.cache is not None
                    and result["status"] == "ok"
                    and handle.rung == PRIMARY_RUNG
                    and not handle.payload.get("faults")
                ):
                    # Only a clean primary-rung success is replayable;
                    # degraded results and fault-armed runs never enter.
                    self.cache.put(self._cache_key(handle.task), result)
            elif result.get("failure_kind") == "internal":
                # Input failures are the task's own defect and say
                # nothing about the rung's health.
                self.breaker.record_failure(key)

            if handle.rung == RECHECK_RUNG:
                provisional = rec.provisional or {}
                if completed_ok and result["status"] == "ok":
                    rec.finalize(
                        status="ok",
                        exit_code=0,
                        message="degraded result revalidated clean on the "
                        "strict reference rung",
                        metrics=result.get("metrics"),
                    )
                else:
                    rec.finalize(
                        status=str(provisional.get("status", "degraded")),
                        exit_code=provisional.get("exit_code", 0),
                        message="strict recheck did not improve the result",
                        metrics=provisional.get("metrics"),
                    )
                self._settle(rec, ledger, progress)
                return

            if (
                completed_ok
                and result["status"] == "degraded"
                and self.recheck_degraded
                and handle.rung == PRIMARY_RUNG
                and not self._stop
            ):
                rec.provisional = {
                    "status": "degraded",
                    "exit_code": 0,
                    "metrics": result.get("metrics"),
                }
                delayed.append((
                    time.monotonic(),
                    _Attempt(
                        task=handle.task,
                        number=handle.attempt + 1,
                        rung=RECHECK_RUNG,
                    ),
                ))
                return

            rec.finalize(
                status=result["status"] if completed_ok else "failed",
                exit_code=result["exit_code"],
                metrics=result.get("metrics"),
            )
            self._settle(rec, ledger, progress)
            return

        # Worker-level failure: timeout, crash/poison, or an exception
        # inside the worker harness.
        kind = outcome.kind if outcome.kind != "result" else "worker-exception"
        rec.kinds.append(kind)
        rec.message = outcome.message
        self.breaker.record_failure(key)

        if self._stop:
            # Interrupted attempts are not evidence about the task:
            # leave it unledgered so a resume recompiles it.
            rec.status = "pending"
            return
        if handle.rung == RECHECK_RUNG:
            provisional = rec.provisional or {}
            rec.finalize(
                status=str(provisional.get("status", "degraded")),
                exit_code=provisional.get("exit_code", 0),
                message="strict recheck {}; keeping the degraded "
                "result".format(kind),
                metrics=provisional.get("metrics"),
            )
            self._settle(rec, ledger, progress)
            return
        failures = len(rec.kinds)
        if (
            self.retry_policy.is_retryable(kind)
            and handle.attempt <= self.retry_policy.max_retries
        ):
            delay = self.retry_policy.delay(failures)
            tracer.event(
                "batch.retry",
                task_id=handle.task.task_id,
                kind=kind,
                failures=failures,
                delay_s=round(delay, 6),
            )
            get_metrics().counter("batch.retries").inc()
            delayed.append((
                time.monotonic() + delay,
                _Attempt(task=handle.task, number=handle.attempt + 1),
            ))
            return
        rec.finalize(
            status="failed",
            exit_code=1,
            message="failed after {} attempt(s): {}".format(
                rec.attempts, ", ".join(rec.kinds)
            ),
        )
        self._settle(rec, ledger, progress)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    @contextmanager
    def _signal_guard(self, enabled: bool):
        if (
            not enabled
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        def handler(signum, frame):  # noqa: ARG001
            self._stop = True

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        try:
            yield
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)
