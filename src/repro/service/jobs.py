"""Jobs and the dispatcher thread behind the compilation server.

The HTTP front end (:mod:`repro.service.server`) admits requests on
the asyncio loop thread; everything that involves a worker happens
here, on one dedicated **dispatcher thread** that owns the warm
:class:`~repro.service.pool.WorkerPool` and multiplexes in-flight
attempts exactly like the batch runner does — ``multiprocessing.
connection.wait`` over the workers' result pipes plus one wake socket
the loop thread pokes after every enqueue.

Per-job policy, in dispatch order:

1. **Deadline** — a job whose per-request deadline already passed is
   settled ``deadline-exceeded`` without burning a worker; otherwise
   the remaining budget is folded into the worker's ``DriverConfig.
   time_budget`` (the existing mid-phase ``check_deadline`` preemption
   path) *and* caps the hard kill timeout.
2. **Coalescing** — jobs are keyed by the compile-cache key (input
   digest + machine + strategy + config + version).  A job whose key
   matches a queued/running job attaches to it as a *follower*: one
   worker compile, N responses (dogpile protection).  Attachment
   happens at submit time on the loop thread, guarded by the same lock
   the dispatcher settles under.
3. **Cache** — before dispatch, a clean hit in the
   :class:`~repro.cache.CompileCache` settles the job (and all its
   followers) with ``rung="cache"`` and zero attempts.
4. **Circuit breaker** — an open breaker for the primary engine rung
   reroutes the attempt to the reference engine (surfaced in the
   response's ``rung``/``notes``), identical to batch policy.
5. **Retry** — worker-level failures (timeout, crash, worker
   exception) retry with the batch :class:`~repro.service.batch.
   RetryPolicy`; deterministic driver failures never retry.

**Drain** (SIGTERM/SIGINT or ``POST /drain``) reuses the batch
discipline: nothing new is dispatched, in-flight attempts finish or
hit their deadlines, and every still-queued job is settled
``interrupted`` — journaled to the :class:`~repro.service.checkpoint.
RunLedger` with its input digest, so nothing accepted is ever lost:
a non-terminal ledger status is exactly what resume recompiles.  The
pool is then retired through its normal shutdown (SIGTERM → SIGKILL,
full joins — zero orphans) and the ledger is closed.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _mp_wait
from typing import Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.cache import CompileCache, compile_cache_key
from repro.machine.presets import ALL_PRESETS
from repro.obs import get_metrics, get_tracer
from repro.pipeline.driver import DriverConfig
from repro.service.batch import CIRCUIT_RUNG, PRIMARY_RUNG, RetryPolicy
from repro.service.checkpoint import RunLedger
from repro.service.circuit import CircuitBreaker
from repro.service.manifest import CompileTask
from repro.service.pool import PoolHandle, WorkerPool
from repro.service.worker import WorkerOutcome, build_payload
from repro.utils.errors import InputError

#: Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"

#: Terminal job statuses beyond the driver's ok/degraded/failed:
#: ``deadline-exceeded`` (the per-request budget ran out) and
#: ``interrupted`` (drain cancelled it; journaled as resumable).
STATUS_DEADLINE = "deadline-exceeded"
STATUS_INTERRUPTED = "interrupted"


@dataclass
class Job:
    """One accepted compile request (leader or coalesced follower)."""

    job_id: str
    client: str
    task: CompileTask
    key: str
    deadline: Optional[float] = None  # monotonic, None = no deadline
    submitted: float = field(default_factory=time.monotonic)
    state: str = JOB_QUEUED
    status: Optional[str] = None
    exit_code: Optional[int] = None
    rung: str = ""
    attempts: int = 0
    pids: List[int] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)
    cached: bool = False
    coalesced_into: Optional[str] = None
    followers: List["Job"] = field(default_factory=list)
    message: str = ""
    notes: List[str] = field(default_factory=list)
    metrics: Optional[Dict[str, object]] = None
    duration_s: float = 0.0
    wait_s: float = 0.0
    callbacks: List[Callable[["Job"], None]] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.state == JOB_DONE

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def as_dict(self) -> Dict[str, object]:
        """The wire form of the job (poll/result responses)."""
        return {
            "job_id": self.job_id,
            "client": self.client,
            "state": self.state,
            "status": self.status,
            "exit_code": self.exit_code,
            "rung": self.rung,
            "attempts": self.attempts,
            "pids": list(self.pids),
            "kinds": list(self.kinds),
            "cached": self.cached,
            "coalesced": self.coalesced_into is not None,
            "coalesced_into": self.coalesced_into,
            "message": self.message,
            "notes": list(self.notes),
            "metrics": self.metrics,
            "duration_s": round(self.duration_s, 6),
            "wait_s": round(self.wait_s, 6),
            "digest": self.task.digest(),
        }

    def queue_entry(self, status: str, recorded_at: float) -> Dict[str, object]:
        """A durable-queue journal row (``accepted``/``dispatched``).

        Carries the full task payload (name/text/is_ir/client) so a
        restarted server can rebuild the job and resubmit it under its
        original id; both statuses are non-terminal, so resume and the
        ledger audit treat them as open work.
        """
        return {
            "task_id": self.job_id,
            "digest": self.task.digest(),
            "status": status,
            "client": self.client,
            "name": self.task.name,
            "text": self.task.text,
            "is_ir": self.task.is_ir,
            "attempts": self.attempts,
            "recorded_at": recorded_at,
        }

    def ledger_entry(self, finished_at: float) -> Dict[str, object]:
        """The run-ledger row: same shape the batch writes, so one
        ledger can journal both surfaces."""
        return {
            "task_id": self.job_id,
            "digest": self.task.digest(),
            "status": self.status,
            "exit_code": self.exit_code,
            "attempts": self.attempts,
            "pids": list(self.pids),
            "rung": self.rung,
            "kinds": list(self.kinds),
            "resumed": False,
            "cached": self.cached,
            "duration_s": round(self.duration_s, 6),
            "message": self.message,
            "metrics": self.metrics,
            "finished_at": finished_at,
        }


@dataclass
class _Attempt:
    job: Job
    number: int
    rung: str = PRIMARY_RUNG


class JobDispatcher:
    """The worker-owning thread: queue → pool → settled jobs.

    Args:
        machine: Machine preset name (validated here).
        registers: Register-count override for every job.
        driver_config: Base :class:`DriverConfig`; per-job deadlines
            tighten its ``time_budget``.
        pool_size: Warm pool worker count (= max in-flight attempts).
        task_timeout: Hard per-attempt wall-clock cap, seconds; a
            tighter per-job deadline lowers it further.
        retry_policy: Worker-level failure retry (None = defaults).
        breaker: Per-rung circuit breaker (None = defaults).
        cache: Optional compile cache, consulted pre-dispatch and
            populated from clean primary-rung successes.
        ledger_path: JSONL run ledger journaling every settled job
            (None disables journaling).
        settle_listener: Called once per settled job (leader *and*
            followers) on the dispatcher thread — the server wires
            token release and waiter wakeups here.
        kill_grace: SIGTERM→SIGKILL grace for overdue workers.
        max_tasks_per_worker: Pool recycling bound.
        worker_idle_timeout: Pool idle recycle, seconds.
        durable: Journal ``accepted``/``dispatched`` rows (with task
            payloads) so a restarted server resubmits queued work —
            requires ``ledger_path``.
        max_segment_bytes: Auto-compact the ledger past this size
            (see :class:`~repro.service.checkpoint.RunLedger`).
    """

    def __init__(
        self,
        machine: str = "two-unit-superscalar",
        registers: Optional[int] = None,
        driver_config: Optional[DriverConfig] = None,
        pool_size: int = 4,
        task_timeout: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        cache: Optional[CompileCache] = None,
        ledger_path: Optional[str] = None,
        settle_listener: Optional[Callable[[Job], None]] = None,
        kill_grace: float = 0.5,
        max_tasks_per_worker: Optional[int] = 256,
        worker_idle_timeout: Optional[float] = 300.0,
        durable: bool = False,
        max_segment_bytes: Optional[int] = None,
    ) -> None:
        if machine not in ALL_PRESETS:
            raise InputError(
                "unknown machine {!r}; choose from: {}".format(
                    machine, ", ".join(sorted(ALL_PRESETS))
                )
            )
        if pool_size < 1:
            raise InputError(
                "pool_size must be >= 1, got {}".format(pool_size)
            )
        if task_timeout <= 0:
            raise InputError(
                "task_timeout must be positive seconds, got {}".format(
                    task_timeout
                )
            )
        self.machine = machine
        self.registers = registers
        self.config = driver_config or DriverConfig()
        self.pool_size = pool_size
        self.task_timeout = task_timeout
        self.retry_policy = retry_policy or RetryPolicy(max_retries=1)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.cache = cache
        self.settle_listener = settle_listener
        self.kill_grace = kill_grace
        if durable and not ledger_path:
            raise InputError(
                "durable mode needs a ledger (pass ledger_path)"
            )
        self.durable = durable

        self._ledger = RunLedger(
            ledger_path, max_segment_bytes=max_segment_bytes
        ) if ledger_path else None
        self._pool = WorkerPool(
            size=pool_size,
            kill_grace=kill_grace,
            max_tasks_per_worker=max_tasks_per_worker,
            idle_timeout=worker_idle_timeout,
        )
        self._lock = threading.Lock()
        self._queue: Deque[_Attempt] = deque()
        self._delayed: List[Tuple[float, _Attempt]] = []
        self._inflight: List[Tuple[PoolHandle, Job]] = []
        self._coalesce: Dict[str, Job] = {}
        self._draining = False
        self._stopped = threading.Event()
        # Wake socket: the loop thread pokes one byte after enqueue /
        # drain so the dispatcher's _mp_wait returns immediately
        # instead of at its poll granularity.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wall_base = time.time()
        self._mono_base = time.monotonic()
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "dispatched": 0,
            "completed": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "retries": 0,
            "deadline_exceeded": 0,
            "interrupted": 0,
        }
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Loop-thread API
    # ------------------------------------------------------------------

    def _cache_key(self, task: CompileTask):
        return compile_cache_key(
            name=task.name,
            text=task.text,
            is_ir=task.is_ir,
            machine=self.machine,
            registers=self.registers,
            config=self.config,
        )

    def job_key(self, task: CompileTask) -> str:
        """The coalescing identity of *task*: the compile-cache key
        digest, so "identical" means identical everywhere the result
        could differ (input, machine, strategy, config, version)."""
        return self._cache_key(task).digest()

    def submit(self, job: Job) -> bool:
        """Enqueue an admitted *job*; returns True when it was
        coalesced onto an existing leader instead of queued.

        Jobs carrying per-request fault specs never coalesce (either
        direction) and never touch the cache — a fault drill must
        exercise the real transport.
        """
        tracer = get_tracer()
        with self._lock:
            if self._draining:
                # Admission already refuses during drain; a race that
                # slips one through still settles it safely.
                self._settle_locked(
                    job, STATUS_INTERRUPTED, exit_code=1,
                    message="server drained before dispatch",
                )
                return False
            self.stats["submitted"] += 1
            if self.durable and self._ledger is not None:
                # Durable queue: journal acceptance (with the task
                # payload) before anything can happen to the job, so a
                # crashed server resubmits it on restart.
                self._ledger.record(
                    job.queue_entry("accepted", self._stamp())
                )
            leader = self._coalesce.get(job.key)
            if (
                leader is not None
                and not leader.done
                and not job.task.faults
                and not leader.task.faults
            ):
                job.coalesced_into = leader.job_id
                leader.followers.append(job)
                self.stats["coalesced"] += 1
                get_metrics().counter("serve.coalesced").inc()
                tracer.event(
                    "serve.coalesce",
                    job_id=job.job_id,
                    leader=leader.job_id,
                )
                return True
            self._coalesce[job.key] = job
            self._queue.append(_Attempt(job=job, number=1))
        get_metrics().counter("serve.submitted").inc()
        get_metrics().gauge("serve.queue_depth").set(len(self._queue))
        self._wake()
        return False

    def settle_failed(self, job: Job, message: str) -> None:
        """Settle *job* terminally failed without ever dispatching it
        (quarantined poison input, refused recovery row)."""
        with self._lock:
            self._settle_locked(job, "failed", exit_code=1, message=message)

    def begin_drain(self) -> None:
        """Stop dispatching; settle the backlog as interrupted; let
        in-flight attempts finish; then retire the pool.  Idempotent;
        completion is observable via :meth:`join`."""
        with self._lock:
            self._draining = True
        get_tracer().event("serve.drain")
        self._wake()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the post-drain shutdown to complete."""
        return self._stopped.wait(timeout)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def snapshot(self) -> Dict[str, object]:
        """Dispatcher + pool + breaker state for ``/healthz``."""
        with self._lock:
            queued = len(self._queue) + len(self._delayed)
            inflight = len(self._inflight)
            stats = dict(self.stats)
            draining = self._draining
        return {
            "queued": queued,
            "in_flight": inflight,
            "draining": draining,
            "stats": stats,
            "pool": dict(self._pool.stats),
            "worker_pids": self._pool.worker_pids(),
            "breaker": self.breaker.snapshot(),
            "cache": self.cache.snapshot() if self.cache else None,
        }

    def close_in_workers(self, fds) -> None:
        """Descriptors every future pool worker must close at entry
        (the serve front end registers its listening sockets so a
        SIGKILL'd server's workers never keep the port bound)."""
        self._pool.close_in_children(list(fds))

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except OSError:  # pragma: no cover - shutdown race
            pass

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------

    def _stamp(self) -> float:
        """Wall-clock derived from one base + monotonic offset (same
        NTP-step hygiene as the batch ledger)."""
        return self._wall_base + (time.monotonic() - self._mono_base)

    def _config_for(self, rung: str, remaining: Optional[float]):
        config = self.config
        if rung == CIRCUIT_RUNG:
            # Degraded rung: reference engine, region cache off — the
            # "only clean primary-rung successes" rule at region grain.
            config = replace(config, engine="reference", region_cache=False)
        if remaining is not None:
            budget = config.time_budget
            budget = remaining if budget is None else min(budget, remaining)
            config = replace(config, time_budget=max(0.001, budget))
        return config

    def _breaker_key(self, rung: str) -> str:
        engine = "reference" if rung == CIRCUIT_RUNG else self.config.engine
        return "pinter/" + engine

    def _run(self) -> None:
        try:
            self._loop()
        finally:
            self._pool.shutdown()
            if self._ledger is not None:
                self._ledger.close()
            self._stopped.set()
            get_tracer().event("serve.dispatcher_stopped")

    def _loop(self) -> None:
        while True:
            now = time.monotonic()
            with self._lock:
                draining = self._draining
                if draining:
                    backlog = list(self._queue)
                    backlog.extend(a for _, a in self._delayed)
                    self._queue.clear()
                    self._delayed = []
                    for attempt in backlog:
                        self._settle_locked(
                            attempt.job, STATUS_INTERRUPTED, exit_code=1,
                            message="server drained before dispatch "
                            "(resubmit or resume from the ledger)",
                        )
                due = [a for t, a in self._delayed if t <= now]
                self._delayed = [
                    (t, a) for t, a in self._delayed if t > now
                ]
                self._queue.extend(due)
                ready: List[_Attempt] = []
                while self._queue and \
                        len(self._inflight) + len(ready) < self.pool_size:
                    ready.append(self._queue.popleft())
                idle = (
                    not self._inflight
                    and not self._queue
                    and not self._delayed
                )
                if draining and idle and not ready:
                    return
            for attempt in ready:
                try:
                    self._dispatch(attempt)
                except Exception as exc:  # noqa: BLE001
                    # A dispatch defect must never kill the dispatcher
                    # thread — that would wedge every waiting client.
                    # Settle the job failed and keep serving.
                    with self._lock:
                        self._settle_locked(
                            attempt.job, "failed", exit_code=1,
                            message="dispatch error: {}".format(exc),
                        )
                    get_tracer().event(
                        "serve.dispatch_error",
                        job_id=attempt.job.job_id,
                        error=str(exc),
                    )

            with self._lock:
                waitables = [h.waitable for h, _ in self._inflight]
                horizon = min(
                    (h.deadline for h, _ in self._inflight),
                    default=now + 0.2,
                )
                next_delay = min(
                    (t for t, _ in self._delayed), default=horizon
                )
            self._pool.maintain()
            timeout = max(0.01, min(0.25, min(horizon, next_delay) - now))
            _mp_wait(waitables + [self._wake_r], timeout=timeout)
            try:
                while self._wake_r.recv(4096):
                    pass
            except (BlockingIOError, OSError):
                pass

            now = time.monotonic()
            with self._lock:
                done = [
                    (h, j) for h, j in self._inflight if h.is_done(now)
                ]
                for pair in done:
                    self._inflight.remove(pair)
            for handle, job in done:
                outcome = self._pool.collect(handle)
                self._absorb(handle, job, outcome)

    # ------------------------------------------------------------------
    # Dispatch / absorb (dispatcher thread)
    # ------------------------------------------------------------------

    def _dispatch(self, attempt: _Attempt) -> None:
        job = attempt.job
        now = time.monotonic()
        remaining = job.remaining(now)
        if remaining is not None and remaining <= 0:
            with self._lock:
                self.stats["deadline_exceeded"] += 1
                self._settle_locked(
                    job, STATUS_DEADLINE, exit_code=1,
                    message="deadline expired before dispatch "
                    "({:.3f}s over)".format(-remaining),
                )
            get_metrics().counter("serve.deadline_exceeded").inc()
            return

        if (
            attempt.number == 1
            and attempt.rung == PRIMARY_RUNG
            and self.cache is not None
            and not job.task.faults
        ):
            cached = self.cache.get(self._cache_key(job.task))
            if cached is not None:
                with self._lock:
                    self.stats["cache_hits"] += 1
                    job.cached = True
                    job.rung = "cache"
                    job.metrics = cached.get("metrics") \
                        if isinstance(cached.get("metrics"), dict) else None
                    self._settle_locked(
                        job, str(cached.get("status", "ok")),
                        exit_code=0, message="compile cache hit",
                    )
                get_metrics().counter("serve.cache_hits").inc()
                return

        rung = attempt.rung
        if (
            rung == PRIMARY_RUNG
            and self.config.engine in ("vector", "bitset")
            and not self.breaker.allow(self._breaker_key(PRIMARY_RUNG))
        ):
            rung = CIRCUIT_RUNG
            job.notes.append(
                "circuit open for {}: routed to the reference "
                "engine".format(self._breaker_key(PRIMARY_RUNG))
            )

        config = self._config_for(rung, remaining)
        timeout = self.task_timeout
        if remaining is not None:
            # The hard kill backs the cooperative budget: give the
            # worker a short grace past the deadline to degrade
            # cleanly, then the pool kills it.
            timeout = min(timeout, remaining + 0.25)
        payload = build_payload(job.task, self.machine, self.registers, config)
        handle = self._pool.dispatch(
            job.task, payload, timeout,
            attempt=attempt.number, rung=rung,
        )
        with self._lock:
            job.state = JOB_RUNNING
            job.attempts += 1
            if handle.pid is not None:
                job.pids.append(handle.pid)
            job.rung = self._breaker_key(rung)
            self._inflight.append((handle, job))
            self.stats["dispatched"] += 1
            if self.durable and self._ledger is not None:
                # The "dispatched" marker is the poison-detection
                # breadcrumb: a job whose *last* row is still
                # "dispatched" when the server dies was in flight at
                # the crash — the supervisor counts repeats per digest.
                self._ledger.record(
                    job.queue_entry("dispatched", self._stamp())
                )
        get_metrics().counter("serve.dispatches").inc()
        get_tracer().event(
            "serve.dispatch",
            job_id=job.job_id,
            rung=job.rung,
            attempt=attempt.number,
            pid=handle.pid,
        )

    def _absorb(
        self, handle: PoolHandle, job: Job, outcome: WorkerOutcome
    ) -> None:
        job.duration_s += outcome.duration_s
        key = self._breaker_key(handle.rung)
        result = outcome.result
        if outcome.kind == "result" and isinstance(result, dict) and \
                result.get("status") != "worker-exception":
            completed_ok = result.get("exit_code") == 0
            if completed_ok:
                self.breaker.record_success(key)
                if (
                    self.cache is not None
                    and result.get("status") == "ok"
                    and handle.rung == PRIMARY_RUNG
                    and not handle.payload.get("faults")
                ):
                    self.cache.put(self._cache_key(job.task), result)
            elif result.get("failure_kind") == "internal":
                self.breaker.record_failure(key)
            status = str(result.get("status", "failed")) if completed_ok \
                else "failed"
            message = ""
            if not completed_ok:
                report = result.get("report")
                if isinstance(report, dict):
                    message = str(report.get("error", ""))
            metrics = result.get("metrics")
            with self._lock:
                job.metrics = metrics if isinstance(metrics, dict) else None
                self._settle_locked(
                    job, status,
                    exit_code=result.get("exit_code", 1)
                    if isinstance(result.get("exit_code"), int) else 1,
                    message=message,
                )
            return

        # Worker-level failure: timeout, crash/poison, or an exception
        # inside the worker harness.
        kind = outcome.kind if outcome.kind != "result" else \
            "worker-exception"
        job.kinds.append(kind)
        self.breaker.record_failure(key)
        remaining = job.remaining()
        if kind == "timeout" and remaining is not None and remaining <= 0:
            with self._lock:
                self.stats["deadline_exceeded"] += 1
                self._settle_locked(
                    job, STATUS_DEADLINE, exit_code=1,
                    message="worker preempted at the request deadline",
                )
            get_metrics().counter("serve.deadline_exceeded").inc()
            return
        with self._lock:
            draining = self._draining
        if draining:
            with self._lock:
                self._settle_locked(
                    job, STATUS_INTERRUPTED, exit_code=1,
                    message="worker {} during drain".format(kind),
                )
            return
        if (
            self.retry_policy.is_retryable(kind)
            and handle.attempt <= self.retry_policy.max_retries
        ):
            delay = self.retry_policy.delay(len(job.kinds))
            with self._lock:
                self.stats["retries"] += 1
                self._delayed.append((
                    time.monotonic() + delay,
                    _Attempt(job=job, number=handle.attempt + 1),
                ))
            get_metrics().counter("serve.retries").inc()
            get_tracer().event(
                "serve.retry",
                job_id=job.job_id,
                kind=kind,
                delay_s=round(delay, 6),
            )
            return
        with self._lock:
            self._settle_locked(
                job, "failed", exit_code=1,
                message="failed after {} attempt(s): {}".format(
                    job.attempts, ", ".join(job.kinds)
                ),
            )

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------

    def _settle_locked(
        self,
        job: Job,
        status: str,
        exit_code: Optional[int],
        message: str = "",
    ) -> None:
        """Finalize *job* and fan its outcome out to every follower.
        Caller holds ``self._lock``."""
        if job.done:
            return
        job.state = JOB_DONE
        job.status = status
        job.exit_code = exit_code
        if message:
            job.message = message
        job.wait_s = time.monotonic() - job.submitted
        if self._coalesce.get(job.key) is job:
            del self._coalesce[job.key]
        followers, job.followers = job.followers, []
        settled = [job]
        for follower in followers:
            follower.state = JOB_DONE
            follower.status = status
            follower.exit_code = exit_code
            follower.rung = job.rung
            follower.cached = job.cached
            follower.metrics = job.metrics
            follower.message = message or \
                "coalesced with {}".format(job.job_id)
            follower.notes.append(
                "result shared from coalesced job {}".format(job.job_id)
            )
            follower.wait_s = time.monotonic() - follower.submitted
            settled.append(follower)
        finished_at = self._stamp()
        tracer = get_tracer()
        metrics = get_metrics()
        for settled_job in settled:
            if self._ledger is not None:
                self._ledger.record(settled_job.ledger_entry(finished_at))
                metrics.counter("ledger.writes").inc()
            self.stats["completed"] += 1
            if status == STATUS_INTERRUPTED:
                self.stats["interrupted"] += 1
            tracer.event(
                "task.done",
                task_id=settled_job.job_id,
                rung=settled_job.rung,
                status=status,
                attempts=settled_job.attempts,
                duration_s=round(settled_job.duration_s, 6),
            )
            tracer.span_point(
                "serve.job",
                settled_job.wait_s,
                job_id=settled_job.job_id,
                status=status,
            )
            metrics.counter("serve.jobs.{}".format(status)).inc()
        if self.settle_listener is not None:
            for settled_job in settled:
                try:
                    self.settle_listener(settled_job)
                except Exception:  # noqa: BLE001 - listener is advisory
                    pass
        for settled_job in settled:
            callbacks, settled_job.callbacks = settled_job.callbacks, []
            for callback in callbacks:
                try:
                    callback(settled_job)
                except Exception:  # noqa: BLE001 - waiter is advisory
                    pass
