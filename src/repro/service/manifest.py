"""Batch inputs: compile tasks, manifest files, fuzz streams.

A *manifest* names the source programs of one batch.  Two formats are
accepted, sniffed by the first non-blank character:

* **JSON** — either a list of entries or ``{"tasks": [...]}``.  Each
  entry is a path string or an object ``{"path": "...", "ir": false,
  "name": "..."}`` (``ir`` marks textual-IR inputs, ``name`` overrides
  the function name derived from the file name).  Relative paths
  resolve against the manifest's own directory.
* **plain text** — one path per line; blank lines and ``#`` comments
  are skipped.

Manifest problems (unreadable file, bad JSON, unknown entry keys,
missing sources, duplicate task ids) raise
:class:`~repro.utils.errors.InputError`, which the CLI maps to the
documented exit code 2.

Every task carries a content digest (:meth:`CompileTask.digest`) — the
run ledger stores it so ``--resume`` recompiles a task whose source
changed since it was journaled.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.digest import input_digest
from repro.utils.errors import InputError
from repro.workloads.source_fuzz import SourceFuzzConfig, random_source


@dataclass(frozen=True)
class CompileTask:
    """One unit of batch work: a named source (or IR) text.

    Attributes:
        task_id: Unique, stable identifier within the batch (ledger
            key).
        name: Function name passed to the driver.
        text: The program text to compile.
        is_ir: True when *text* is textual IR rather than frontend
            source.
        path: Originating file, when the task came from a manifest.
        faults: Per-task fault specs (primitive dicts, see
            :meth:`repro.utils.faults.FaultSpec.as_dict`) armed inside
            this task's worker only — the deterministic handle the
            containment tests use to make exactly one task of a batch
            crash or hang.
    """

    task_id: str
    name: str
    text: str
    is_ir: bool = False
    path: Optional[str] = None
    faults: Tuple[Dict[str, object], ...] = field(default_factory=tuple)

    def digest(self) -> str:
        """Content hash identifying this task's *input* (not its id):
        resumability and the compile cache both key on it (see
        :func:`repro.utils.digest.input_digest`) so edited sources
        recompile."""
        return input_digest(self.name, self.text, self.is_ir)

    def with_faults(
        self, faults: Sequence[Dict[str, object]]
    ) -> "CompileTask":
        return CompileTask(
            task_id=self.task_id,
            name=self.name,
            text=self.text,
            is_ir=self.is_ir,
            path=self.path,
            faults=tuple(faults),
        )


def _task_from_entry(entry, manifest_dir: str, position: int) -> CompileTask:
    if isinstance(entry, str):
        entry = {"path": entry}
    if not isinstance(entry, dict):
        raise InputError(
            "manifest entry #{} must be a path string or an object, "
            "got {!r}".format(position, entry)
        )
    unknown = sorted(set(entry) - {"path", "ir", "name"})
    if unknown:
        raise InputError(
            "manifest entry #{} has unknown key(s): {}".format(
                position, ", ".join(unknown)
            )
        )
    path = entry.get("path")
    if not isinstance(path, str) or not path:
        raise InputError(
            "manifest entry #{} is missing a 'path' string".format(position)
        )
    resolved = path
    if not os.path.isabs(resolved):
        resolved = os.path.join(manifest_dir, path)
    try:
        with open(resolved) as handle:
            text = handle.read()
    except OSError as exc:
        raise InputError(
            "manifest entry #{}: cannot read {!r}: {}".format(
                position, path, exc
            )
        ) from None
    is_ir = entry.get("ir", False)
    if not isinstance(is_ir, bool):
        raise InputError(
            "manifest entry #{}: 'ir' must be a boolean".format(position)
        )
    default_name = os.path.basename(path).split(".")[0] or "program"
    name = entry.get("name", default_name)
    if not isinstance(name, str) or not name:
        raise InputError(
            "manifest entry #{}: 'name' must be a non-empty string".format(
                position
            )
        )
    return CompileTask(
        task_id=path, name=name, text=text, is_ir=is_ir, path=resolved
    )


def load_manifest(path: str) -> List[CompileTask]:
    """Read a manifest file into compile tasks.

    Raises:
        InputError: on any manifest defect (the batch exit-2 contract).
    """
    try:
        with open(path) as handle:
            raw = handle.read()
    except OSError as exc:
        raise InputError("cannot read manifest {!r}: {}".format(path, exc)) \
            from None

    manifest_dir = os.path.dirname(os.path.abspath(path))
    stripped = raw.lstrip()
    if stripped.startswith(("{", "[")):
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise InputError(
                "manifest {!r} is not valid JSON: {}".format(path, exc)
            ) from None
        if isinstance(doc, dict):
            entries = doc.get("tasks")
            if not isinstance(entries, list):
                raise InputError(
                    "manifest {!r}: top-level object needs a 'tasks' "
                    "list".format(path)
                )
            unknown = sorted(set(doc) - {"tasks"})
            if unknown:
                raise InputError(
                    "manifest {!r} has unknown top-level key(s): {}".format(
                        path, ", ".join(unknown)
                    )
                )
        elif isinstance(doc, list):
            entries = doc
        else:
            raise InputError(
                "manifest {!r}: top level must be a list or an object, "
                "got {}".format(path, type(doc).__name__)
            )
    else:
        entries = [
            line.strip()
            for line in raw.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]

    tasks = [
        _task_from_entry(entry, manifest_dir, i)
        for i, entry in enumerate(entries)
    ]
    seen: Dict[str, int] = {}
    for i, task in enumerate(tasks):
        if task.task_id in seen:
            raise InputError(
                "manifest {!r}: duplicate task {!r} (entries #{} and "
                "#{})".format(path, task.task_id, seen[task.task_id], i)
            )
        seen[task.task_id] = i
    return tasks


def fuzz_tasks(
    count: int,
    seed: int = 0,
    num_statements: int = 8,
) -> List[CompileTask]:
    """*count* deterministic random-source tasks (the
    ``workloads.source_fuzz`` stream).  Task ids encode the seed, so
    the same invocation resumes cleanly against its own ledger."""
    if count < 1:
        raise InputError("fuzz task count must be positive, got {}".format(count))
    tasks = []
    for i in range(count):
        config = SourceFuzzConfig(seed=seed + i, num_statements=num_statements)
        task_id = "fuzz/{}/{:04d}".format(seed, i)
        tasks.append(CompileTask(
            task_id=task_id,
            name="fuzz_{}_{}".format(seed, i),
            text=random_source(config),
        ))
    return tasks
