"""Supervised self-healing serve mode (``repro serve --supervised``).

:class:`Supervisor` is a small parent process that runs the
:class:`~repro.service.server.CompileServer` as a **child** process
(``python -m repro serve --durable ...``) and keeps it alive:

* **liveness** — the child is polled for exit and probed over HTTP
  (``GET /healthz``).  A dead process is a *crash*; a live process
  whose health endpoint stops answering for ``hang_timeout`` seconds
  is a *hang* and is SIGKILLed.
* **restart** — after a crash/hang the child is relaunched with the
  same address (port 0 is resolved once, up front, so clients keep a
  stable endpoint across restarts) after an exponential backoff
  (``backoff * 2^k``, capped), and a **restart budget** bounds how
  many times a persistently sick server is revived before the
  supervisor gives up with :data:`EXIT_SUPERVISOR_GAVE_UP`.
* **resume** — the child runs in durable mode against the shared run
  ledger, so every job accepted before the crash is journaled
  (``accepted``/``dispatched`` rows with full task payloads) and the
  restarted server resubmits it under its original job id: queued
  work survives the restart, settled exactly once.
* **poison quarantine** — before each restart the supervisor reads
  the ledger: a job whose *last* row is ``dispatched`` was in flight
  when the server died, so its input digest is a crash suspect.
  Suspect counts persist in ``<ledger>.poison.json``; a digest seen
  in ``poison_threshold`` crashes is **quarantined** — the restarted
  server refuses it (HTTP 403 ``poisoned-input``) and settles its
  recovered rows ``failed`` instead of re-dispatching.  A restart
  that quarantines a new digest does **not** burn the restart budget:
  the cause was just removed, so the budget is saved for failures the
  supervisor cannot explain.

A clean child exit (graceful drain, code 0) ends supervision with
code 0.  SIGTERM/SIGINT to the supervisor forwards SIGTERM to the
child (graceful drain) and waits for it.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.obs import get_metrics, get_tracer
from repro.service.checkpoint import RunLedger, TERMINAL_STATUSES
from repro.utils.errors import InputError

#: Supervisor exit code when the restart budget runs out.
EXIT_SUPERVISOR_GAVE_UP = 71

#: Defaults (also the CLI defaults).
DEFAULT_RESTART_BUDGET = 5
DEFAULT_BACKOFF = 0.5
DEFAULT_BACKOFF_CAP = 30.0
DEFAULT_HEALTH_INTERVAL = 0.25
DEFAULT_HANG_TIMEOUT = 10.0
DEFAULT_STARTUP_TIMEOUT = 30.0
DEFAULT_POISON_THRESHOLD = 2


# ----------------------------------------------------------------------
# Poison-task list (persisted next to the ledger)
# ----------------------------------------------------------------------

def poison_path_for(ledger_path: str) -> str:
    """Where the poison-task list lives for *ledger_path*."""
    return ledger_path + ".poison.json"


def load_poison(path: str) -> Dict[str, object]:
    """Parse a poison-task list; a missing/corrupt file is empty.

    Shape: ``{"suspects": {digest: crash_count}, "quarantined":
    [digest, ...]}``.
    """
    empty: Dict[str, object] = {"suspects": {}, "quarantined": []}
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return empty
    if not isinstance(data, dict):
        return empty
    suspects = data.get("suspects")
    quarantined = data.get("quarantined")
    return {
        "suspects": {
            digest: int(count)
            for digest, count in suspects.items()
            if isinstance(digest, str) and isinstance(count, int)
        } if isinstance(suspects, dict) else {},
        "quarantined": [
            digest for digest in quarantined if isinstance(digest, str)
        ] if isinstance(quarantined, list) else [],
    }


def save_poison(path: str, data: Dict[str, object]) -> None:
    """Atomically persist the poison-task list (temp + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def crash_suspects(ledger_path: str) -> List[str]:
    """Input digests whose last ledger row is ``dispatched`` — the
    jobs that were in flight when the server died."""
    suspects = []
    for record in RunLedger.load(ledger_path).values():
        if record.get("status") == "dispatched":
            digest = record.get("digest")
            if isinstance(digest, str):
                suspects.append(digest)
    return sorted(set(suspects))


def pick_free_port(host: str) -> int:
    """Resolve port 0 to a concrete free port, once, so every child
    incarnation binds the same address."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


class Supervisor:
    """Run a durable CompileServer child and keep it alive.

    Args:
        ledger_path: The shared durable run ledger (required — resume
            and poison detection both live here).
        child_args: Extra ``repro serve`` CLI arguments for the child
            (pool size, machine, cache, ...).  The supervisor itself
            owns ``--host/--port/--ledger/--durable/--poison-list``.
        host/port: Bind address; port 0 is resolved once up front.
        restart_budget: Unexplained crash/hang restarts allowed before
            giving up (quarantining restarts are free).
        backoff/backoff_cap: Exponential restart delay, seconds.
        health_interval: Seconds between liveness probes.
        hang_timeout: Consecutive probe-failure window after which a
            live child counts as hung and is killed, seconds.
        startup_timeout: Ceiling on waiting for a fresh child to
            answer its first health probe, seconds.
        poison_threshold: Crashes-in-flight needed to quarantine an
            input digest.
        drain_timeout: Grace given to a SIGTERM'd child, seconds.
    """

    def __init__(
        self,
        ledger_path: str,
        child_args: Optional[List[str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        backoff: float = DEFAULT_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        hang_timeout: float = DEFAULT_HANG_TIMEOUT,
        startup_timeout: float = DEFAULT_STARTUP_TIMEOUT,
        poison_threshold: int = DEFAULT_POISON_THRESHOLD,
        drain_timeout: float = 30.0,
        quiet: bool = False,
    ) -> None:
        if not ledger_path:
            raise InputError("supervised serve requires --ledger")
        if restart_budget < 0:
            raise InputError(
                "restart_budget must be >= 0, got {}".format(restart_budget)
            )
        if poison_threshold < 1:
            raise InputError(
                "poison_threshold must be >= 1, got {}".format(
                    poison_threshold
                )
            )
        self.ledger_path = ledger_path
        self.poison_path = poison_path_for(ledger_path)
        self.child_args = list(child_args or [])
        self.host = host
        self.port = port if port else pick_free_port(host)
        self.restart_budget = restart_budget
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.health_interval = health_interval
        self.hang_timeout = hang_timeout
        self.startup_timeout = startup_timeout
        self.poison_threshold = poison_threshold
        self.drain_timeout = drain_timeout
        self.quiet = quiet

        #: Observable state (tests / chaos harness).
        self.restarts = 0
        self.hangs = 0
        self.quarantined: List[str] = []
        self.child: Optional[subprocess.Popen] = None
        self.ready = threading.Event()
        self._shutdown = threading.Event()

    # ------------------------------------------------------------------
    # Child management
    # ------------------------------------------------------------------

    def _child_argv(self) -> List[str]:
        return [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", str(self.port),
            "--ledger", self.ledger_path,
            "--durable",
            "--poison-list", self.poison_path,
        ] + self.child_args

    def _spawn(self) -> subprocess.Popen:
        child = subprocess.Popen(self._child_argv())
        get_tracer().event(
            "supervisor.spawn", pid=child.pid, port=self.port,
        )
        get_metrics().counter("supervisor.spawns").inc()
        self._say(
            "supervisor: started server pid={} on http://{}:{}".format(
                child.pid, self.host, self.port
            )
        )
        return child

    def healthz(self, timeout: float = 2.0) -> Optional[Dict[str, object]]:
        """One health probe; None when the server did not answer."""
        url = "http://{}:{}/healthz".format(self.host, self.port)
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError):
            return None

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(message, flush=True)

    # ------------------------------------------------------------------
    # Supervision loop
    # ------------------------------------------------------------------

    def run(self, install_signal_handlers: bool = True) -> int:
        """Supervise until the child drains cleanly, the budget runs
        out, or the supervisor is told to shut down.  Returns the
        process exit code."""
        installed: List[Tuple[int, object]] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous = signal.signal(
                        signum, lambda *_: self.request_shutdown()
                    )
                    installed.append((signum, previous))
                except (ValueError, OSError):  # non-main thread
                    pass
        try:
            return self._supervise()
        finally:
            for signum, previous in installed:
                try:
                    signal.signal(signum, previous)
                except (ValueError, OSError):
                    pass

    def request_shutdown(self) -> None:
        """Thread/signal-safe: drain the child and stop supervising."""
        self._shutdown.set()

    def _supervise(self) -> int:
        spent = 0
        while True:
            self.child = self._spawn()
            hung = self._watch(self.child)
            if hung:
                self.hangs += 1
                get_metrics().counter("supervisor.hangs").inc()
                self._kill(self.child)
            code = self.child.wait()
            if self._shutdown.is_set():
                self._say(
                    "supervisor: shut down (child exited {})".format(code)
                )
                return 0 if code in (0, -signal.SIGTERM) else code
            if code == 0 and not hung:
                self._say("supervisor: server drained cleanly")
                return 0
            # Crash or hang: account poison before deciding whether
            # this restart costs budget.
            newly_quarantined = self._account_poison()
            get_tracer().event(
                "supervisor.child_died",
                exit_code=code,
                hung=hung,
                quarantined=newly_quarantined,
            )
            if newly_quarantined:
                self.quarantined.extend(newly_quarantined)
                self._say(
                    "supervisor: quarantined poison input(s) {} — "
                    "restarting (budget untouched)".format(
                        ", ".join(d[:12] for d in newly_quarantined)
                    )
                )
                if self._shutdown.wait(min(self.backoff, 0.5)):
                    return 0
                continue
            spent += 1
            self.restarts += 1
            get_metrics().counter("supervisor.restarts").inc()
            if spent > self.restart_budget:
                self._say(
                    "supervisor: restart budget ({}) exhausted; giving "
                    "up".format(self.restart_budget)
                )
                return EXIT_SUPERVISOR_GAVE_UP
            delay = min(
                self.backoff_cap, self.backoff * (2 ** (spent - 1))
            )
            self._say(
                "supervisor: server died ({}{}); restart {}/{} in "
                "{:.2f}s".format(
                    "hang" if hung else "exit {}".format(code),
                    "", spent, self.restart_budget, delay,
                )
            )
            if self._shutdown.wait(delay):
                return 0

    def _watch(self, child: subprocess.Popen) -> bool:
        """Block while *child* looks healthy; True means it hung.

        Returns (without killing) as soon as the child exits on its
        own; on shutdown requests, forwards SIGTERM and waits out the
        drain."""
        started = time.monotonic()
        last_ok: Optional[float] = None
        next_probe = 0.0
        while True:
            if child.poll() is not None:
                return False
            if self._shutdown.is_set():
                self._terminate(child)
                return False
            now = time.monotonic()
            if now >= next_probe:
                next_probe = now + self.health_interval
                if self.healthz() is not None:
                    last_ok = now
                    self.ready.set()
            if last_ok is None:
                if now - started > self.startup_timeout:
                    return True  # never came up: treat as hung
            elif now - last_ok > self.hang_timeout:
                return True
            time.sleep(min(0.05, self.health_interval))

    def _terminate(self, child: subprocess.Popen) -> None:
        """Graceful SIGTERM → drain wait → SIGKILL escalation."""
        if child.poll() is not None:
            return
        try:
            child.send_signal(signal.SIGTERM)
        except OSError:
            return
        try:
            child.wait(timeout=self.drain_timeout)
        except subprocess.TimeoutExpired:
            self._kill(child)

    def _kill(self, child: subprocess.Popen) -> None:
        if child.poll() is not None:
            return
        try:
            child.kill()
        except OSError:
            pass
        try:
            child.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Poison accounting
    # ------------------------------------------------------------------

    def _account_poison(self) -> List[str]:
        """Bump crash-suspect counts from the ledger; returns digests
        newly crossing the quarantine threshold."""
        suspects = crash_suspects(self.ledger_path)
        if not suspects:
            return []
        data = load_poison(self.poison_path)
        counts: Dict[str, int] = data["suspects"]  # type: ignore
        quarantined: List[str] = data["quarantined"]  # type: ignore
        fresh: List[str] = []
        for digest in suspects:
            counts[digest] = counts.get(digest, 0) + 1
            if counts[digest] >= self.poison_threshold and \
                    digest not in quarantined:
                quarantined.append(digest)
                fresh.append(digest)
                get_metrics().counter("supervisor.poisoned_inputs").inc()
                get_tracer().event(
                    "supervisor.quarantine", digest=digest,
                    crashes=counts[digest],
                )
        save_poison(self.poison_path, data)
        return fresh


def audit_exactly_once(ledger_path: str) -> Dict[str, object]:
    """Exactly-once settlement check over a durable serve ledger.

    Classifies every journaled job: ``settled`` (exactly one terminal
    row), ``open`` (accepted/dispatched, never settled — lost work if
    the service is down for good), ``duplicated`` (more than one
    terminal row — double settlement).  The chaos harness asserts
    ``lost == duplicated == []`` after every campaign.
    """
    terminal_counts: Dict[str, int] = {}
    seen: Dict[str, str] = {}
    segments = [
        ledger_path + ".compacting", ledger_path,
    ]
    for segment in segments:
        try:
            handle = open(segment, "rb")
        except OSError:
            continue
        with handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                if not isinstance(record, dict):
                    continue
                task_id = record.get("task_id")
                status = record.get("status")
                if not isinstance(task_id, str):
                    continue
                seen[task_id] = str(status)
                if status in TERMINAL_STATUSES or status in (
                    "interrupted", "deadline-exceeded",
                ):
                    terminal_counts[task_id] = \
                        terminal_counts.get(task_id, 0) + 1
    lost = sorted(
        task_id for task_id in seen if task_id not in terminal_counts
    )
    duplicated = sorted(
        task_id for task_id, n in terminal_counts.items() if n > 1
    )
    return {
        "jobs": len(seen),
        "settled": len(terminal_counts),
        "lost": lost,
        "duplicated": duplicated,
        "ok": not lost and not duplicated,
    }
