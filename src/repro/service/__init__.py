"""Fault-tolerant batch compilation service.

Public surface of the ``repro.service`` package: build tasks
(:func:`load_manifest`, :func:`fuzz_tasks`), run them on isolated
workers with retry/circuit/checkpoint policy (:class:`BatchRunner`) —
per-attempt fork workers or a persistent :class:`WorkerPool` — or run
a single isolated attempt (:func:`run_one`).  Region-sharded PIG
construction (:func:`build_sharded_pig`) reuses the same pool to fan
per-region graph builds across workers.  The long-running HTTP/JSON
front end (:class:`CompileServer`, ``repro serve``) drives the same
machinery as a service: token-style admission
(:class:`SessionTable`), request coalescing and deadline-aware
dispatch (:class:`JobDispatcher`), and graceful SIGTERM drain.
A self-healing parent (:class:`Supervisor`, ``repro serve
--supervised``) restarts the server on crash/hang with backoff,
a restart budget, and poison-input quarantine, resuming journaled
jobs from the run ledger.
"""

from repro.service.batch import (
    EXIT_BATCH_FAILURES,
    EXIT_BATCH_INPUT,
    EXIT_BATCH_INTERRUPTED,
    EXIT_BATCH_OK,
    BatchRunner,
    BatchSummary,
    RetryPolicy,
    TaskRecord,
)
from repro.service.checkpoint import RunLedger, TERMINAL_STATUSES
from repro.service.circuit import CircuitBreaker
from repro.service.jobs import (
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    STATUS_DEADLINE,
    STATUS_INTERRUPTED,
    Job,
    JobDispatcher,
)
from repro.service.manifest import CompileTask, fuzz_tasks, load_manifest
from repro.service.pool import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_TASKS_PER_WORKER,
    PoolHandle,
    WorkerPool,
)
from repro.service.shard import (
    PIG_REGION_KIND,
    SHARDABLE_ENGINES,
    build_region_payload,
    build_sharded_pig,
    execute_pig_region,
    machine_from_wire,
    machine_to_wire,
    shutdown_shared_pool,
)
from repro.service.server import (
    EXIT_SERVE_OK,
    CompileServer,
)
from repro.service.supervisor import (
    EXIT_SUPERVISOR_GAVE_UP,
    Supervisor,
    audit_exactly_once,
    crash_suspects,
)
from repro.service.session import (
    SHED_CLIENT_QUEUE,
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    SessionTable,
    ShedDecision,
)
from repro.service.worker import WorkerOutcome, run_one

__all__ = [
    "BatchRunner",
    "BatchSummary",
    "CircuitBreaker",
    "CompileServer",
    "CompileTask",
    "EXIT_SERVE_OK",
    "EXIT_SUPERVISOR_GAVE_UP",
    "JOB_DONE",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobDispatcher",
    "SHED_CLIENT_QUEUE",
    "SHED_DRAINING",
    "SHED_QUEUE_FULL",
    "STATUS_DEADLINE",
    "STATUS_INTERRUPTED",
    "SessionTable",
    "ShedDecision",
    "Supervisor",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_TASKS_PER_WORKER",
    "EXIT_BATCH_FAILURES",
    "EXIT_BATCH_INPUT",
    "EXIT_BATCH_INTERRUPTED",
    "EXIT_BATCH_OK",
    "PIG_REGION_KIND",
    "PoolHandle",
    "RetryPolicy",
    "RunLedger",
    "SHARDABLE_ENGINES",
    "TERMINAL_STATUSES",
    "TaskRecord",
    "WorkerOutcome",
    "WorkerPool",
    "audit_exactly_once",
    "crash_suspects",
    "build_region_payload",
    "build_sharded_pig",
    "execute_pig_region",
    "fuzz_tasks",
    "load_manifest",
    "machine_from_wire",
    "machine_to_wire",
    "run_one",
    "shutdown_shared_pool",
]
