"""Subprocess-isolated compile worker.

One worker process runs exactly one compile attempt and streams one
structured result object back over a pipe.  The isolation is the whole
point: a crash (``os._exit``, a segfault stand-in), an OOM kill, an
infinite loop, or an armed fault inside the compile can take down only
its own process — the parent observes a dead or overdue child and
applies retry/circuit/ledger policy, never a traceback.

Parent-side protocol per attempt:

1. :func:`build_payload` — reduce the task + driver config to a dict of
   primitives (safe under both ``fork`` and ``spawn`` start methods;
   armed fault specs ship inside it so injection is start-method
   agnostic).
2. :func:`start_worker` — fork/spawn the child with the write end of a
   pipe.
3. Wait on ``process.sentinel`` up to the task deadline.
4. :func:`reap_worker` — on exit: read and *validate* the result (a
   poisoned or missing result is classified as a crash); past the
   deadline: escalate SIGTERM → SIGKILL, then classify as a timeout.
   Either way the child is fully joined — no zombies, no orphans.

Worker-level fault actions at the ``service.worker`` trip point
(:mod:`repro.utils.faults`): ``crash`` exits with
:data:`~repro.utils.faults.CRASH_EXIT_CODE` before compiling, ``hang``
sleeps past any reasonable deadline, ``raise`` surfaces as a
``worker-exception`` result, and ``poison-result`` ships a malformed
object in place of the result dict.  Every containment path is
therefore deterministically testable.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.manifest import CompileTask
from repro.utils import faults

#: Result schema version (bumped on shape changes; a mismatch is
#: treated as a malformed result, i.e. a crash).
RESULT_VERSION = 1

#: Statuses a well-formed worker result may carry.  The first three
#: mirror :attr:`repro.pipeline.driver.CompileReport.status`;
#: ``worker-exception`` means the compile infrastructure itself blew
#: up (retryable, like a crash, but with a message attached).
RESULT_STATUSES = ("ok", "degraded", "failed", "worker-exception")

#: The malformed object a ``poison-result`` fault ships instead of a
#: result dict.
POISON_PAYLOAD = "<<poisoned-result>>"

#: Grace between SIGTERM and SIGKILL when collecting an overdue worker.
DEFAULT_KILL_GRACE = 0.5


#: Environment variable forcing a multiprocessing start method
#: (``fork``, ``spawn``, or ``forkserver``) for every worker the
#: service starts — both fork-per-task and pool workers.  The payload
#: protocol is primitive-only precisely so that all of them behave
#: identically; the forced-``spawn`` regression test pins that down.
START_METHOD_ENV = "REPRO_START_METHOD"


def _mp_context():
    """``fork`` where available (fast, shares the warm interpreter),
    the platform default elsewhere; ``$REPRO_START_METHOD`` overrides
    both.  The payload protocol keeps every method correct."""
    override = os.environ.get(START_METHOD_ENV)
    if override:
        try:
            return multiprocessing.get_context(override)
        except ValueError:
            from repro.utils.errors import InputError

            raise InputError(
                "unknown start method {!r} in ${} (choose from: {})".format(
                    override, START_METHOD_ENV,
                    ", ".join(multiprocessing.get_all_start_methods()),
                )
            ) from None
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def build_payload(
    task: CompileTask,
    machine: str,
    registers: Optional[int],
    config,
) -> Dict[str, object]:
    """Primitive-only attempt description.

    *config* is a :class:`~repro.pipeline.driver.DriverConfig`; armed
    parent-process faults plus the task's own fault specs are folded
    in (task specs win on point collisions, letting a test target one
    task of a batch)."""
    spec_dicts = [spec.as_dict() for spec in faults.active_specs()]
    spec_dicts.extend(dict(d) for d in task.faults)
    return {
        "v": RESULT_VERSION,
        "task_id": task.task_id,
        "name": task.name,
        "text": task.text,
        "is_ir": task.is_ir,
        "machine": machine,
        "registers": registers,
        "config": dataclasses.asdict(config),
        "faults": spec_dicts,
    }


def detach_worker_process() -> None:
    """One-time child-process setup shared by fork-per-task workers
    and pool workers.

    Installs the worker's own signal dispositions (the parent's drain
    handler must not leak in under ``fork``): SIGTERM kills (the
    parent's timeout escalation relies on it), SIGINT is ignored so an
    interactive Ctrl-C drains the batch gracefully — in-flight
    compiles finish and reach the ledger.

    Also detaches the inherited observability globals: under ``fork``
    the child holds the parent's installed tracer (and its open
    descriptor) and metrics registry.  The trace is the *parent's*
    journal — a worker writing to it would interleave colliding span
    ids from every child — so both are reset; worker phase timings
    travel home inside the result's ``report.phase_seconds`` and the
    parent folds them into the trace as complete spans.
    """
    try:  # pragma: no cover - exercised in subprocesses
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass

    from repro import obs

    obs.set_tracer(None)
    obs.set_metrics(None)


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one compile attempt described by *payload* and return the
    result dict (primitive-only, schema-checked by the parent via
    :func:`validate_result`).

    Arms exactly the fault specs the payload carries — previously
    armed points are cleared first, so a pool worker running many
    tasks can never leak one task's faults into the next.  Worker-
    level fault actions fire here: ``crash`` exits the process,
    ``hang`` sleeps until the parent kills it, ``raise`` becomes a
    ``worker-exception`` result.
    """
    faults.clear()
    for spec_dict in payload.get("faults", ()):
        faults.install(faults.FaultSpec.from_dict(spec_dict))

    result: Dict[str, object] = {
        "v": RESULT_VERSION,
        "task_id": payload["task_id"],
        "pid": os.getpid(),
    }
    try:
        # Worker-level fault simulations fire before any compile work:
        # crash exits the process here, hang sleeps until killed.
        faults.trip("service.worker")

        if payload.get("kind") in (
            "pig_region", "interference_region", "sched_region"
        ):
            from repro.service.shard import execute_region_payload

            result.update(execute_region_payload(payload))
            return result

        from repro.machine.presets import ALL_PRESETS
        from repro.pipeline.driver import CompilationDriver, DriverConfig
        from repro.utils.errors import InputError

        machine_name = payload["machine"]
        if machine_name not in ALL_PRESETS:
            raise InputError("unknown machine {!r}".format(machine_name))
        driver = CompilationDriver(
            ALL_PRESETS[machine_name](),
            num_registers=payload["registers"],
            config=DriverConfig(**payload["config"]),
        )
        outcome = driver.compile_text(
            payload["text"],
            is_ir=payload["is_ir"],
            name=payload["name"],
        )
        report = outcome.report
        result.update(
            status=report.status,
            exit_code=report.exit_code,
            failure_kind=report.failure_kind,
            report=report.as_dict(),
            metrics=outcome.result.as_row() if outcome.ok else None,
        )
    except BaseException as exc:  # noqa: BLE001 - the pipe IS the report
        result.update(
            status="worker-exception",
            exit_code=1,
            failure_kind="internal",
            report={"error": "{}: {}".format(type(exc).__name__, exc)},
            metrics=None,
        )
    return result


def wire_result(result: Dict[str, object]) -> object:
    """What actually goes on the pipe for *result*: the result itself,
    or the poison object when a ``poison-result`` fault is armed."""
    poison = faults.spec_at("service.worker")
    if poison is not None and poison.action == "poison-result":
        return POISON_PAYLOAD
    return result


def worker_main(payload: Dict[str, object], conn) -> None:
    """Child-process entry: compile one task, send one result, exit."""
    detach_worker_process()
    result = execute_payload(payload)
    try:
        conn.send(wire_result(result))
    except (BrokenPipeError, OSError):  # parent already gone
        pass
    finally:
        conn.close()


@dataclass
class WorkerOutcome:
    """What the parent learned from one worker attempt.

    Attributes:
        kind: ``"result"`` (validated result in :attr:`result`),
            ``"timeout"`` (killed at the deadline), or ``"crash"``
            (died, or returned nothing/garbage).
        result: The validated result dict for ``"result"``, else None.
        pid: Worker process id (always known — ledgered so tests can
            assert no orphans).
        exitcode: Child exit code as observed by ``multiprocessing``
            (negative = killed by that signal), None if unknowable.
        duration_s: Wall time of the attempt as seen by the parent.
    """

    kind: str
    result: Optional[Dict[str, object]]
    pid: Optional[int]
    exitcode: Optional[int]
    duration_s: float

    @property
    def message(self) -> str:
        if self.kind == "timeout":
            return "worker killed at task timeout (pid {})".format(self.pid)
        if self.kind == "crash":
            return "worker crashed or returned a malformed result " \
                "(pid {}, exitcode {})".format(self.pid, self.exitcode)
        if self.result is not None and self.result.get("status") == \
                "worker-exception":
            report = self.result.get("report") or {}
            return str(report.get("error", "worker exception"))
        return ""


@dataclass
class WorkerHandle:
    """One in-flight attempt (parent side)."""

    process: object
    conn: object
    task: CompileTask
    attempt: int
    rung: str
    payload: Dict[str, object]
    started: float = field(default_factory=time.monotonic)
    deadline: float = 0.0

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


def start_worker(
    task: CompileTask,
    payload: Dict[str, object],
    timeout: float,
    attempt: int = 1,
    rung: str = "primary",
) -> WorkerHandle:
    """Fork/spawn one worker for *task* and return its handle.  The
    deadline is ``now + timeout``; the caller owns waiting and
    reaping."""
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=worker_main,
        args=(payload, child_conn),
        daemon=True,
        name="repro-worker-{}".format(task.task_id),
    )
    process.start()
    child_conn.close()
    handle = WorkerHandle(
        process=process,
        conn=parent_conn,
        task=task,
        attempt=attempt,
        rung=rung,
        payload=payload,
    )
    handle.deadline = handle.started + timeout
    return handle


def validate_result(obj, task_id: str) -> Optional[Dict[str, object]]:
    """Schema-check a worker result; None means "treat as a crash".

    A compromised or fault-poisoned worker may send anything — the
    parent trusts nothing it cannot type-check."""
    if not isinstance(obj, dict):
        return None
    if obj.get("v") != RESULT_VERSION:
        return None
    if obj.get("task_id") != task_id:
        return None
    if obj.get("status") not in RESULT_STATUSES:
        return None
    if not isinstance(obj.get("pid"), int):
        return None
    if not isinstance(obj.get("exit_code"), int):
        return None
    if not isinstance(obj.get("report"), dict):
        return None
    return obj


def _kill(process, grace: float) -> None:
    """SIGTERM, wait *grace*, SIGKILL, join — never leaves a zombie."""
    process.terminate()
    process.join(grace)
    if process.is_alive():
        process.kill()
        process.join()


def reap_worker(
    handle: WorkerHandle,
    timed_out: bool,
    kill_grace: float = DEFAULT_KILL_GRACE,
) -> WorkerOutcome:
    """Collect a finished or overdue worker into a :class:`WorkerOutcome`.

    Always fully joins the child and closes the pipe, so every path —
    clean exit, crash, poison, kill-on-timeout — leaves zero orphan
    processes and zero open descriptors behind.
    """
    process, conn = handle.process, handle.conn
    pid = process.pid
    try:
        if timed_out:
            _kill(process, kill_grace)
            return WorkerOutcome(
                kind="timeout",
                result=None,
                pid=pid,
                exitcode=process.exitcode,
                duration_s=time.monotonic() - handle.started,
            )
        process.join()
        received = None
        if conn.poll():
            try:
                received = conn.recv()
            except (EOFError, OSError, ValueError):
                received = None
        result = validate_result(received, handle.task.task_id)
        if result is None:
            return WorkerOutcome(
                kind="crash",
                result=None,
                pid=pid,
                exitcode=process.exitcode,
                duration_s=time.monotonic() - handle.started,
            )
        return WorkerOutcome(
            kind="result",
            result=result,
            pid=pid,
            exitcode=process.exitcode,
            duration_s=time.monotonic() - handle.started,
        )
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def run_one(
    task: CompileTask,
    machine: str = "two-unit-superscalar",
    registers: Optional[int] = None,
    config=None,
    timeout: float = 30.0,
    kill_grace: float = DEFAULT_KILL_GRACE,
) -> WorkerOutcome:
    """Convenience: one isolated attempt, start to reap.  The batch
    runner inlines this sequence to multiplex many workers; tests and
    embedders get the one-shot form."""
    from repro.pipeline.driver import DriverConfig

    payload = build_payload(
        task, machine, registers, config or DriverConfig()
    )
    handle = start_worker(task, payload, timeout)
    handle.process.join(timeout)
    return reap_worker(
        handle, timed_out=handle.process.is_alive(), kill_grace=kill_grace
    )
