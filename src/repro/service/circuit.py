"""Per-rung circuit breakers for the batch service.

A batch that keeps dispatching tasks onto a rung that is crashing or
timing out pays the full timeout + retry bill for every one of them.
The breaker bounds that: after ``failure_threshold`` *consecutive*
failures of one key (a strategy/engine combination such as
``"pinter/bitset"``), the circuit **opens** and :meth:`allow` starts
answering False — the batch routes those tasks straight to the
degraded rung (reference engine) without burning a worker on the
broken one.  After ``recovery_after`` rejected requests the circuit
goes **half-open**: exactly one probe task is allowed through; its
success closes the circuit, its failure re-opens it and the rejection
count starts over.

The breaker is deliberately *count*-based, not clock-based: batch
progress is measured in tasks, and counting keeps every containment
test deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.utils.errors import InputError

#: Circuit states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _KeyState:
    state: str = CLOSED
    consecutive_failures: int = 0
    rejections: int = 0
    probe_in_flight: bool = False
    times_opened: int = 0
    total_failures: int = 0
    total_successes: int = 0
    total_rejections: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "times_opened": self.times_opened,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "total_rejections": self.total_rejections,
        }


class CircuitBreaker:
    """Keyed closed → open → half-open → closed state machine.

    Args:
        failure_threshold: Consecutive failures of a key that open its
            circuit.
        recovery_after: Rejected requests while open before the next
            request becomes the half-open probe.
        listener: Optional ``(key, old_state, new_state)`` callback
            fired on every state transition — the batch runner wires
            it to the trace stream so every open/half-open/close is
            journaled.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_after: int = 8,
        listener: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise InputError(
                "circuit failure_threshold must be >= 1, got {}".format(
                    failure_threshold
                )
            )
        if recovery_after < 1:
            raise InputError(
                "circuit recovery_after must be >= 1, got {}".format(
                    recovery_after
                )
            )
        self.failure_threshold = failure_threshold
        self.recovery_after = recovery_after
        self.listener = listener
        self._keys: Dict[str, _KeyState] = {}

    def _state(self, key: str) -> _KeyState:
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyState()
        return state

    def _transition(self, key: str, st: _KeyState, new_state: str) -> None:
        old_state, st.state = st.state, new_state
        if self.listener is not None and old_state != new_state:
            self.listener(key, old_state, new_state)

    def allow(self, key: str) -> bool:
        """May the next task run on *key*?  False routes it to the
        degraded rung.  Counts rejections and promotes an open circuit
        to half-open (one probe) once ``recovery_after`` is reached."""
        st = self._state(key)
        if st.state == CLOSED:
            return True
        if st.state == OPEN:
            st.rejections += 1
            st.total_rejections += 1
            if st.rejections >= self.recovery_after:
                self._transition(key, st, HALF_OPEN)
                st.probe_in_flight = True
                return True
            return False
        # HALF_OPEN: exactly one probe at a time.
        if st.probe_in_flight:
            st.total_rejections += 1
            return False
        st.probe_in_flight = True
        return True

    def record_success(self, key: str) -> None:
        st = self._state(key)
        st.total_successes += 1
        st.consecutive_failures = 0
        if st.state in (HALF_OPEN, OPEN):
            self._transition(key, st, CLOSED)
            st.rejections = 0
            st.probe_in_flight = False

    def record_failure(self, key: str) -> None:
        st = self._state(key)
        st.total_failures += 1
        st.consecutive_failures += 1
        if st.state == HALF_OPEN:
            self._transition(key, st, OPEN)
            st.rejections = 0
            st.probe_in_flight = False
            st.times_opened += 1
        elif (
            st.state == CLOSED
            and st.consecutive_failures >= self.failure_threshold
        ):
            self._transition(key, st, OPEN)
            st.rejections = 0
            st.times_opened += 1

    def state(self, key: str) -> str:
        """Current state name of *key* (``"closed"`` when unseen)."""
        st = self._keys.get(key)
        return st.state if st is not None else CLOSED

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-key statistics for the batch summary."""
        return {key: st.as_dict() for key, st in sorted(self._keys.items())}
