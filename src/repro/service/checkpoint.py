"""The run ledger: an append-only JSONL journal for checkpoint/resume.

Every task outcome of a batch (and, in durable serve mode, every
accepted/dispatched job) is journaled as one JSON line the moment it
is known — flushed and fsynced, so a SIGKILL'd parent loses at most
the in-flight tasks.  A later run started with ``--resume`` loads the
ledger, and skips every task whose journaled record is terminal *and*
carries the same input digest; edited sources recompile.

Ledger records are self-contained primitives::

    {"v": 1, "task_id": "...", "digest": "sha256...", "status": "ok",
     "exit_code": 0, "attempts": 1, "pids": [1234], "rung": "pinter/bitset",
     "kinds": [], "resumed": false, "duration_s": 0.41, "message": "",
     "metrics": {"strategy": "pinter", "registers": 4, "...": "..."},
     "finished_at": 1754445600.0}

``pids`` lists the worker process of every attempt — the containment
tests assert no journaled pid outlives the batch (no orphan workers).
``metrics`` is the driver's result row (null when the compile failed),
and ``finished_at`` is wall-clock derived from one per-batch base plus
a monotonic offset, so NTP steps cannot make stamps run backwards
within a run.  Loading tolerates a truncated final line (the crash
case fsync cannot rule out) and keeps the **last** record per task id,
so re-runs that re-journal a task stay consistent.

Crash consistency — all I/O goes through the filesystem fault shim
(:mod:`repro.utils.fsfaults`, scope ``ledger``) and the append side
defends itself at three levels:

* **write verification** — :meth:`RunLedger.record` checks the file
  offset after every fsync; a short persist (torn write) is truncated
  away and retried once, and an I/O error (ENOSPC, EIO) is contained:
  the torn tail is rewound and ``record`` returns False instead of
  corrupting the journal or killing the batch.
* **tail healing** — opening a ledger truncates a torn final line
  (the bytes a crash left behind) back to the last complete record.
* **segment compaction** — when the active segment exceeds
  ``max_segment_bytes`` (or on an explicit :meth:`~RunLedger.compact`)
  the ledger rotates the segment aside (``<path>.compacting``),
  rewrites the last record per task into a temp file, and atomically
  swaps it in, fsyncing the parent directory after each rename; an
  interrupted compaction is detected and rolled forward or back on
  the next open, and :meth:`~RunLedger.load` reads the rotated
  segment first so no reader ever misses records mid-compaction.

:func:`audit_ledger` (the ``repro ledger check`` subcommand) reads a
ledger without touching it and classifies torn tails, malformed
mid-file lines, duplicate task ids, and non-terminal rows.

On resume, ``failed`` records are only reused when the failure was
*deterministic* (the driver reported it): a record whose ``kinds``
carry a worker-level failure (timeout, crash, worker exception) may
have merely been unlucky, so it is recompiled — and
``retry_failed=True`` recompiles every failed record regardless.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, List, Mapping, Optional, Union

from repro.obs import get_metrics
from repro.utils import fsfaults
from repro.utils.errors import InputError

#: Ledger record schema version.
LEDGER_VERSION = 1

#: Statuses that mean "done — do not recompile on resume".
TERMINAL_STATUSES = ("ok", "degraded", "failed")

#: Failure kinds that indicate the *worker*, not the program, failed
#: (mirrors :attr:`repro.service.batch.RetryPolicy.RETRYABLE`).  A
#: ``failed`` ledger record carrying one of these was possibly
#: transient — a resumed run recompiles it instead of reusing it.
WORKER_FAILURE_KINDS = ("timeout", "crash", "worker-exception")

#: Suffix of the rotated-aside segment during compaction.
COMPACTING_SUFFIX = ".compacting"

#: Suffix of the half-written compacted replacement.
TMP_SUFFIX = ".tmp"

#: Fault-shim scope for every ledger disk operation.
_SCOPE = "ledger"


def _heal_tail(path: str) -> int:
    """Truncate a torn final line off *path*; returns bytes trimmed.

    Records are fsynced one line at a time, so at most the final line
    can be incomplete — anything after the last newline is the debris
    of a crash mid-append and parses as garbage forever if left in
    place (the next append would fuse with it).
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0
    if size == 0:
        return 0
    try:
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return 0
            # Scan backwards in chunks for the last newline.
            keep = 0
            position = size
            while position > 0:
                step = min(4096, position)
                position -= step
                handle.seek(position)
                chunk = handle.read(step)
                cut = chunk.rfind(b"\n")
                if cut != -1:
                    keep = position + cut + 1
                    break
            handle.truncate(keep)
    except OSError:  # pragma: no cover - unwritable ledger
        return 0
    return size - keep


def _recover_segments(path: str) -> None:
    """Roll an interrupted compaction forward or back (raw os ops —
    this *is* the recovery path and must not recurse into the shim).

    States a crash can leave: an orphan ``.tmp`` (always discard: it
    is an incomplete rewrite), and a ``.compacting`` segment either
    alongside the live file (swap completed — discard the rotated
    original) or alone (swap never happened — restore it as the live
    file, aborting the compaction losslessly).
    """
    tmp = path + TMP_SUFFIX
    working = path + COMPACTING_SUFFIX
    if os.path.exists(tmp):
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover
            pass
    if os.path.exists(working):
        try:
            if os.path.exists(path):
                os.unlink(working)
            else:
                os.replace(working, path)
        except OSError:  # pragma: no cover
            pass


class RunLedger:
    """Append-side handle on a JSONL run ledger.

    Usable as a context manager; :meth:`record` is durable (flush +
    fsync + offset verification) so completed work survives an abrupt
    parent death.

    Args:
        path: Journal path; created (and healed/recovered) on open.
        max_segment_bytes: Auto-compact when the active segment grows
            past this many bytes (None disables auto-compaction).
    """

    def __init__(
        self, path: str, max_segment_bytes: Optional[int] = None
    ) -> None:
        if max_segment_bytes is not None and max_segment_bytes < 1:
            raise InputError(
                "max_segment_bytes must be >= 1, got {}".format(
                    max_segment_bytes
                )
            )
        self.path = path
        self.max_segment_bytes = max_segment_bytes
        self.stats: Dict[str, int] = {
            "records": 0,
            "record_errors": 0,
            "torn_writes_healed": 0,
            "healed_tail_bytes": 0,
            "compactions": 0,
            "compaction_errors": 0,
        }
        _recover_segments(path)
        self.stats["healed_tail_bytes"] = _heal_tail(path)
        self._fh: Optional[Union[IO[bytes], fsfaults.GuardedFile]] = None
        self._tail = 0
        self._open_segment()
        # fsyncing the file makes *records* durable, but the file's
        # very existence lives in the directory entry: without one
        # directory fsync after creation, a crash shortly after open
        # can lose the whole journal on some filesystems.
        self._sync_directory()

    def _open_segment(self) -> None:
        try:
            self._fh = fsfaults.open(self.path, "ab", scope=_SCOPE)
        except OSError as exc:
            raise InputError(
                "cannot open ledger {!r} for append: {}".format(
                    self.path, exc
                )
            ) from None
        self._tail = self._fh.tell()

    def _sync_directory(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fsfaults.sync_directory(directory, _SCOPE)
        except OSError:
            pass

    def record(self, entry: Mapping[str, object]) -> bool:
        """Append one task record durably; True when it verifiably hit
        the journal.

        A torn write (short persist) is rewound and retried once; an
        I/O error is rewound and **contained** — the method returns
        False, the journal stays parseable, and the batch lives on
        with one record at risk instead of dying mid-run.

        Raises:
            ValueError: when called on a closed ledger (a programming
                error in the batch loop, not an operational condition).
        """
        if self._fh is None:
            raise ValueError("ledger {!r} is closed".format(self.path))
        payload = dict(entry)
        payload.setdefault("v", LEDGER_VERSION)
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        start = self._tail
        for attempt in (1, 2):
            try:
                self._fh.write(line)
                self._fh.flush()
                fsfaults.fsync(self._fh, _SCOPE)
                end = self._fh.tell()
            except OSError:
                self._rewind(start)
                self.stats["record_errors"] += 1
                get_metrics().counter("ledger.record_errors").inc()
                return False
            if end == start + len(line):
                self._tail = end
                self.stats["records"] += 1
                if self.max_segment_bytes is not None and \
                        self._tail > self.max_segment_bytes:
                    self.compact()
                return True
            # Fewer bytes landed than we wrote: a torn write.  Cut the
            # debris and (once) try again on what is now a clean tail.
            self._rewind(start)
            self.stats["torn_writes_healed"] += 1
            get_metrics().counter("ledger.torn_writes_healed").inc()
        self.stats["record_errors"] += 1
        get_metrics().counter("ledger.record_errors").inc()
        return False

    def _rewind(self, offset: int) -> None:
        """Truncate the journal back to *offset*, discarding whatever
        a failed append left behind."""
        if self._fh is None:  # pragma: no cover - defensive
            return
        try:
            self._fh.flush()
        except OSError:
            pass
        try:
            self._fh.truncate(offset)
        except OSError:  # pragma: no cover - unwritable ledger
            pass
        self._tail = offset

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> bool:
        """Rewrite the journal down to the last record per task id.

        Crash-safe swap: rotate the live segment to ``.compacting``,
        write the compacted replacement to ``.tmp``, atomically
        replace, fsync the parent directory, then drop the rotated
        segment.  A crash at any point is repaired by the next open
        (:func:`_recover_segments`), and a contained I/O error rolls
        the rotation back and keeps appending to the original.
        """
        if self._fh is None:
            raise ValueError("ledger {!r} is closed".format(self.path))
        self._fh.close()
        self._fh = None
        working = self.path + COMPACTING_SUFFIX
        tmp = self.path + TMP_SUFFIX
        try:
            fsfaults.replace(self.path, working, _SCOPE)
            entries = self.load(working)
            with fsfaults.open(tmp, "wb", scope=_SCOPE) as out:
                for record in entries.values():
                    out.write(
                        (json.dumps(record, sort_keys=True) + "\n").encode(
                            "utf-8"
                        )
                    )
                out.flush()
                fsfaults.fsync(out, _SCOPE)
            fsfaults.replace(tmp, self.path, _SCOPE)
            self._sync_directory()
            fsfaults.unlink(working, _SCOPE)
            self._sync_directory()
        except OSError:
            _recover_segments(self.path)
            self.stats["compaction_errors"] += 1
            get_metrics().counter("ledger.compaction_errors").inc()
            self._open_segment()
            return False
        self.stats["compactions"] += 1
        get_metrics().counter("ledger.compactions").inc()
        self._open_segment()
        return True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @staticmethod
    def load(path: str) -> Dict[str, Dict[str, object]]:
        """Parse a ledger into ``task_id → last record``.

        A missing file is an empty ledger (first run with ``--resume``
        pointing at the path it will create).  Unparseable lines — the
        torn final write of a killed process — are skipped, never
        fatal: losing one record only means recompiling one task.  A
        rotated ``.compacting`` segment left by an interrupted
        compaction is read first (it holds the older records), so
        mid-compaction crashes never lose journal history.
        """
        entries: Dict[str, Dict[str, object]] = {}
        segments = [path + COMPACTING_SUFFIX, path] \
            if not path.endswith(COMPACTING_SUFFIX) else [path]
        for segment in segments:
            try:
                handle = fsfaults.open(segment, "rb", scope=_SCOPE)
            except OSError:
                continue
            with handle:
                for raw in handle:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        record = json.loads(raw.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        continue
                    if not isinstance(record, dict):
                        continue
                    task_id = record.get("task_id")
                    if isinstance(task_id, str):
                        entries[task_id] = record
        return entries

    @staticmethod
    def is_reusable(
        record: Optional[Mapping[str, object]],
        digest: str,
        retry_failed: bool = False,
    ) -> bool:
        """True when *record* lets a resume skip recompiling.

        Reusable means: terminal status, unchanged input digest, and —
        for ``failed`` records — a *deterministic* failure.  A task
        that exhausted its retries on a worker-level failure (its
        ``kinds`` include a timeout/crash/worker-exception) may have
        been transient bad luck, so it is never reused; pass
        ``retry_failed=True`` to recompile every failed record (the
        ``--retry-failed`` batch flag).
        """
        if record is None:
            return False
        if record.get("status") not in TERMINAL_STATUSES:
            return False
        if record.get("digest") != digest:
            return False
        if record.get("status") == "failed":
            if retry_failed:
                return False
            kinds = record.get("kinds")
            if isinstance(kinds, list) and any(
                kind in WORKER_FAILURE_KINDS for kind in kinds
            ):
                return False
        return True


# ----------------------------------------------------------------------
# Audit (``repro ledger check``)
# ----------------------------------------------------------------------

def audit_ledger(path: str) -> Dict[str, object]:
    """Read-only health classification of a ledger.

    Walks every segment (a rotated ``.compacting`` file first, then
    the live journal) and classifies each line:

    * ``torn_tail`` — an unparseable, newline-less final line: the
      expected debris of a crash mid-append.  Tolerated (``ok`` stays
      True): openers heal it, loaders skip it.
    * ``malformed`` — an unparseable or shapeless line anywhere else.
      This should never happen under the write-verified append path,
      so it fails the audit.
    * ``duplicate_task_ids`` — task ids with more than one record.
      Normal (retries, accepted→terminal transitions; last wins) and
      reported for visibility, not failure.
    * ``non_terminal`` — tasks whose last record is not terminal:
      resumable rows a restart will pick up.  Reported, not failure.
    """
    live_exists = os.path.exists(path)
    segments: List[str] = []
    for candidate in (path + COMPACTING_SUFFIX, path):
        if os.path.exists(candidate):
            segments.append(candidate)
    report: Dict[str, object] = {
        "path": path,
        "exists": live_exists or bool(segments),
        "segments": [os.path.basename(s) for s in segments],
        "lines": 0,
        "records": 0,
        "malformed": 0,
        "torn_tail": False,
        "tasks": 0,
        "terminal": 0,
        "non_terminal": 0,
        "non_terminal_task_ids": [],
        "duplicate_task_ids": 0,
        "problems": [],
        "ok": True,
    }
    problems: List[str] = report["problems"]  # type: ignore[assignment]
    last: Dict[str, Dict[str, object]] = {}
    counts: Dict[str, int] = {}
    for segment in segments:
        try:
            with open(segment, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            problems.append(
                "unreadable segment {!r}: {}".format(segment, exc)
            )
            report["ok"] = False
            continue
        ends_clean = raw.endswith(b"\n")
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            report["lines"] += 1
            record = None
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                record = None
            shapely = isinstance(record, dict) and isinstance(
                record.get("task_id"), str
            )
            if not shapely:
                final = index == len(lines) - 1
                if final and not ends_clean and record is None:
                    report["torn_tail"] = True
                else:
                    report["malformed"] += 1
                continue
            report["records"] += 1
            task_id = record["task_id"]
            counts[task_id] = counts.get(task_id, 0) + 1
            last[task_id] = record
    report["tasks"] = len(last)
    report["duplicate_task_ids"] = sum(
        1 for n in counts.values() if n > 1
    )
    non_terminal = sorted(
        task_id
        for task_id, record in last.items()
        if record.get("status") not in TERMINAL_STATUSES
    )
    report["terminal"] = len(last) - len(non_terminal)
    report["non_terminal"] = len(non_terminal)
    report["non_terminal_task_ids"] = non_terminal[:20]
    if report["malformed"]:
        problems.append(
            "{} malformed mid-file record(s)".format(report["malformed"])
        )
        report["ok"] = False
    return report
