"""The run ledger: an append-only JSONL journal for checkpoint/resume.

Every *terminal* task outcome of a batch is journaled as one JSON line
the moment it is known — flushed and fsynced, so a SIGKILL'd parent
loses at most the in-flight tasks.  A later run started with
``--resume`` loads the ledger, and skips every task whose journaled
record is terminal *and* carries the same input digest; edited sources
recompile.

Ledger records are self-contained primitives::

    {"v": 1, "task_id": "...", "digest": "sha256...", "status": "ok",
     "exit_code": 0, "attempts": 1, "pids": [1234], "rung": "pinter/bitset",
     "kinds": [], "resumed": false, "duration_s": 0.41, "message": "",
     "metrics": {"strategy": "pinter", "registers": 4, "...": "..."},
     "finished_at": 1754445600.0}

``pids`` lists the worker process of every attempt — the containment
tests assert no journaled pid outlives the batch (no orphan workers).
``metrics`` is the driver's result row (null when the compile failed),
and ``finished_at`` is wall-clock derived from one per-batch base plus
a monotonic offset, so NTP steps cannot make stamps run backwards
within a run.  Loading tolerates a truncated final line (the crash
case fsync cannot rule out) and keeps the **last** record per task id,
so re-runs that re-journal a task stay consistent.

On resume, ``failed`` records are only reused when the failure was
*deterministic* (the driver reported it): a record whose ``kinds``
carry a worker-level failure (timeout, crash, worker exception) may
have merely been unlucky, so it is recompiled — and
``retry_failed=True`` recompiles every failed record regardless.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, Mapping, Optional

from repro.utils.errors import InputError

#: Ledger record schema version.
LEDGER_VERSION = 1

#: Statuses that mean "done — do not recompile on resume".
TERMINAL_STATUSES = ("ok", "degraded", "failed")

#: Failure kinds that indicate the *worker*, not the program, failed
#: (mirrors :attr:`repro.service.batch.RetryPolicy.RETRYABLE`).  A
#: ``failed`` ledger record carrying one of these was possibly
#: transient — a resumed run recompiles it instead of reusing it.
WORKER_FAILURE_KINDS = ("timeout", "crash", "worker-exception")


class RunLedger:
    """Append-side handle on a JSONL run ledger.

    Usable as a context manager; :meth:`record` is durable (flush +
    fsync) so completed work survives an abrupt parent death.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._fh: Optional[IO[str]] = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise InputError(
                "cannot open ledger {!r} for append: {}".format(path, exc)
            ) from None
        # fsyncing the file makes *records* durable, but the file's
        # very existence lives in the directory entry: without one
        # directory fsync after creation, a crash shortly after open
        # can lose the whole journal on some filesystems.
        self._sync_directory()

    def _sync_directory(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            fd = os.open(directory, flags)
        except OSError:  # pragma: no cover - exotic platforms
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)

    def record(self, entry: Mapping[str, object]) -> None:
        """Append one task record durably.

        Raises:
            ValueError: when called on a closed ledger (a programming
                error in the batch loop, not an operational condition).
        """
        if self._fh is None:
            raise ValueError("ledger {!r} is closed".format(self.path))
        payload = dict(entry)
        payload.setdefault("v", LEDGER_VERSION)
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @staticmethod
    def load(path: str) -> Dict[str, Dict[str, object]]:
        """Parse a ledger into ``task_id → last record``.

        A missing file is an empty ledger (first run with ``--resume``
        pointing at the path it will create).  Unparseable lines — the
        torn final write of a killed process — are skipped, never
        fatal: losing one record only means recompiling one task.
        """
        entries: Dict[str, Dict[str, object]] = {}
        try:
            handle = open(path, encoding="utf-8")
        except OSError:
            return entries
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                task_id = record.get("task_id")
                if isinstance(task_id, str):
                    entries[task_id] = record
        return entries

    @staticmethod
    def is_reusable(
        record: Optional[Mapping[str, object]],
        digest: str,
        retry_failed: bool = False,
    ) -> bool:
        """True when *record* lets a resume skip recompiling.

        Reusable means: terminal status, unchanged input digest, and —
        for ``failed`` records — a *deterministic* failure.  A task
        that exhausted its retries on a worker-level failure (its
        ``kinds`` include a timeout/crash/worker-exception) may have
        been transient bad luck, so it is never reused; pass
        ``retry_failed=True`` to recompile every failed record (the
        ``--retry-failed`` batch flag).
        """
        if record is None:
            return False
        if record.get("status") not in TERMINAL_STATUSES:
            return False
        if record.get("digest") != digest:
            return False
        if record.get("status") == "failed":
            if retry_failed:
                return False
            kinds = record.get("kinds")
            if isinstance(kinds, list) and any(
                kind in WORKER_FAILURE_KINDS for kind in kinds
            ):
                return False
        return True
