"""Persistent warm worker pool: amortize interpreter/import cost.

The fork-per-task transport (:mod:`repro.service.worker`) pays a full
``Process`` start, interpreter teardown, and join for every attempt —
~100 ms of overhead against ~20 ms of actual compilation for a typical
fuzz task.  This module keeps **N long-lived workers** instead: each
imports the whole pipeline once at spawn (prewarm), then serves many
tasks over a persistent duplex pipe, speaking **length-prefixed JSON
frames** (``Connection.send_bytes`` — a 4-byte length header plus the
UTF-8 JSON body), so the protocol is identical under ``fork`` and
``spawn`` and a corrupted frame can only ever poison one attempt.

Parent-side frame protocol per attempt:

1. :meth:`WorkerPool.dispatch` — pick (or spawn) an idle worker and
   send one ``{"op": "task", "payload": {...}}`` frame.
2. Wait on the worker's connection (readable when the result frame
   arrives *or* at EOF when the worker died) up to the task deadline.
3. :meth:`WorkerPool.collect` — read and validate the result frame
   (garbage or EOF is classified as a crash and retires the worker);
   past the deadline the worker is killed (SIGTERM → SIGKILL) and the
   attempt is a timeout.  Either way no zombies, no orphans.

Hygiene policies, applied by :meth:`WorkerPool.maintain` and at
collect time:

* **max-tasks recycling** — a worker that has served
  ``max_tasks_per_worker`` attempts is retired and replaced (bounds
  the blast radius of slow leaks in long-running services);
* **idle-timeout recycling** — a worker idle longer than
  ``idle_timeout`` seconds is retired (frees memory between bursts);
* **crash/poison retirement** — a worker that dies or ships a frame
  the parent cannot validate is killed and replaced; the in-flight
  attempt is classified exactly like the fork transport would
  (``crash``), so retry and circuit-breaker policy are unchanged.

Failure containment is therefore identical to fork-per-task — an
armed ``service.worker`` fault (crash/hang/poison) takes down one
worker and one attempt, never the batch — while the steady-state cost
per task drops to one frame round-trip.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import get_metrics, get_tracer
from repro.service.manifest import CompileTask
from repro.service.worker import (
    DEFAULT_KILL_GRACE,
    WorkerOutcome,
    _kill,
    _mp_context,
    detach_worker_process,
    execute_payload,
    validate_result,
    wire_result,
)
from repro.utils.errors import InputError

#: Frame operations the pool worker understands.
OP_TASK = "task"
OP_EXIT = "exit"

#: Default recycle-after-N-tasks bound (leak hygiene).
DEFAULT_MAX_TASKS_PER_WORKER = 256

#: Default idle recycle timeout, seconds (None disables).
DEFAULT_IDLE_TIMEOUT = 300.0


def send_frame(conn, obj: object) -> None:
    """Ship one length-prefixed JSON frame on *conn*."""
    conn.send_bytes(json.dumps(obj).encode("utf-8"))


def recv_frame(conn) -> object:
    """Read one frame; any defect (EOF, torn pipe, bad JSON) returns
    None — the caller treats it as a dead/untrustworthy peer."""
    try:
        raw = conn.recv_bytes()
    except (EOFError, OSError):
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None


def _prewarm() -> None:
    """Import the pipeline the worker will run, once, at spawn time —
    the whole point of keeping the worker alive."""
    from repro.frontend import lower  # noqa: F401
    from repro.machine import presets  # noqa: F401
    from repro.pipeline import driver  # noqa: F401


def _shed_inherited_fds(close_fds) -> None:
    """Close the listed inherited descriptors (child side of fork).

    A forked worker starts with a copy of the parent's descriptor
    table, and three of those copies are liveness bugs, not mere
    leaks:

    * the serve front end's **listening socket** — a SIGKILL'd server
      whose workers survive it keeps the port bound, so the
      supervisor's restarted child dies with ``EADDRINUSE`` forever;
    * the parent ends of **sibling workers' pipes** — a sibling
      holding a copy of this worker's write end means parent death
      never reads as EOF and the whole cohort lingers;
    * the parent end of the worker's **own pipe**, which would keep
      its read side open against itself.

    The parent enumerates exactly these at spawn time (plus whatever
    the server registered via :meth:`WorkerPool.close_in_children`);
    closing only known descriptors leaves multiprocessing's own
    sentinel/bookkeeping fds intact.
    """
    for fd in close_fds:
        try:
            os.close(int(fd))
        except (OSError, TypeError, ValueError):
            pass


def pool_worker_main(conn, close_fds=()) -> None:
    """Child-process entry: serve task frames until told to exit.

    Each ``task`` frame runs one compile attempt via the same
    :func:`~repro.service.worker.execute_payload` core as the
    fork-per-task worker (fault arming included, cleared between
    tasks), and answers with exactly one result frame.  An ``exit``
    frame, a closed pipe, or an unparseable frame ends the loop — the
    parent owns all retry policy.  Worker lifetime therefore depends
    only on its own pipe: :func:`_shed_inherited_fds` drops every
    other descriptor forked in from the parent, so the death of the
    parent (even by SIGKILL) reads as EOF here and the worker exits
    instead of squatting on the parent's sockets.
    """
    _shed_inherited_fds(close_fds)
    detach_worker_process()
    try:  # pragma: no cover - exercised in subprocesses
        _prewarm()
    except Exception:  # noqa: BLE001 - first task will report it
        pass
    try:
        while True:
            frame = recv_frame(conn)
            if not isinstance(frame, dict) or frame.get("op") != OP_TASK:
                break
            payload = frame.get("payload")
            if not isinstance(payload, dict):
                break
            result = execute_payload(payload)
            try:
                send_frame(conn, wire_result(result))
            except (BrokenPipeError, OSError):  # parent already gone
                break
            finally:
                # Never leak one task's armed faults into the next.
                from repro.utils import faults

                faults.clear()
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


@dataclass
class _PoolWorker:
    """Parent-side state of one persistent worker."""

    process: object
    conn: object
    tasks_done: int = 0
    busy: bool = False
    last_active: float = field(default_factory=time.monotonic)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


@dataclass
class PoolHandle:
    """One in-flight pooled attempt (parent side).

    Mirrors :class:`repro.service.worker.WorkerHandle` closely enough
    that the batch loop treats both transports uniformly: it exposes
    the same ``task``/``attempt``/``rung``/``payload``/``deadline``
    fields and a :attr:`waitable` the loop can multiplex on.
    """

    worker: _PoolWorker
    task: CompileTask
    attempt: int
    rung: str
    payload: Dict[str, object]
    started: float = field(default_factory=time.monotonic)
    deadline: float = 0.0

    @property
    def waitable(self):
        """Readable when the result frame arrives — or at EOF when the
        worker died, so a crash wakes the batch loop immediately."""
        return self.worker.conn

    @property
    def pid(self) -> Optional[int]:
        return self.worker.pid

    def is_done(self, now: float) -> bool:
        return (
            self.worker.conn.poll()
            or not self.worker.alive
            or now >= self.deadline
        )


class WorkerPool:
    """N persistent compile workers plus their recycling policy.

    Args:
        size: Maximum simultaneously live workers (= the batch's
            ``max_workers``).  Workers spawn lazily on first dispatch
            and are replaced as hygiene policies retire them.
        kill_grace: SIGTERM→SIGKILL grace for overdue/retired workers.
        max_tasks_per_worker: Recycle a worker after this many served
            attempts (None disables; leak hygiene for long services).
        idle_timeout: Recycle a worker idle this many seconds (None
            disables; applied by :meth:`maintain`).
    """

    def __init__(
        self,
        size: int,
        kill_grace: float = DEFAULT_KILL_GRACE,
        max_tasks_per_worker: Optional[int] = DEFAULT_MAX_TASKS_PER_WORKER,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
    ) -> None:
        if size < 1:
            raise InputError("pool size must be >= 1, got {}".format(size))
        if max_tasks_per_worker is not None and max_tasks_per_worker < 1:
            raise InputError(
                "max_tasks_per_worker must be >= 1 or None, got {}".format(
                    max_tasks_per_worker
                )
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise InputError(
                "idle_timeout must be positive seconds or None, "
                "got {}".format(idle_timeout)
            )
        self.size = size
        self.kill_grace = kill_grace
        self.max_tasks_per_worker = max_tasks_per_worker
        self.idle_timeout = idle_timeout
        self._workers: List[_PoolWorker] = []
        self._child_close_fds: List[int] = []
        self.stats: Dict[str, int] = {
            "spawned": 0,
            "dispatched": 0,
            "recycled_max_tasks": 0,
            "recycled_idle": 0,
            "retired_dead": 0,
            "killed_timeout": 0,
        }

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def close_in_children(self, fds: List[int]) -> None:
        """Register descriptors every *future* worker must close at
        entry — the serve front end passes its listening sockets here
        so a dead server's port is never kept bound by its surviving
        workers."""
        for fd in fds:
            if fd not in self._child_close_fds:
                self._child_close_fds.append(int(fd))

    def _spawn(self) -> _PoolWorker:
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        # Everything the child must NOT keep: registered server fds,
        # the parent ends of every sibling's pipe, and the parent end
        # of its own pipe (holding that one open would stop parent
        # death from ever reading as EOF on the child's side).
        close_fds = list(self._child_close_fds)
        for sibling in self._workers:
            try:
                close_fds.append(sibling.conn.fileno())
            except OSError:  # pragma: no cover - already closed
                pass
        close_fds.append(parent_conn.fileno())
        process = ctx.Process(
            target=pool_worker_main,
            args=(child_conn, tuple(close_fds)),
            daemon=True,
            name="repro-pool-worker",
        )
        process.start()
        child_conn.close()
        worker = _PoolWorker(process=process, conn=parent_conn)
        self._workers.append(worker)
        self.stats["spawned"] += 1
        get_tracer().event("pool.spawn", pid=worker.pid)
        get_metrics().counter("pool.spawned").inc()
        return worker

    def _retire(self, worker: _PoolWorker, reason: str) -> None:
        """Remove *worker* from the pool and fully reap it.

        A healthy worker gets a polite ``exit`` frame first; anything
        still alive after the grace is killed.  Every path joins the
        child — no zombies.
        """
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            if worker.alive:
                try:
                    send_frame(worker.conn, {"op": OP_EXIT})
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(self.kill_grace)
            if worker.alive:
                _kill(worker.process, self.kill_grace)
            else:
                worker.process.join()
        finally:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        get_tracer().event("pool.retire", pid=worker.pid, reason=reason)
        get_metrics().counter("pool.retired.{}".format(reason)).inc()

    def _idle_worker(self) -> _PoolWorker:
        """An idle live worker, spawning a replacement when a cadaver
        or a vacancy is found.  The batch loop bounds in-flight work by
        the pool size, so a slot always exists."""
        for worker in list(self._workers):
            if worker.busy:
                continue
            if not worker.alive:
                self.stats["retired_dead"] += 1
                self._retire(worker, "dead")
                continue
            return worker
        if len(self._workers) >= self.size:
            raise InputError(
                "pool of {} worker(s) has no idle capacity — the "
                "dispatcher must bound in-flight work by the pool "
                "size".format(self.size)
            )
        return self._spawn()

    # ------------------------------------------------------------------
    # Dispatch / collect
    # ------------------------------------------------------------------

    def dispatch(
        self,
        task: CompileTask,
        payload: Dict[str, object],
        timeout: float,
        attempt: int = 1,
        rung: str = "primary",
    ) -> PoolHandle:
        """Send one attempt to an idle (or fresh) worker.

        A worker that died while idle is detected at send time and
        replaced transparently — the attempt is charged nothing.
        """
        while True:
            worker = self._idle_worker()
            try:
                send_frame(
                    worker.conn, {"op": OP_TASK, "payload": payload}
                )
            except (BrokenPipeError, OSError):
                self.stats["retired_dead"] += 1
                self._retire(worker, "dead")
                continue
            break
        worker.busy = True
        worker.last_active = time.monotonic()
        self.stats["dispatched"] += 1
        handle = PoolHandle(
            worker=worker,
            task=task,
            attempt=attempt,
            rung=rung,
            payload=payload,
        )
        handle.deadline = handle.started + timeout
        get_metrics().counter("pool.dispatches").inc()
        return handle

    def collect(self, handle: PoolHandle) -> WorkerOutcome:
        """Resolve a done/overdue attempt into a
        :class:`~repro.service.worker.WorkerOutcome`.

        Ranking mirrors the fork transport: an available result frame
        wins even at the deadline; then a dead worker is a crash; then
        an overdue worker is killed for a timeout.
        """
        worker = handle.worker
        duration = time.monotonic() - handle.started
        outcome: WorkerOutcome
        if worker.conn.poll():
            frame = recv_frame(worker.conn)
            result = validate_result(frame, handle.task.task_id)
            if result is None:
                # Garbage on a persistent stream: the worker cannot be
                # trusted to stay frame-aligned — kill and replace it.
                exitcode = worker.process.exitcode
                _kill(worker.process, self.kill_grace)
                self._retire(worker, "poisoned")
                outcome = WorkerOutcome(
                    kind="crash", result=None, pid=worker.pid,
                    exitcode=exitcode if exitcode is not None
                    else worker.process.exitcode,
                    duration_s=duration,
                )
            else:
                worker.busy = False
                worker.tasks_done += 1
                worker.last_active = time.monotonic()
                outcome = WorkerOutcome(
                    kind="result", result=result, pid=worker.pid,
                    exitcode=None, duration_s=duration,
                )
                if (
                    self.max_tasks_per_worker is not None
                    and worker.tasks_done >= self.max_tasks_per_worker
                ):
                    self.stats["recycled_max_tasks"] += 1
                    self._retire(worker, "max_tasks")
        elif not worker.alive:
            exitcode = worker.process.exitcode
            self.stats["retired_dead"] += 1
            self._retire(worker, "dead")
            outcome = WorkerOutcome(
                kind="crash", result=None, pid=worker.pid,
                exitcode=exitcode, duration_s=duration,
            )
        else:  # overdue
            self.stats["killed_timeout"] += 1
            _kill(worker.process, self.kill_grace)
            exitcode = worker.process.exitcode
            self._retire(worker, "timeout")
            outcome = WorkerOutcome(
                kind="timeout", result=None, pid=worker.pid,
                exitcode=exitcode, duration_s=duration,
            )
        get_tracer().span_point(
            "pool.attempt",
            duration,
            task_id=handle.task.task_id,
            kind=outcome.kind,
            pid=outcome.pid,
        )
        return outcome

    # ------------------------------------------------------------------
    # Hygiene / shutdown
    # ------------------------------------------------------------------

    def maintain(self, now: Optional[float] = None) -> None:
        """Apply idle-timeout recycling and sweep dead idle workers.
        Call periodically from the dispatch loop; cheap when nothing
        qualifies."""
        now = time.monotonic() if now is None else now
        for worker in list(self._workers):
            if worker.busy:
                continue
            if not worker.alive:
                self.stats["retired_dead"] += 1
                self._retire(worker, "dead")
            elif (
                self.idle_timeout is not None
                and now - worker.last_active > self.idle_timeout
            ):
                self.stats["recycled_idle"] += 1
                self._retire(worker, "idle")

    def live_workers(self) -> int:
        return sum(1 for w in self._workers if w.alive)

    def worker_pids(self) -> List[int]:
        """Pids of currently live workers — the set a clean shutdown
        must leave empty (orphan audits key on this)."""
        return [w.pid for w in self._workers if w.alive and w.pid]

    def shutdown(self) -> None:
        """Retire every worker (graceful exit frame, then force).
        Idempotent; the pool is reusable after — fresh workers spawn
        on the next dispatch."""
        for worker in list(self._workers):
            self._retire(worker, "shutdown")

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
