"""``repro serve`` — a fault-tolerant async compilation service.

Every robustness rung built so far (retry policy, circuit breakers,
fsynced ledger, warm :class:`~repro.service.pool.WorkerPool`,
:class:`~repro.cache.CompileCache`) terminates in a batch CLI that
exits when its manifest runs dry.  This module turns the same
machinery into a **long-running service**: a stdlib-only asyncio
HTTP/JSON front end that owns one warm pool and keeps compiling until
told to drain.

Layering (one thread each, three lock domains):

* **asyncio loop thread** — hand-rolled HTTP/1.1 over
  ``asyncio.start_server`` (``Connection: close`` per request, JSON
  bodies).  Admission (:class:`~repro.service.session.SessionTable`)
  happens here, before anything is queued: refusals are typed
  429/503 bodies, never silent queueing.
* **dispatcher thread** (:class:`~repro.service.jobs.JobDispatcher`)
  — owns the pool; coalescing, cache, breaker routing, deadline
  propagation, retry, and the run-ledger journal.
* **worker processes** — unchanged from the batch service.

Wire schema (all endpoints return JSON)::

    POST /submit   {"name": ..., "text": ..., "is_ir": false,
                    "client": "...", "deadline_s": 5.0,
                    "wait": false, "faults": "spec,spec"}
        -> 202 {"job_id": ..., "state": ..., "coalesced": ...}
        -> 200 job document              (wait=true, settled)
        -> 429/503 typed shed            (see session.py)
        -> 400/403 on bad input / disabled request faults
    GET  /poll?job=ID    -> 200 job document | 404
    GET  /result?job=ID  -> 200 settled document | 202 still running
    GET  /healthz        -> 200 server/session/dispatcher snapshot
    POST /drain          -> 200 {"draining": true} and begins shutdown

**Graceful drain** (SIGTERM, SIGINT, or ``POST /drain``): admission
flips to shed-everything, the listening socket closes, queued jobs are
journaled ``interrupted`` to the ledger (resumable — a non-terminal
status is exactly what ``--resume`` recompiles), in-flight attempts
finish or hit their deadlines, waiting clients get their final
documents, and the pool retires every worker through the usual
SIGTERM→SIGKILL + join path — zero orphans.  A clean drain exits 0.

A ``service.server`` fault point covers the request path (armed via
``--inject-fault`` or per-request with ``--allow-request-faults``):
``raise`` → typed 500, ``stall``/``hang`` → slow or wedged handler
(that request only; the loop stays live), ``crash`` → the process
dies mid-request, ``poison-result`` → a garbage (non-JSON) response
body, exercising client-side validation.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import re
import signal
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs import get_metrics, get_tracer
from repro.pipeline.driver import DriverConfig
from repro.service.jobs import Job, JobDispatcher
from repro.service.manifest import CompileTask
from repro.service.session import SessionTable, ShedDecision
from repro.utils import faults
from repro.utils.errors import InputError, ReproError

#: ``repro serve`` exit codes: a clean drain is a success.
EXIT_SERVE_OK = 0
EXIT_SERVE_INPUT = 2

#: Request-body ceiling (bytes) — a submit larger than this is a 413.
MAX_BODY_BYTES = 1 << 20

#: Settled jobs retained for /poll + /result, oldest evicted first.
DEFAULT_RESULT_RETENTION = 1024

#: Ceiling on one ``wait=true`` submit, seconds (jobs always settle —
#: the pool kills overdue workers — so this only guards pathologies).
DEFAULT_WAIT_TIMEOUT = 600.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class CompileServer:
    """The ``repro serve`` front end.

    Construct, then either :meth:`run` (blocking; installs signal
    handlers; returns the exit code) or :meth:`start_in_thread` (tests:
    serve from a daemon thread, drain via :meth:`request_drain`).

    Args:
        host/port: Bind address; port 0 picks a free port, published
            via :attr:`bound_port` and the startup line.
        machine/registers/driver_config: Compile environment, shared by
            every request (per-request deadlines tighten the config's
            time budget per job).
        pool_size: Warm worker count (= max in-flight compiles).
        task_timeout: Hard per-attempt wall-clock cap, seconds.
        max_queue_depth/per_client_depth: Admission-control bounds
            (see :class:`~repro.service.session.SessionTable`).
        retries: Extra attempts for worker-level failures.
        cache: Optional :class:`~repro.cache.CompileCache`.
        ledger_path: JSONL run ledger (every settled job journals).
        durable: Journal accepted/dispatched rows and resume them on
            startup (requires ``ledger_path``) — the supervised-serve
            exactly-once path.
        poison_path: Poison-task list maintained by the supervisor;
            quarantined input digests are refused with HTTP 403.
        max_segment_bytes: Auto-compact the ledger past this size.
        allow_request_faults: Permit per-request ``faults`` specs
            (drill mode; off by default — a client must not be able to
            crash the fleet unless the operator opted in).
        drain_timeout: Ceiling on waiting for the dispatcher to finish
            draining, seconds.
        result_retention: Settled jobs kept queryable before eviction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        machine: str = "two-unit-superscalar",
        registers: Optional[int] = None,
        driver_config: Optional[DriverConfig] = None,
        pool_size: int = 4,
        task_timeout: float = 30.0,
        max_queue_depth: int = 64,
        per_client_depth: int = 8,
        retries: int = 1,
        backoff: float = 0.05,
        cache=None,
        ledger_path: Optional[str] = None,
        durable: bool = False,
        poison_path: Optional[str] = None,
        max_segment_bytes: Optional[int] = None,
        allow_request_faults: bool = False,
        drain_timeout: float = 60.0,
        result_retention: int = DEFAULT_RESULT_RETENTION,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        quiet: bool = False,
    ) -> None:
        if drain_timeout <= 0:
            raise InputError(
                "drain_timeout must be positive seconds, got {}".format(
                    drain_timeout
                )
            )
        if result_retention < 1:
            raise InputError(
                "result_retention must be >= 1, got {}".format(
                    result_retention
                )
            )
        from repro.service.batch import RetryPolicy  # late: heavy module

        self.host = host
        self.port = port
        self.machine = machine
        self.registers = registers
        self.config = driver_config or DriverConfig()
        self.pool_size = pool_size
        self.task_timeout = task_timeout
        self.retry_policy = RetryPolicy(
            max_retries=retries, base_delay=backoff
        )
        self.cache = cache
        self.ledger_path = ledger_path
        if durable and not ledger_path:
            raise InputError("--durable requires --ledger")
        self.durable = durable
        self.poison_path = poison_path
        self.max_segment_bytes = max_segment_bytes
        self._poison: set = set()
        if poison_path:
            from repro.service.supervisor import load_poison

            self._poison = set(load_poison(poison_path)["quarantined"])
        self.recovered = 0
        self.allow_request_faults = allow_request_faults
        self.drain_timeout = drain_timeout
        self.result_retention = result_retention
        self.wait_timeout = wait_timeout
        self.quiet = quiet

        self.session = SessionTable(
            max_queue_depth=max_queue_depth,
            per_client_depth=per_client_depth,
        )
        self.dispatcher: Optional[JobDispatcher] = None

        #: Actual bound port, available once :attr:`ready` is set.
        self.bound_port: Optional[int] = None
        #: Set once the listening socket is up (thread-safe; tests).
        self.ready = threading.Event()
        #: The exit code :meth:`run` returned (after the fact; tests).
        self.exit_code: Optional[int] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._drain_reason = ""
        self._draining = False
        self._jobs: Dict[str, Job] = {}
        self._waiters: Dict[str, asyncio.Event] = {}
        self._done_order: Deque[str] = deque()
        self._job_ids = itertools.count(1)
        self._handler_tasks: set = set()
        self._started = time.monotonic()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def run(self, install_signal_handlers: bool = True) -> int:
        """Serve until drained; returns the process exit code."""
        try:
            code = asyncio.run(self._main(install_signal_handlers))
        finally:
            self.ready.set()  # never leave a waiter hanging on a crash
        self.exit_code = code
        return code

    def start_in_thread(self) -> "CompileServer":
        """Serve from a daemon thread (tests/tools).  Blocks until the
        socket is listening; drain with :meth:`request_drain` and wait
        with :meth:`join`."""
        self._thread = threading.Thread(
            target=self.run, kwargs={"install_signal_handlers": False},
            name="repro-serve", daemon=True,
        )
        self._thread.start()
        self.ready.wait(30.0)
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def request_drain(self, reason: str = "api") -> None:
        """Thread-safe drain trigger (tests, embedding)."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._begin_drain, reason)
        except RuntimeError:  # loop already closed
            pass

    async def _main(self, install_signal_handlers: bool) -> int:
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self.dispatcher = JobDispatcher(
            machine=self.machine,
            registers=self.registers,
            driver_config=self.config,
            pool_size=self.pool_size,
            task_timeout=self.task_timeout,
            retry_policy=self.retry_policy,
            cache=self.cache,
            ledger_path=self.ledger_path,
            settle_listener=self._on_settled_dispatcher_thread,
            durable=self.durable,
            max_segment_bytes=self.max_segment_bytes,
        )
        if self.ledger_path:
            self._recover_jobs()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            family=socket.AF_INET,
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        # Workers fork with a copy of this listening socket; unless
        # they close it at entry, killing the server (SIGKILL — no
        # cleanup) leaves the port bound by its orphaned workers and
        # a supervised restart dies with EADDRINUSE.
        self.dispatcher.close_in_workers(
            [sock.fileno() for sock in server.sockets]
        )
        installed_signals: List[int] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self._begin_drain,
                        signal.Signals(signum).name,
                    )
                    installed_signals.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass
        if not self.quiet:
            print(
                "repro serve: listening on http://{}:{} "
                "(pool={}, queue={}, per-client={})".format(
                    self.host, self.bound_port, self.pool_size,
                    self.session.max_queue_depth,
                    self.session.per_client_depth,
                ),
                flush=True,
            )
        get_tracer().event(
            "serve.start", host=self.host, port=self.bound_port,
            pool=self.pool_size,
        )
        self.ready.set()
        try:
            await self._drain_requested.wait()
            # Stop accepting; connections already accepted keep
            # handling (their responses drain with the dispatcher).
            server.close()
            await server.wait_closed()
            drained = await self._loop.run_in_executor(
                None, self.dispatcher.join, self.drain_timeout
            )
            if not drained and not self.quiet:
                print(
                    "repro serve: drain timed out after {:.1f}s".format(
                        self.drain_timeout
                    ),
                    flush=True,
                )
            # Let in-flight handlers (wait-mode waiters woken by the
            # drain settlements) write their final bodies.
            pending = [t for t in self._handler_tasks if not t.done()]
            if pending:
                await asyncio.wait(pending, timeout=10.0)
        finally:
            for signum in installed_signals:
                self._loop.remove_signal_handler(signum)
            self.dispatcher.begin_drain()
            self.dispatcher.join(self.drain_timeout)
        get_tracer().event(
            "serve.stop", reason=self._drain_reason,
            uptime_s=round(time.monotonic() - self._started, 3),
        )
        if not self.quiet:
            snap = self.dispatcher.snapshot()
            print(
                "repro serve: drained ({}): {} submitted, {} completed, "
                "{} interrupted, 0 orphans".format(
                    self._drain_reason or "drain",
                    snap["stats"]["submitted"],
                    snap["stats"]["completed"],
                    snap["stats"]["interrupted"],
                ),
                flush=True,
            )
        return EXIT_SERVE_OK

    def _recover_jobs(self) -> None:
        """Resume the durable queue from the ledger.

        Always bumps the job-id counter past every journaled id (so a
        restart can never mint a task id the ledger already used); in
        durable mode additionally resubmits every ``accepted``/
        ``dispatched`` row — the jobs a dead server took in but never
        settled — under their original ids, settling quarantined
        poison inputs ``failed`` instead of re-dispatching them.
        """
        from repro.service.checkpoint import RunLedger

        entries = RunLedger.load(self.ledger_path)
        highest = 0
        for task_id in entries:
            match = re.match(r"job-(\d+)$", task_id)
            if match:
                highest = max(highest, int(match.group(1)))
        if highest:
            self._job_ids = itertools.count(highest + 1)
        if not self.durable:
            return
        for task_id in sorted(entries):
            record = entries[task_id]
            if record.get("status") not in ("accepted", "dispatched"):
                continue
            name = record.get("name")
            text = record.get("text")
            if not isinstance(name, str) or not isinstance(text, str):
                continue
            task = CompileTask(
                task_id=task_id, name=name, text=text,
                is_ir=bool(record.get("is_ir", False)),
            )
            client = record.get("client")
            job = Job(
                job_id=task_id,
                client=client if isinstance(client, str) and client
                else "recovered",
                task=task,
                key=self.dispatcher.job_key(task),
            )
            self._jobs[task_id] = job
            self.recovered += 1
            if task.digest() in self._poison:
                job.notes.append(
                    "input digest quarantined by the supervisor"
                )
                self.dispatcher.settle_failed(
                    job,
                    "input quarantined as poison after repeated "
                    "crashes in flight",
                )
            else:
                self.dispatcher.submit(job)
        if self.recovered:
            get_metrics().counter("serve.recovered").inc(self.recovered)
            get_tracer().event("serve.recover", jobs=self.recovered)
            if not self.quiet:
                print(
                    "repro serve: recovered {} unsettled job(s) from "
                    "{}".format(self.recovered, self.ledger_path),
                    flush=True,
                )

    def _begin_drain(self, reason: str = "drain") -> None:
        """Loop-thread drain entry (signal handler / endpoint)."""
        if self._draining:
            return
        self._draining = True
        self._drain_reason = reason
        self.session.begin_drain()
        self.dispatcher.begin_drain()
        get_metrics().counter("serve.drains").inc()
        if self._drain_requested is not None:
            self._drain_requested.set()

    # ------------------------------------------------------------------
    # Dispatcher → loop plumbing
    # ------------------------------------------------------------------

    def _on_settled_dispatcher_thread(self, job: Job) -> None:
        """Runs on the dispatcher thread for every settled job: return
        the client's admission token, then wake any waiter on the loop
        thread."""
        self.session.release(job.client)
        get_metrics().gauge("serve.queue_depth").set(self.session.depth)
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._on_settled, job.job_id)
        except RuntimeError:  # loop closed mid-drain; waiters are gone
            pass

    def _on_settled(self, job_id: str) -> None:
        waiter = self._waiters.pop(job_id, None)
        if waiter is not None:
            waiter.set()
        self._done_order.append(job_id)
        while len(self._done_order) > self.result_retention:
            evicted = self._done_order.popleft()
            job = self._jobs.get(evicted)
            if job is not None and job.done:
                del self._jobs[evicted]

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        started = time.perf_counter()
        method, path, status = "?", "?", 500
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            method, path, query, body = await self._read_request(reader)
            status, doc, raw = await self._route(method, path, query, body)
            await self._respond(writer, status, doc, raw)
        except _HttpError as exc:
            status = exc.status
            try:
                await self._respond(
                    writer, exc.status,
                    {"error": exc.reason, "message": exc.message},
                )
            except (ConnectionError, OSError):
                pass
        except (
            asyncio.IncompleteReadError, ConnectionError, OSError,
        ):
            status = 0  # client went away; nothing to answer
        except ReproError as exc:
            status = 500
            try:
                await self._respond(
                    writer, 500,
                    {"error": "fault-injected", "message": str(exc)},
                )
            except (ConnectionError, OSError):
                pass
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            get_tracer().span_point(
                "serve.request",
                time.perf_counter() - started,
                method=method,
                path=path,
                status=status,
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=30.0
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "bad-request", "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(
                400, "bad-request", "bad Content-Length header"
            ) from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, "payload-too-large",
                "request body over {} bytes".format(MAX_BODY_BYTES),
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query_text = target.partition("?")
        query: Dict[str, str] = {}
        for pair in query_text.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return method, path, query, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: Optional[Dict[str, object]],
        raw: Optional[bytes] = None,
    ) -> None:
        body = raw if raw is not None else json.dumps(
            doc, sort_keys=True
        ).encode("utf-8")
        writer.write(
            "HTTP/1.1 {} {}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: {}\r\n"
            "Connection: close\r\n"
            "\r\n".format(
                status, _STATUS_TEXT.get(status, "Unknown"), len(body)
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing / endpoints
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, Optional[Dict[str, object]], Optional[bytes]]:
        spec = faults.spec_at("service.server")
        if spec is not None:
            # Request-path fault drill.  Timed actions sleep on the
            # event loop's clock — only this request slows down, which
            # is what a wedged handler looks like from outside.
            if spec.action in ("stall", "hang"):
                await asyncio.sleep(spec.seconds)
            elif spec.action == "crash":
                os._exit(faults.CRASH_EXIT_CODE)
            elif spec.action == "raise":
                raise spec.error(
                    spec.message
                    or "injected fault at 'service.server'"
                )

        if path == "/submit" and method == "POST":
            status, doc = await self._endpoint_submit(body)
        elif path == "/poll" and method == "GET":
            status, doc = self._endpoint_poll(query)
        elif path == "/result" and method == "GET":
            status, doc = self._endpoint_result(query)
        elif path == "/healthz" and method == "GET":
            status, doc = self._endpoint_healthz()
        elif path == "/drain" and method == "POST":
            status, doc = self._endpoint_drain()
        elif path in ("/submit", "/drain", "/poll", "/result", "/healthz"):
            raise _HttpError(
                405, "method-not-allowed",
                "{} does not accept {}".format(path, method),
            )
        else:
            raise _HttpError(
                404, "not-found", "no endpoint {!r}".format(path)
            )

        if spec is not None and spec.action == "poison-result":
            get_metrics().counter("serve.poisoned_responses").inc()
            return status, None, b"\x00NOT-JSON{{{poisoned-response"
        return status, doc, None

    async def _endpoint_submit(
        self, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        request = self._parse_submit(body)
        client = request["client"]
        decision = self.session.admit(client)
        if decision is not None:
            self._count_shed(decision)
            return decision.http_status, decision.as_dict()

        job_id = "job-{:06d}".format(next(self._job_ids))
        task = CompileTask(
            task_id=job_id,
            name=request["name"],
            text=request["text"],
            is_ir=request["is_ir"],
        )
        if request["faults"]:
            task = task.with_faults(request["faults"])
        if self._poison and task.digest() in self._poison:
            # The supervisor quarantined this input after repeated
            # crashes-in-flight; refuse it instead of wounding the
            # server again.  The admission token goes back: refused
            # work holds no queue slot.
            self.session.release(client)
            get_metrics().counter("serve.shed.poisoned-input").inc()
            get_tracer().event(
                "serve.poison_refused", digest=task.digest()[:12]
            )
            return 403, {
                "error": "poisoned-input",
                "message": "input digest {} is quarantined (it was in "
                "flight across repeated server crashes); fix the input "
                "or clear the poison list".format(task.digest()[:12]),
                "shed": True,
            }
        deadline = None
        if request["deadline_s"] is not None:
            deadline = time.monotonic() + request["deadline_s"]
        job = Job(
            job_id=job_id,
            client=client,
            task=task,
            key=self.dispatcher.job_key(task),
            deadline=deadline,
        )
        self._jobs[job_id] = job
        waiter: Optional[asyncio.Event] = None
        if request["wait"]:
            waiter = asyncio.Event()
            self._waiters[job_id] = waiter
        coalesced = self.dispatcher.submit(job)
        get_metrics().gauge("serve.queue_depth").set(self.session.depth)

        if waiter is None:
            return 202, {
                "job_id": job_id,
                "state": job.state,
                "coalesced": coalesced,
                "coalesced_into": job.coalesced_into,
            }
        timeout = self.wait_timeout
        if request["deadline_s"] is not None:
            timeout = min(timeout, request["deadline_s"] + 30.0)
        try:
            await asyncio.wait_for(waiter.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(job_id, None)
            return 202, job.as_dict()
        return 200, job.as_dict()

    def _parse_submit(self, body: bytes) -> Dict[str, object]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(
                400, "bad-request", "submit body must be a JSON object"
            ) from None
        if not isinstance(payload, dict):
            raise _HttpError(
                400, "bad-request", "submit body must be a JSON object"
            )
        name = payload.get("name")
        text = payload.get("text")
        if not isinstance(name, str) or not name:
            raise _HttpError(
                400, "bad-request", "'name' must be a non-empty string"
            )
        if not isinstance(text, str) or not text:
            raise _HttpError(
                400, "bad-request", "'text' must be a non-empty string"
            )
        client = payload.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise _HttpError(
                400, "bad-request", "'client' must be a non-empty string"
            )
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                raise _HttpError(
                    400, "bad-request",
                    "'deadline_s' must be positive seconds",
                )
            deadline_s = float(deadline_s)
        fault_dicts: List[Dict[str, object]] = []
        fault_text = payload.get("faults")
        if fault_text:
            if not self.allow_request_faults:
                raise _HttpError(
                    403, "faults-disabled",
                    "per-request faults need --allow-request-faults",
                )
            if not isinstance(fault_text, str):
                raise _HttpError(
                    400, "bad-request",
                    "'faults' must be a spec string, e.g. "
                    "'service.worker:crash'",
                )
            try:
                fault_dicts = [
                    spec.as_dict()
                    for spec in faults.parse_fault_specs(fault_text)
                ]
            except InputError as exc:
                raise _HttpError(
                    400, "bad-request", str(exc)
                ) from None
        return {
            "name": name,
            "text": text,
            "is_ir": bool(payload.get("is_ir", False)),
            "client": client,
            "deadline_s": deadline_s,
            "wait": bool(payload.get("wait", False)),
            "faults": fault_dicts,
        }

    def _count_shed(self, decision: ShedDecision) -> None:
        get_metrics().counter(
            "serve.shed.{}".format(decision.reason)
        ).inc()
        get_tracer().event("serve.shed", reason=decision.reason)

    def _lookup_job(self, query: Dict[str, str]) -> Job:
        job_id = query.get("job", "")
        job = self._jobs.get(job_id)
        if job is None:
            raise _HttpError(
                404, "unknown-job",
                "no job {!r} (settled jobs are retained for the last "
                "{} results)".format(job_id, self.result_retention),
            )
        return job

    def _endpoint_poll(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, object]]:
        return 200, self._lookup_job(query).as_dict()

    def _endpoint_result(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, object]]:
        job = self._lookup_job(query)
        return (200 if job.done else 202), job.as_dict()

    def _endpoint_healthz(self) -> Tuple[int, Dict[str, object]]:
        return 200, {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "session": self.session.snapshot(),
            "dispatcher": self.dispatcher.snapshot(),
            "jobs_held": len(self._jobs),
            "machine": self.machine,
            "engine": self.config.engine,
            "durable": self.durable,
            "recovered": self.recovered,
            "poisoned_inputs": len(self._poison),
        }

    def _endpoint_drain(self) -> Tuple[int, Dict[str, object]]:
        self._begin_drain("endpoint")
        return 200, {"draining": True}


class _HttpError(Exception):
    """A typed HTTP error response (status + machine-readable reason)."""

    def __init__(self, status: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message
