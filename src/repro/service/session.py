"""Admission control for the compilation service.

A long-running server cannot let demand queue without bound: every
queued request holds memory, and a deep queue turns into latency no
deadline can survive.  :class:`SessionTable` applies **token-style
admission** at two scopes before a request may become a job:

* **per-client tokens** — each client identity holds
  ``per_client_depth`` tokens; a submit takes one, settling the job
  returns it.  A client that floods faster than it drains runs out of
  tokens and is shed with :data:`SHED_CLIENT_QUEUE` (HTTP 429) while
  other clients keep compiling — one greedy client cannot starve the
  fleet.
* **global depth** — at most ``max_queue_depth`` admitted-but-
  unsettled jobs in total; past it every client is shed with
  :data:`SHED_QUEUE_FULL` (HTTP 503, the server itself is the
  bottleneck).
* **drain** — once the server begins graceful drain, all admission is
  refused with :data:`SHED_DRAINING` (HTTP 503 plus ``Retry-After``
  semantics: the client should go elsewhere).

Every decision is a typed :class:`ShedDecision` so the HTTP layer can
map it 1:1 onto status codes and machine-readable error bodies, and
the counters ``serve.shed.<reason>`` make shed storms visible in
``repro stats``.

The table is thread-safe: admission runs on the asyncio loop thread
while settlement (token release) runs on the dispatcher thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.utils.errors import InputError

#: Typed shed reasons (wire values of the ``error`` field).
SHED_CLIENT_QUEUE = "client-queue-full"
SHED_QUEUE_FULL = "server-queue-full"
SHED_DRAINING = "draining"

#: Shed reason → HTTP status code the front end answers with.
SHED_HTTP_STATUS = {
    SHED_CLIENT_QUEUE: 429,
    SHED_QUEUE_FULL: 503,
    SHED_DRAINING: 503,
}


@dataclass(frozen=True)
class ShedDecision:
    """One refused admission: the typed reason plus a human message."""

    reason: str
    message: str

    @property
    def http_status(self) -> int:
        return SHED_HTTP_STATUS[self.reason]

    def as_dict(self) -> Dict[str, object]:
        return {
            "error": self.reason,
            "message": self.message,
            "shed": True,
        }


class SessionTable:
    """Token-bucket admission over client identities.

    Args:
        max_queue_depth: Global bound on admitted-but-unsettled jobs
            (queued + in flight).
        per_client_depth: Token count per client identity.
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        per_client_depth: int = 8,
    ) -> None:
        if max_queue_depth < 1:
            raise InputError(
                "max_queue_depth must be >= 1, got {}".format(
                    max_queue_depth
                )
            )
        if per_client_depth < 1:
            raise InputError(
                "per_client_depth must be >= 1, got {}".format(
                    per_client_depth
                )
            )
        self.max_queue_depth = max_queue_depth
        self.per_client_depth = per_client_depth
        self._lock = threading.Lock()
        self._held: Dict[str, int] = {}
        self._total = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, client: str) -> Optional[ShedDecision]:
        """Take one token for *client*; None means admitted.

        Refusals never consume a token, so a shed storm cannot wedge
        the table."""
        with self._lock:
            if self._draining:
                return ShedDecision(
                    reason=SHED_DRAINING,
                    message="server is draining; no new work accepted",
                )
            # Per-client before global: "you are over YOUR bound" is
            # actionable (back off), while a generic 503 only says the
            # server is busy — answer with the most specific refusal.
            held = self._held.get(client, 0)
            if held >= self.per_client_depth:
                return ShedDecision(
                    reason=SHED_CLIENT_QUEUE,
                    message="client {!r} already holds {} in-flight "
                    "request(s)".format(client, held),
                )
            if self._total >= self.max_queue_depth:
                return ShedDecision(
                    reason=SHED_QUEUE_FULL,
                    message="server queue depth {} reached".format(
                        self.max_queue_depth
                    ),
                )
            self._held[client] = held + 1
            self._total += 1
            return None

    def release(self, client: str) -> None:
        """Return *client*'s token when its job settles (any outcome).
        Releasing an unknown client is a no-op, never an error — the
        dispatcher must be free to settle defensively."""
        with self._lock:
            held = self._held.get(client, 0)
            if held <= 1:
                self._held.pop(client, None)
            else:
                self._held[client] = held - 1
            if held > 0:
                self._total -= 1

    # ------------------------------------------------------------------
    # Drain / introspection
    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse all further admission (idempotent)."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def depth(self) -> int:
        """Currently admitted-but-unsettled jobs."""
        with self._lock:
            return self._total

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "depth": self._total,
                "max_queue_depth": self.max_queue_depth,
                "per_client_depth": self.per_client_depth,
                "clients": {c: n for c, n in sorted(self._held.items())},
                "draining": self._draining,
            }
