"""Register classes: split fixed/floating-point register files.

The paper's examples allocate from a single register file (Figure 5
maps both fixed and float values onto r1..r4).  Real machines of its
era (RS/6000, R3000+FPA) keep separate integer and floating-point
files; this module extends the framework to that shape:

* a web's :func:`register class <web_register_class>` comes from its
  defining instructions (floating-point producers live in the float
  file);
* cross-class graph edges are meaningless — two files never alias — so
  class-aware allocation colors each class-induced subgraph separately
  against its own budget;
* Theorem 1 survives per class: a false edge between an int and a
  float web can never be violated, because the two values cannot share
  a register anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal

import networkx as nx

from repro.analysis.webs import Web
from repro.ir.opcodes import Opcode
from repro.ir.operands import PhysicalRegister

RegisterClass = Literal["int", "float"]

#: Bank prefix per class.
BANK_OF_CLASS: Dict[str, str] = {"int": "r", "float": "f"}

_FLOAT_PRODUCERS = {
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMA,
    Opcode.FLOAD,
}


def web_register_class(web: Web) -> RegisterClass:
    """The file *web* must live in: float iff some definition produces
    a floating-point value.

    Copies (MOV defs) are class-neutral here; use :func:`classify_webs`
    for the copy-propagating classification that banked allocation
    needs (a join mov of two float values is itself a float web).
    """
    for point in web.definitions:
        if point.instruction.opcode in _FLOAT_PRODUCERS:
            return "float"
    return "int"


def classify_webs(webs: List[Web], chains=None) -> Dict[Web, RegisterClass]:
    """Classify every web, propagating floatness through copies.

    A web is float when some definition is a float producer, or when
    some MOV definition copies from a float web (fixpoint over the
    def-use *chains*; without chains, falls back to the producer-only
    rule).
    """
    classes: Dict[Web, RegisterClass] = {
        web: web_register_class(web) for web in webs
    }
    if chains is None:
        return classes

    from repro.analysis.webs import web_of_definition

    def_to_web = web_of_definition(webs)
    changed = True
    while changed:
        changed = False
        for web in webs:
            if classes[web] == "float":
                continue
            for point in web.definitions:
                instr = point.instruction
                if instr.opcode is not Opcode.MOV:
                    continue
                for src in instr.uses():
                    for src_def in chains.defs_of.get((instr, src), ()):
                        src_web = def_to_web.get(src_def)
                        if src_web is not None and classes.get(src_web) == "float":
                            classes[web] = "float"
                            changed = True
                            break
    return classes


def split_webs_by_class(
    webs: List[Web], chains=None
) -> Dict[RegisterClass, List[Web]]:
    groups: Dict[RegisterClass, List[Web]] = {"int": [], "float": []}
    classes = classify_webs(webs, chains)
    for web in webs:
        groups[classes[web]].append(web)
    return groups


def class_subgraph(graph: nx.Graph, webs: List[Web]) -> nx.Graph:
    """The subgraph induced by one class (cross-class edges dropped)."""
    return graph.subgraph(webs).copy()


def banked_register_pool(
    register_class: RegisterClass, count: int
) -> List[PhysicalRegister]:
    bank = BANK_OF_CLASS[register_class]
    return [PhysicalRegister(i + 1, bank=bank) for i in range(count)]


@dataclass
class BankedBudget:
    """Per-class register budgets for a split-file machine."""

    int_registers: int
    float_registers: int

    def of(self, register_class: RegisterClass) -> int:
        return (
            self.int_registers
            if register_class == "int"
            else self.float_registers
        )
