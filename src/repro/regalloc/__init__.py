"""Baseline register allocation: interference graph, Chaitin coloring,
spilling, and assignment rewriting."""

from repro.regalloc.assignment import (
    RegisterAssignment,
    apply_assignment,
    make_assignment,
    make_banked_assignment,
    verify_assignment_against_graph,
)
from repro.regalloc.coalesce import (
    build_bias_map,
    choose_biased_color,
    mov_related_pairs,
    remove_identity_moves,
)
from repro.regalloc.classes import (
    BankedBudget,
    banked_register_pool,
    split_webs_by_class,
    web_register_class,
)
from repro.regalloc.briggs import briggs_color
from repro.regalloc.compact import (
    CompactColoring,
    CompactGraph,
    CompactInterference,
    build_compact_interference,
    compact_chaitin_allocate,
    compact_chaitin_color,
    compact_classic_h,
    compact_graph_from_nx,
    region_interference_rows,
)
from repro.regalloc.chaitin import (
    ColoringResult,
    chaitin_color,
    classic_h,
    exact_chromatic_number,
    greedy_chromatic_upper_bound,
    select_colors,
    uniform_cost,
    validate_coloring,
)
from repro.regalloc.interference import InterferenceGraph, build_interference_graph
from repro.regalloc.spill import (
    SpillReport,
    insert_spill_code,
    is_rematerializable,
    is_spill_temp,
    make_cost_function,
)

__all__ = [
    "BankedBudget",
    "ColoringResult",
    "CompactColoring",
    "CompactGraph",
    "CompactInterference",
    "InterferenceGraph",
    "RegisterAssignment",
    "SpillReport",
    "apply_assignment",
    "briggs_color",
    "build_compact_interference",
    "build_interference_graph",
    "chaitin_color",
    "compact_chaitin_allocate",
    "compact_chaitin_color",
    "compact_classic_h",
    "compact_graph_from_nx",
    "region_interference_rows",
    "classic_h",
    "exact_chromatic_number",
    "greedy_chromatic_upper_bound",
    "insert_spill_code",
    "is_rematerializable",
    "is_spill_temp",
    "make_assignment",
    "make_banked_assignment",
    "make_cost_function",
    "banked_register_pool",
    "build_bias_map",
    "choose_biased_color",
    "mov_related_pairs",
    "remove_identity_moves",
    "select_colors",
    "split_webs_by_class",
    "web_register_class",
    "uniform_cost",
    "validate_coloring",
    "verify_assignment_against_graph",
]
