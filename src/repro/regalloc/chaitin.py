"""Chaitin-style graph coloring (simplify / select / spill).

The baseline allocator of [5] (Chaitin et al.), which both the paper's
procedure and our combined variant embed: repeatedly remove nodes of
degree < r (they are trivially colorable), spill the cheapest node when
stuck, then color in reverse deletion order.

The module is generic over node type — the same engine colors classic
interference graphs and, via :mod:`repro.core.coloring`, the
parallelizable interference graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

import networkx as nx

from repro.utils.errors import AllocationError
from repro.utils.faults import trip

Node = Hashable
CostFn = Callable[[Node], float]


def uniform_cost(_node: Node) -> float:
    """Every node costs 1 — degree alone drives spill choice."""
    return 1.0


def classic_h(graph: nx.Graph, cost: CostFn) -> Callable[[Node], float]:
    """The customary spill metric ``h(v) = cost(v) / deg(v)``.

    Nodes of degree 0 never need spilling; they get infinite h.
    """

    def metric(node: Node) -> float:
        degree = graph.degree(node)
        if degree == 0:
            return float("inf")
        return cost(node) / degree

    return metric


def _node_sort_key(node: Node):
    """Deterministic tie-break: webs by index, else by str()."""
    index = getattr(node, "index", None)
    if index is not None:
        return (0, index)
    return (1, str(node))


def _simplify_worklist(work: nx.Graph, num_colors: int, stack: List[Node]) -> None:
    """Drain every simplifiable node of *work* onto *stack*.

    Heap-backed worklist over the sort key: the node with the lowest
    key among those of degree < r is removed first, and a removal that
    drops a neighbor below r pushes that neighbor — O((n + e) log n)
    per drain, replacing the old full re-sort of ``work.nodes()`` on
    every pass (O(n² log n) on large graphs).  The removal *set* it
    produces is the same as the pass-based scan's (eligibility is
    monotone under removals), so spill decisions are unchanged.
    """
    import heapq

    seq = 0  # heap tiebreak: nodes themselves may not be comparable
    heap = []
    for node in work.nodes():
        if work.degree(node) < num_colors:
            heap.append((_node_sort_key(node), seq, node))
            seq += 1
    heapq.heapify(heap)
    while heap:
        _, _, node = heapq.heappop(heap)
        if not work.has_node(node):
            continue
        neighbors = list(work.neighbors(node))
        stack.append(node)
        work.remove_node(node)
        for nbr in neighbors:
            if work.degree(nbr) == num_colors - 1:
                heapq.heappush(heap, (_node_sort_key(nbr), seq, nbr))
                seq += 1


@dataclass
class ColoringResult:
    """Outcome of one coloring round.

    Attributes:
        coloring: node → color (0-based).  Spilled nodes are absent.
        spilled: Nodes chosen for spilling, in spill order.
        selection_order: Reverse deletion order used when selecting.
    """

    coloring: Dict[Node, int]
    spilled: List[Node]
    selection_order: List[Node] = field(default_factory=list)

    @property
    def num_colors_used(self) -> int:
        return len(set(self.coloring.values())) if self.coloring else 0

    @property
    def has_spills(self) -> bool:
        return bool(self.spilled)

    def color_of(self, node: Node) -> int:
        try:
            return self.coloring[node]
        except KeyError:
            raise AllocationError("{} was spilled, has no color".format(node))


def select_colors(
    graph: nx.Graph,
    stack: Sequence[Node],
    num_colors: int,
) -> Dict[Node, int]:
    """Color nodes in reverse deletion order ("this is done by
    rebuilding G a node at a time"), choosing the lowest free color.

    Raises:
        AllocationError: if some node finds no free color — cannot
            happen when the stack came from a valid simplify pass.
    """
    coloring: Dict[Node, int] = {}
    for node in reversed(list(stack)):
        used = {
            coloring[nbr]
            for nbr in graph.neighbors(node)
            if nbr in coloring
        }
        color = next(
            (c for c in range(num_colors) if c not in used), None
        )
        if color is None:
            raise AllocationError(
                "no free color for {} among {}".format(node, num_colors)
            )
        coloring[node] = color
    return coloring


def chaitin_color(
    graph: nx.Graph,
    num_colors: int,
    spill_metric: Optional[Callable[[Node], float]] = None,
    allow_spill: bool = True,
) -> ColoringResult:
    """One round of Chaitin coloring on *graph* with *num_colors*.

    Args:
        graph: Undirected conflict graph (not mutated).
        num_colors: The register count r.
        spill_metric: Node badness — the *minimum* is spilled when no
            node has degree < r.  Defaults to ``h(v) = 1/deg(v)``
            (i.e. spill the highest-degree node).
        allow_spill: When False, raise instead of spilling.

    Returns:
        A :class:`ColoringResult`; when spills occur the caller is
        expected to insert spill code and re-run on the rewritten
        program, as the paper's procedure does.
    """
    trip("regalloc.chaitin")
    work = graph.copy()
    metric = spill_metric or classic_h(graph, uniform_cost)
    stack: List[Node] = []
    spilled: List[Node] = []

    while work.number_of_nodes():
        # Simplify: remove any node with degree < r (worklist drain —
        # lowest sort key first, O(1) eligibility updates).
        _simplify_worklist(work, num_colors, stack)
        if not work.number_of_nodes():
            break
        # Blocked: every remaining node has degree >= r.  Spill the
        # node minimizing the metric; infinite-metric nodes (spill
        # temporaries) are never victims.  Ties break on the sort key,
        # as the old sorted-candidates scan did.
        if not allow_spill:
            raise AllocationError(
                "graph needs more than {} colors and spilling is "
                "disabled (stuck at {} nodes)".format(
                    num_colors, work.number_of_nodes()
                )
            )
        victim = None
        best = None
        for node in work.nodes():
            value = metric(node)
            if value == float("inf"):
                continue
            if victim is None or (value, _node_sort_key(node)) < best:
                victim = node
                best = (value, _node_sort_key(node))
        if victim is None:
            raise AllocationError(
                "irreducible register pressure: {} unspillable values "
                "exceed {} colors".format(work.number_of_nodes(), num_colors)
            )
        spilled.append(victim)
        work.remove_node(victim)

    coloring = select_colors(graph.subgraph(stack), stack, num_colors)
    return ColoringResult(
        coloring=coloring, spilled=spilled, selection_order=list(stack)
    )


def greedy_chromatic_upper_bound(graph: nx.Graph) -> int:
    """Colors used by largest-degree-first greedy — a quick χ upper
    bound for sizing experiments."""
    if graph.number_of_nodes() == 0:
        return 0
    order = sorted(
        graph.nodes(), key=lambda n: (-graph.degree(n),) + (_node_sort_key(n),)
    )
    coloring: Dict[Node, int] = {}
    for node in order:
        used = {coloring[n] for n in graph.neighbors(node) if n in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[node] = color
    return max(coloring.values()) + 1


def exact_chromatic_number(graph: nx.Graph, node_limit: int = 40) -> int:
    """The exact chromatic number by backtracking.

    Intended for the paper's worked examples and property tests
    ("optimal coloring of the parallelizable interference graph"), so
    it refuses graphs beyond *node_limit* nodes.

    Raises:
        AllocationError: when the graph is too large for exact search.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    if n > node_limit:
        raise AllocationError(
            "exact coloring limited to {} nodes, got {}".format(node_limit, n)
        )
    nodes = sorted(graph.nodes(), key=lambda v: -graph.degree(v))
    neighbors = {v: set(graph.neighbors(v)) for v in nodes}

    def colorable(k: int) -> bool:
        assignment: Dict[Node, int] = {}

        def backtrack(idx: int) -> bool:
            if idx == len(nodes):
                return True
            node = nodes[idx]
            used = {
                assignment[nbr] for nbr in neighbors[node] if nbr in assignment
            }
            # Symmetry break: only allow one brand-new color.
            ceiling = min(k, (max(assignment.values()) + 2) if assignment else 1)
            for color in range(ceiling):
                if color in used:
                    continue
                assignment[node] = color
                if backtrack(idx + 1):
                    return True
                del assignment[node]
            return False

        return backtrack(0)

    lower = 1
    if graph.number_of_edges():
        lower = 2
    for k in range(lower, n + 1):
        if colorable(k):
            return k
    return n


def validate_coloring(graph: nx.Graph, coloring: Dict[Node, int]) -> None:
    """Raise :class:`AllocationError` on any monochromatic edge."""
    for a, b in graph.edges():
        if a in coloring and b in coloring and coloring[a] == coloring[b]:
            raise AllocationError(
                "nodes {} and {} share color {}".format(a, b, coloring[a])
            )
