"""Briggs-style optimistic coloring.

Chaitin's simplify phase is pessimistic: a node of degree >= r is
spilled even though its neighbors may end up sharing colors.  Briggs'
variant pushes such nodes on the stack *optimistically* and only
spills those that really find no free color during selection.  The
paper's procedure is Chaitin-based; this module provides the drop-in
optimistic variant used by the coloring ablation (an "implement
existing heuristics in this framework" extension).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import networkx as nx

from repro.regalloc.chaitin import (
    ColoringResult,
    Node,
    _node_sort_key,
    _simplify_worklist,
    classic_h,
    uniform_cost,
)
from repro.utils.errors import AllocationError


def briggs_color(
    graph: nx.Graph,
    num_colors: int,
    spill_metric: Optional[Callable[[Node], float]] = None,
) -> ColoringResult:
    """One round of Briggs optimistic coloring.

    Same contract as :func:`~repro.regalloc.chaitin.chaitin_color`:
    ``spilled`` lists nodes that found no color and must be rewritten
    to memory before re-running.  Never spills more nodes than
    Chaitin's pessimistic rule would.
    """
    work = graph.copy()
    metric = spill_metric or classic_h(graph, uniform_cost)
    stack: List[Node] = []

    while work.number_of_nodes():
        _simplify_worklist(work, num_colors, stack)
        if not work.number_of_nodes():
            break
        # Optimism: push the would-be spill candidate anyway (same
        # (metric, sort key) victim choice as the Chaitin engine).
        victim = None
        best = None
        for node in work.nodes():
            value = metric(node)
            if value == float("inf"):
                continue
            if victim is None or (value, _node_sort_key(node)) < best:
                victim = node
                best = (value, _node_sort_key(node))
        if victim is None:
            raise AllocationError(
                "irreducible register pressure: {} unspillable values "
                "exceed {} colors".format(work.number_of_nodes(), num_colors)
            )
        stack.append(victim)
        work.remove_node(victim)

    coloring: Dict[Node, int] = {}
    spilled: List[Node] = []
    for node in reversed(stack):
        used = {
            coloring[nbr]
            for nbr in graph.neighbors(node)
            if nbr in coloring
        }
        color = next((c for c in range(num_colors) if c not in used), None)
        if color is None:
            spilled.append(node)
        else:
            coloring[node] = color
    return ColoringResult(
        coloring=coloring, spilled=spilled, selection_order=list(stack)
    )
