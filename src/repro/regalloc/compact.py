"""Compact (index-based) interference and coloring kernels.

The reference back half of the pipeline walks object graphs: the
interference builder inserts edges one ``networkx`` call at a time and
the Chaitin engine re-sorts the remaining nodes every simplify pass.
This module is the compact twin, mirroring the PR 1/6 kernel-versus-
reference pattern: webs are referred to only by their dense ``index``,
adjacency is one big-int bitrow per web (bit j of row i = webs i and j
interfere), degrees live in a flat list, and simplify/spill/select run
as a heap-backed worklist with O(1) degree decrement and neighbor-color
bitmask selection.

Equivalence contract (pinned by ``tests/regalloc/test_compact.py``):

* :func:`build_compact_interference` produces exactly the edge set of
  :func:`repro.regalloc.interference.build_interference_graph` —
  the interval extraction and stabbing logic are shared, only the edge
  sink differs (bitrows, bulk-set under numpy, instead of
  ``Graph.add_edge``).
* :func:`compact_chaitin_color` reproduces the worklist reference
  :func:`repro.regalloc.chaitin.chaitin_color` node for node — same
  stack, same spill sequence, same colors — under the fixed tie-break
  (lowest index among eligible nodes; spill victims minimize
  ``(metric, index)``).
* :func:`compact_chaitin_allocate` is the driver's compact rung of the
  Chaitin fallback: identical spill rounds and assignment to
  :func:`repro.pipeline.strategies._chaitin_allocate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.defuse import DefUseChains, shared_def_use_chains
from repro.analysis.liveness import (
    LiveInterval,
    LivenessRows,
    block_live_intervals,
    live_variables_rows,
)
from repro.analysis.reaching import DefPoint, reaching_definitions
from repro.analysis.webs import Web, build_webs, web_of_definition
from repro.deps.vector import HAVE_NUMPY, unpack_rows, words_for
from repro.ir.function import Function
from repro.ir.operands import Register
from repro.regalloc.interference import InterferenceGraph, _interval_owner
from repro.utils.errors import AllocationError
from repro.utils.faults import trip

if HAVE_NUMPY:  # pragma: no cover - exercised via HAVE_NUMPY branches
    import numpy as _np

__all__ = [
    "CompactColoring",
    "CompactGraph",
    "CompactInterference",
    "build_compact_interference",
    "compact_chaitin_allocate",
    "compact_chaitin_color",
    "compact_classic_h",
    "compact_graph_from_nx",
    "region_interference_rows",
]


# ----------------------------------------------------------------------
# The adjacency-bitrow graph
# ----------------------------------------------------------------------


@dataclass
class CompactGraph:
    """An undirected graph over nodes ``0..n-1`` as big-int bitrows.

    Attributes:
        n: Node count.
        adj: ``adj[i]`` has bit j set iff {i, j} is an edge.
        degree: Row popcounts (kept in sync by :meth:`add_edge`).
    """

    n: int
    adj: List[int] = field(default_factory=list)
    degree: List[int] = field(default_factory=list)

    @classmethod
    def empty(cls, n: int) -> "CompactGraph":
        return cls(n=n, adj=[0] * n, degree=[0] * n)

    @classmethod
    def from_rows(cls, rows: Sequence[int]) -> "CompactGraph":
        adj = list(rows)
        return cls(n=len(adj), adj=adj, degree=[r.bit_count() for r in adj])

    def add_edge(self, i: int, j: int) -> None:
        if i == j:
            return
        if not (self.adj[i] >> j) & 1:
            self.adj[i] |= 1 << j
            self.adj[j] |= 1 << i
            self.degree[i] += 1
            self.degree[j] += 1

    def has_edge(self, i: int, j: int) -> bool:
        return bool((self.adj[i] >> j) & 1)

    def neighbors(self, i: int) -> List[int]:
        return _bit_indices(self.adj[i])

    def edge_list(self) -> List[Tuple[int, int]]:
        """Edges as (lo, hi) pairs in lexicographic order."""
        edges: List[Tuple[int, int]] = []
        for i in range(self.n):
            row = self.adj[i] >> (i + 1)
            base = i + 1
            while row:
                lsb = row & -row
                edges.append((i, base + lsb.bit_length() - 1))
                row ^= lsb
        return edges

    def number_of_edges(self) -> int:
        return sum(self.degree) // 2


def _bit_indices(mask: int) -> List[int]:
    out: List[int] = []
    while mask:
        lsb = mask & -mask
        out.append(lsb.bit_length() - 1)
        mask ^= lsb
    return out


def compact_graph_from_nx(graph) -> Tuple[CompactGraph, List]:
    """Adapt a ``networkx`` graph: nodes ordered by the reference
    tie-break key (webs by index, else by ``str``) become indices
    ``0..n-1``.  Returns the compact graph plus the node list, so
    results map back (``nodes[i]`` is compact node i)."""
    from repro.regalloc.chaitin import _node_sort_key

    nodes = sorted(graph.nodes(), key=_node_sort_key)
    position = {node: i for i, node in enumerate(nodes)}
    compact = CompactGraph.empty(len(nodes))
    for a, b in graph.edges():
        compact.add_edge(position[a], position[b])
    return compact, nodes


# ----------------------------------------------------------------------
# Interference construction
# ----------------------------------------------------------------------


@dataclass
class CompactInterference:
    """G_r in compact form, with enough provenance to materialize the
    reference :class:`InterferenceGraph` (``make_assignment`` and the
    PIG splice consume the networkx form).

    Attributes:
        graph: Bitrow adjacency over web indices.
        webs: All webs in deterministic order (``webs[i].index == i``).
        rows: The packed liveness solution the build consumed.
        intervals_of: Per web, the live intervals it spans (same
            contents and order as the reference builder's).
        chains: Def-use chains (reused by assignment rewriting).
        function: The analyzed function.
    """

    graph: CompactGraph
    webs: List[Web]
    rows: LivenessRows
    intervals_of: Dict[Web, List[LiveInterval]]
    chains: DefUseChains
    function: Function

    def to_reference(self) -> InterferenceGraph:
        """The networkx :class:`InterferenceGraph` with the identical
        edge set (bulk-inserted, already deduplicated by the bitrows)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.webs)
        webs = self.webs
        graph.add_edges_from(
            (webs[i], webs[j]) for i, j in self.graph.edge_list()
        )
        return InterferenceGraph(
            graph=graph,
            webs=webs,
            intervals_of=self.intervals_of,
            chains=self.chains,
            function=self.function,
        )


def _reach_in_defs_for(
    fn: Function,
) -> Dict[str, Dict[Register, List[DefPoint]]]:
    """Reaching definitions at each block entry, grouped per register —
    the live-in pseudo-interval owner lookup of the reference builder."""
    reach = reaching_definitions(fn)
    reach_in_defs: Dict[str, Dict[Register, List[DefPoint]]] = {}
    for block in fn.blocks():
        per_reg: Dict[Register, List[DefPoint]] = {}
        for point in sorted(
            reach.reach_in[block.name], key=lambda p: p.instruction.uid
        ):
            per_reg.setdefault(point.register, []).append(point)
        reach_in_defs[block.name] = per_reg
    return reach_in_defs


def _block_owned_spans(
    block,
    rows: LivenessRows,
    def_to_web: Dict[DefPoint, Web],
    reach_in_defs: Dict[str, Dict[Register, List[DefPoint]]],
    intervals_of: Dict[Web, List[LiveInterval]],
    closed_end: bool,
) -> Tuple[List[int], List[int], List[int]]:
    """One block's conflict spans as parallel (start, hi, web-index)
    lists — the exact spans the reference stabbing loop builds."""
    index = rows.index
    live_out = index.registers_of(rows.live_out[block.name])
    live_in = index.registers_of(rows.live_in[block.name])
    intervals = block_live_intervals(
        block, live_out=live_out, live_in=live_in, include_live_in=True
    )
    starts: List[int] = []
    his: List[int] = []
    widx: List[int] = []
    for interval in intervals:
        web = _interval_owner(interval, def_to_web, reach_in_defs)
        if web is None:
            continue  # dead live-in with no reaching def web
        intervals_of[web].append(interval)
        hi = interval.end if closed_end else interval.end - 1
        starts.append(interval.start)
        his.append(max(hi, interval.start))
        widx.append(web.index)
    return starts, his, widx


def _stab_pairs_python(
    starts: List[int], his: List[int], widx: List[int], adj: List[int]
) -> None:
    """Portable stabbing: set adjacency bits for every conflicting
    span pair of one block (same query as the reference builder)."""
    from bisect import bisect_left, bisect_right

    order = sorted(range(len(starts)), key=lambda k: starts[k])
    def_positions = [starts[k] for k in order]
    for i in range(len(starts)):
        wa = widx[i]
        for k in range(
            bisect_left(def_positions, starts[i]),
            bisect_right(def_positions, his[i]),
        ):
            wb = widx[order[k]]
            if wa != wb:
                adj[wa] |= 1 << wb
                adj[wb] |= 1 << wa


def _stab_pairs_numpy(
    starts: List[int], his: List[int], widx: List[int]
) -> Tuple["object", "object"]:
    """Vectorized stabbing for one block: returns the conflicting web
    index pair arrays (one direction; the caller mirrors them)."""
    s = _np.asarray(starts, dtype=_np.int64)
    h = _np.asarray(his, dtype=_np.int64)
    w = _np.asarray(widx, dtype=_np.int64)
    order = _np.argsort(s, kind="stable")
    sorted_starts = s[order]
    lo = _np.searchsorted(sorted_starts, s, side="left")
    hi = _np.searchsorted(sorted_starts, h, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if not total:
        return None, None
    ii = _np.repeat(_np.arange(len(s)), counts)
    # Concatenated ranges lo[i]..hi[i]: a flat arange minus each
    # range's replayed base offset.
    bases = _np.repeat(_np.cumsum(counts) - counts - lo, counts)
    jj = order[_np.arange(total) - bases]
    wa = w[ii]
    wb = w[jj]
    keep = wa != wb
    return wa[keep], wb[keep]


def build_compact_interference(
    fn: Function,
    closed_end: bool = False,
    only_blocks: Optional[Sequence[str]] = None,
    collect_edges: bool = True,
) -> CompactInterference:
    """Build G_r for *fn* on bitrows.

    Same construction as the reference builder — shared interval
    extraction, shared owner lookup, shared stabbing query — with the
    edge sink swapped for bitrow bulk insertion (numpy ``bitwise_or.at``
    over a packed uint64 matrix when available, big-int bit-sets
    otherwise), bitrow liveness, and the reaching-definition pass
    skipped when no block is entered with a locally-defined register
    live (the only case the owner lookup consults it).

    Args:
        fn: The function (single- or multi-block).
        closed_end: Closed-interval convention (as in the reference).
        only_blocks: Restrict edge/interval extraction to these block
            names (the whole-pipeline shard workers build one region's
            contribution; webs and liveness stay global).
        collect_edges: With False, skip the stabbing entirely and
            return an edgeless graph — webs, liveness, and
            ``intervals_of`` are still complete.  This is the parent's
            skeleton in the sharded build: the quadratic pair work is
            what the workers ship back as rows.
    """
    rows = live_variables_rows(fn)
    index = rows.index
    chains = shared_def_use_chains(fn)
    webs = build_webs(fn, chains)
    def_to_web = web_of_definition(webs)

    # The reference builder always runs reaching definitions, but its
    # result is only read for live-in pseudo-intervals of registers
    # that have at least one definition (others cannot resolve to a
    # web).  Skip the pass when no such register is live into any
    # block — notably every single-entry straight-line function.
    defined_mask = 0
    position = index.position
    for point in def_to_web:
        defined_mask |= 1 << position[point.register]
    needs_reach = any(
        rows.live_in[block.name] & defined_mask for block in fn.blocks()
    )
    reach_in_defs = _reach_in_defs_for(fn) if needs_reach else {}

    n = len(webs)
    adj = [0] * n
    intervals_of: Dict[Web, List[LiveInterval]] = {web: [] for web in webs}
    block_filter = set(only_blocks) if only_blocks is not None else None

    pair_a: List["object"] = []
    pair_b: List["object"] = []
    for block in fn.blocks():
        if block_filter is not None and block.name not in block_filter:
            continue
        starts, his, widx = _block_owned_spans(
            block, rows, def_to_web, reach_in_defs, intervals_of, closed_end
        )
        if not starts or not collect_edges:
            continue
        if HAVE_NUMPY:
            wa, wb = _stab_pairs_numpy(starts, his, widx)
            if wa is not None:
                pair_a.append(wa)
                pair_b.append(wb)
        else:
            _stab_pairs_python(starts, his, widx, adj)

    if HAVE_NUMPY and pair_a:
        a = _np.concatenate(pair_a)
        b = _np.concatenate(pair_b)
        words = words_for(n)
        packed = _np.zeros((n, words), dtype=_np.uint64)
        rows_idx = _np.concatenate([a, b])
        cols = _np.concatenate([b, a])
        _np.bitwise_or.at(
            packed,
            (rows_idx, cols >> 6),
            _np.left_shift(_np.uint64(1), (cols & 63).astype(_np.uint64)),
        )
        adj = unpack_rows(packed, n)

    return CompactInterference(
        graph=CompactGraph.from_rows(adj),
        webs=webs,
        rows=rows,
        intervals_of=intervals_of,
        chains=chains,
        function=fn,
    )


def region_interference_rows(
    fn: Function, block_names: Sequence[str], closed_end: bool = False
) -> Tuple[List[int], List[Tuple[int, str, int, int, Optional[int]]]]:
    """One region's interference contribution in wire-friendly form.

    Returns ``(adjacency bitrows over global web indices, intervals)``
    where each interval is ``(web_index, block, start, end, def_uid)``
    — what a whole-pipeline shard worker ships back.  Webs and liveness
    are global (deterministic on both sides of the wire); only the
    interval extraction and stabbing are restricted to the region.
    """
    compact = build_compact_interference(
        fn, closed_end=closed_end, only_blocks=block_names
    )
    intervals: List[Tuple[int, str, int, int, Optional[int]]] = []
    for web in compact.webs:
        for iv in compact.intervals_of[web]:
            uid = (
                iv.defining_instruction.uid
                if iv.defining_instruction is not None
                else None
            )
            intervals.append((web.index, iv.block, iv.start, iv.end, uid))
    return compact.graph.adj, intervals


# ----------------------------------------------------------------------
# Worklist Chaitin/Briggs coloring
# ----------------------------------------------------------------------


@dataclass
class CompactColoring:
    """Outcome of one compact coloring round (index-domain twin of
    :class:`repro.regalloc.chaitin.ColoringResult`).

    Attributes:
        colors: Per node, its color or None (spilled).
        spilled: Spill victims in spill order.
        selection_order: Reverse deletion order used when selecting.
    """

    colors: List[Optional[int]]
    spilled: List[int]
    selection_order: List[int]

    @property
    def has_spills(self) -> bool:
        return bool(self.spilled)

    def coloring_dict(self, nodes: Sequence) -> Dict:
        """Map back to node objects (``nodes[i]`` is compact node i)."""
        return {
            nodes[i]: c for i, c in enumerate(self.colors) if c is not None
        }

    def to_result(self, nodes: Sequence):
        """The reference :class:`ColoringResult` over *nodes*."""
        from repro.regalloc.chaitin import ColoringResult

        return ColoringResult(
            coloring=self.coloring_dict(nodes),
            spilled=[nodes[i] for i in self.spilled],
            selection_order=[nodes[i] for i in self.selection_order],
        )


def compact_classic_h(
    graph: CompactGraph, cost: Optional[Sequence[float]] = None
) -> List[float]:
    """The spill metric ``h(v) = cost(v) / deg(v)`` over the original
    degrees, as a flat list (infinite at degree 0 — never spilled)."""
    inf = float("inf")
    return [
        (1.0 if cost is None else cost[i]) / d if d else inf
        for i, d in enumerate(graph.degree)
    ]


def compact_chaitin_color(
    graph: CompactGraph,
    num_colors: int,
    spill_metric: Optional[Sequence[float]] = None,
    allow_spill: bool = True,
    optimistic: bool = False,
) -> CompactColoring:
    """One round of Chaitin (or, with *optimistic*, Briggs) coloring.

    The worklist discipline matches the reference engines' fixed
    tie-break: among simplifiable nodes the lowest index is removed
    first (a min-heap with lazy invalidation — degrees decrement in
    O(1) against the live-neighbor bitrow); when blocked, the victim
    minimizes ``(metric, index)`` over the remaining nodes.  Selection
    walks the stack in reverse keeping one member bitmask per color, so
    the used-color set of a node is ``num_colors`` AND tests instead of
    a neighbor loop.

    Args:
        graph: The compact conflict graph (not mutated).
        num_colors: The register count r.
        spill_metric: Per-node badness; defaults to
            :func:`compact_classic_h` of the original degrees.
        allow_spill: When False, raise instead of spilling.
        optimistic: Push blocked victims on the stack (Briggs) instead
            of spilling at simplify time; they spill only if selection
            finds no free color.
    """
    import heapq

    n = graph.n
    if spill_metric is None:
        spill_metric = compact_classic_h(graph)
    adj = graph.adj
    deg = list(graph.degree)
    alive_mask = (1 << n) - 1
    stack: List[int] = []
    spilled: List[int] = []
    inf = float("inf")

    heap = [i for i in range(n) if deg[i] < num_colors]
    heapq.heapify(heap)
    removed = 0

    def remove(node: int) -> None:
        nonlocal alive_mask, removed
        alive_mask &= ~(1 << node)
        removed += 1
        row = adj[node] & alive_mask
        while row:
            lsb = row & -row
            nbr = lsb.bit_length() - 1
            deg[nbr] -= 1
            if deg[nbr] == num_colors - 1:
                heapq.heappush(heap, nbr)
            row ^= lsb

    while removed < n:
        while heap:
            node = heapq.heappop(heap)
            if (alive_mask >> node) & 1 and deg[node] < num_colors:
                stack.append(node)
                remove(node)
        if removed == n:
            break
        # Blocked: every remaining node has degree >= r.
        if not allow_spill:
            raise AllocationError(
                "graph needs more than {} colors and spilling is "
                "disabled (stuck at {} nodes)".format(num_colors, n - removed)
            )
        victim = -1
        best = inf
        live = alive_mask
        while live:
            lsb = live & -live
            node = lsb.bit_length() - 1
            metric = spill_metric[node]
            if metric < best:
                best = metric
                victim = node
            live ^= lsb
        if victim < 0:
            raise AllocationError(
                "irreducible register pressure: {} unspillable values "
                "exceed {} colors".format(n - removed, num_colors)
            )
        if optimistic:
            stack.append(victim)
        else:
            spilled.append(victim)
        remove(victim)

    colors: List[Optional[int]] = [None] * n
    members = [0] * num_colors
    full = (1 << num_colors) - 1
    for node in reversed(stack):
        row = adj[node]
        used = 0
        for c in range(num_colors):
            if row & members[c]:
                used |= 1 << c
        free = ~used & full
        if not free:
            if optimistic:
                spilled.append(node)
                continue
            raise AllocationError(
                "no free color for node {} among {}".format(node, num_colors)
            )
        color = (free & -free).bit_length() - 1
        colors[node] = color
        members[color] |= 1 << node

    return CompactColoring(
        colors=colors, spilled=spilled, selection_order=stack
    )


# ----------------------------------------------------------------------
# The compact Chaitin allocation loop (driver fallback rung)
# ----------------------------------------------------------------------


def compact_chaitin_allocate(
    fn: Function,
    num_registers: int,
    max_rounds: int = 12,
    paranoid: bool = False,
):
    """Compact twin of the strategies' Chaitin spill-until-colorable
    loop: compact interference + worklist coloring, spill code between
    rounds, reference :func:`make_assignment` at the end.

    With *paranoid*, every round cross-checks edges, spill set, and
    coloring against the reference path and raises
    :class:`~repro.utils.errors.DivergenceError` on any mismatch (the
    driver then degrades to the reference backend rung).

    Returns ``(prepared_fn, assignment, spill_operations)``.
    """
    from repro.regalloc.assignment import make_assignment
    from repro.regalloc.spill import insert_spill_code, make_cost_function

    trip("regalloc.compact")
    work = fn
    spill_ops = 0
    for _round in range(max_rounds + 1):
        compact = build_compact_interference(work)
        cost_fn = make_cost_function(work)
        cost = [cost_fn(web) for web in compact.webs]
        metric = compact_classic_h(compact.graph, cost)
        result = compact_chaitin_color(
            compact.graph, num_registers, spill_metric=metric
        )
        if paranoid:
            _cross_check_round(work, num_registers, compact, result)
        if not result.has_spills:
            reference = compact.to_reference()
            assignment = make_assignment(
                reference, result.coloring_dict(compact.webs)
            )
            return work, assignment, spill_ops
        work, report = insert_spill_code(
            work, [compact.webs[i] for i in result.spilled]
        )
        spill_ops += report.stores_added + report.reloads_added
    raise AllocationError(
        "Chaitin spilling did not converge within {} rounds".format(max_rounds)
    )


def _cross_check_round(
    work: Function,
    num_registers: int,
    compact: CompactInterference,
    result: CompactColoring,
) -> None:
    """Paranoid-mode guard: one allocation round of the compact path
    must match the reference path bit for bit."""
    from repro.pipeline.strategies import _chaitin_allocate  # noqa: F401
    from repro.regalloc.chaitin import chaitin_color, classic_h
    from repro.regalloc.interference import build_interference_graph
    from repro.regalloc.spill import make_cost_function
    from repro.utils.errors import DivergenceError

    reference = build_interference_graph(work)
    ref_edges = {
        (a.index, b.index) for a, b in reference.edge_list()
    }
    if set(compact.graph.edge_list()) != ref_edges:
        raise DivergenceError(
            "compact and reference interference disagree on {!r} "
            "(paranoid cross-check)".format(work.name)
        )
    cost = make_cost_function(work)
    ref_result = chaitin_color(
        reference.graph,
        num_registers,
        spill_metric=classic_h(reference.graph, cost),
    )
    if [w.index for w in ref_result.spilled] != result.spilled or {
        w.index: c for w, c in ref_result.coloring.items()
    } != {
        i: c for i, c in enumerate(result.colors) if c is not None
    }:
        raise DivergenceError(
            "compact and reference coloring disagree on {!r} "
            "(paranoid cross-check)".format(work.name)
        )
