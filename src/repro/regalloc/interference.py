"""The classic interference graph G_r = (V_r, E_r).

"Every vertex v ∈ V_r corresponds to a distinct program interval in
which a definition of a variable's value is live.  There exists an
(undirected) edge {u, v} ∈ E_r if one definition is live ... in a
statement where the other is defined (the two intervals intersect)."

Vertices are :class:`~repro.analysis.webs.Web` objects: for symbolic
single-assignment straight-line code each web is one definition (Claim
1's V_r ⊆ V_s); for multi-block programs the right-number-of-names
analysis has already combined def-use chains reaching a common use
(Figure 6), so a web may own several intervals — "a node v in G_r as
representing all the live intervals of the definitions v_i".
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.defuse import DefUseChains, shared_def_use_chains
from repro.analysis.liveness import (
    LiveInterval,
    LivenessInfo,
    block_live_intervals,
    live_variables,
)
from repro.analysis.reaching import DefPoint, reaching_definitions
from repro.analysis.webs import Web, build_webs, web_of_definition
from repro.ir.function import Function
from repro.ir.operands import Register
from repro.utils.errors import AllocationError


@dataclass
class InterferenceGraph:
    """G_r with its provenance.

    Attributes:
        graph: Undirected ``networkx.Graph`` whose nodes are webs.
        webs: All webs in deterministic order.
        intervals_of: Per web, the live intervals it spans.
        chains: The def-use chains the webs were built from (reused by
            assignment rewriting).
        function: The analyzed function.
    """

    graph: nx.Graph
    webs: List[Web]
    intervals_of: Dict[Web, List[LiveInterval]]
    chains: DefUseChains
    function: Function

    def interferes(self, a: Web, b: Web) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, web: Web) -> List[Web]:
        return sorted(self.graph.neighbors(web), key=lambda w: w.index)

    def degree(self, web: Web) -> int:
        return self.graph.degree(web)

    def edge_list(self) -> List[Tuple[Web, Web]]:
        """Edges normalized by web index (deterministic)."""
        return sorted(
            (
                (a, b) if a.index <= b.index else (b, a)
                for a, b in self.graph.edges()
            ),
            key=lambda pair: (pair[0].index, pair[1].index),
        )

    def web_by_register_name(self, name: str) -> Web:
        """The unique web of a register name (single-assignment code).

        Raises:
            AllocationError: when the name is unknown or ambiguous.
        """
        matches = [w for w in self.webs if str(w.register) == name]
        if len(matches) != 1:
            raise AllocationError(
                "register name {!r} maps to {} webs".format(name, len(matches))
            )
        return matches[0]

    @property
    def max_clique_lower_bound(self) -> int:
        """A cheap lower bound on the chromatic number: the largest
        simultaneous overlap found per block during construction is
        not stored, so fall back to greedy clique growth from the
        highest-degree node."""
        if not self.webs:
            return 0
        seed = max(self.webs, key=lambda w: self.graph.degree(w))
        clique = [seed]
        for web in sorted(
            self.graph.neighbors(seed), key=lambda w: -self.graph.degree(w)
        ):
            if all(self.graph.has_edge(web, member) for member in clique):
                clique.append(web)
        return len(clique)


def _interval_owner(
    interval: LiveInterval,
    def_to_web: Dict[DefPoint, Web],
    reach_in_defs: Dict[str, Dict[Register, List[DefPoint]]],
) -> Optional[Web]:
    """Map an interval to its owning web.

    Definition intervals map through their defining instruction; live-in
    pseudo-intervals map through any definition of the register reaching
    the block entry (all such defs share a web when the value is used —
    that is what web construction guarantees).
    """
    if interval.defining_instruction is not None:
        point = DefPoint(interval.defining_instruction, interval.register)
        return def_to_web.get(point)
    reaching = reach_in_defs.get(interval.block, {}).get(interval.register, [])
    for point in reaching:
        web = def_to_web.get(point)
        if web is not None:
            return web
    return None


def build_interference_graph(
    fn: Function,
    closed_end: bool = False,
) -> InterferenceGraph:
    """Build G_r for *fn*.

    Args:
        fn: The function (single- or multi-block).
        closed_end: Use the closed-interval convention (the last-use
            statement counts as part of the interval, forbidding reuse
            in that statement).  The paper — and the default — uses the
            open convention.
    """
    liveness: LivenessInfo = live_variables(fn)
    chains = shared_def_use_chains(fn)
    webs = build_webs(fn, chains)
    def_to_web = web_of_definition(webs)

    reach = reaching_definitions(fn)
    reach_in_defs: Dict[str, Dict[Register, List[DefPoint]]] = {}
    for block in fn.blocks():
        per_reg: Dict[Register, List[DefPoint]] = {}
        for point in sorted(
            reach.reach_in[block.name], key=lambda p: p.instruction.uid
        ):
            per_reg.setdefault(point.register, []).append(point)
        reach_in_defs[block.name] = per_reg

    graph = nx.Graph()
    for web in webs:
        graph.add_node(web)
    intervals_of: Dict[Web, List[LiveInterval]] = {web: [] for web in webs}

    for block in fn.blocks():
        live_out = liveness.live_out[block.name]
        live_in = liveness.live_in[block.name]
        intervals = block_live_intervals(
            block, live_out=live_out, live_in=live_in, include_live_in=True
        )
        owned: List[Tuple[LiveInterval, Web]] = []
        for interval in intervals:
            web = _interval_owner(interval, def_to_web, reach_in_defs)
            if web is None:
                continue  # dead live-in with no reaching def web
            owned.append((interval, web))
            intervals_of[web].append(interval)
        # Two intervals conflict exactly when one's definition
        # statement falls inside the other's conflict span
        # [start, hi] (LiveInterval.covers_definition_at, with the
        # degenerate hi<=start span collapsing to the def statement
        # itself).  That is an interval-stabbing query: sort the def
        # positions once, then each interval finds its conflicting
        # partners as one binary search plus a contiguous slice —
        # O(k log k + hits) per block instead of the all-pairs O(k^2)
        # scan, which dominated PIG construction on large blocks.
        spans: List[Tuple[int, int, Web]] = []
        for interval, web in owned:
            hi = interval.end if closed_end else interval.end - 1
            spans.append((interval.start, max(hi, interval.start), web))
        order = sorted(range(len(spans)), key=lambda k: spans[k][0])
        def_positions = [spans[k][0] for k in order]
        for i, (start, hi, web_a) in enumerate(spans):
            for k in range(bisect_left(def_positions, start),
                           bisect_right(def_positions, hi)):
                j = order[k]
                if j == i:
                    continue
                web_b = spans[j][2]
                if web_a is not web_b:
                    graph.add_edge(web_a, web_b)

    return InterferenceGraph(
        graph=graph,
        webs=webs,
        intervals_of=intervals_of,
        chains=chains,
        function=fn,
    )
