"""Spill costs and spill-code insertion.

"In practice a spilling stage is carried out in which the values of
some variables (symbolic registers) are temporarily stored in memory."
The cost model follows the conventional nesting-weighted count the
paper references ("the cost function, in general, is a function of the
instruction's nesting level"): each static def or use of the web costs
``10 ** loop_depth`` memory operations.

After a coloring round reports spill victims, :func:`insert_spill_code`
rewrites the program — a store after every definition, a reload into a
fresh short-lived symbolic register before every use — and the driver
repeats the coloring procedure on the rewritten program, exactly as the
paper's algorithm does ("spill each v in spill list; repeat the
coloring procedure").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.loops import loop_nesting_depth
from repro.analysis.webs import Web
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, UnitKind
from repro.ir.operands import MemorySymbol, Register, VirtualRegister

_RELOAD_COUNTER = itertools.count(1)

#: Name infix marking registers created by spill insertion.
SPILL_TEMP_MARKER = ".rl"


def is_spill_temp(reg: Register) -> bool:
    """Is *reg* a reload temporary (or live-out reload) created by
    :func:`insert_spill_code`?  Spill temps have one-statement live
    ranges; re-spilling them cannot reduce pressure, so they receive
    infinite spill cost."""
    name = str(reg)
    return SPILL_TEMP_MARKER in name or name.endswith(".out")


def make_cost_function(fn: Function):
    """Build ``cost(web)`` for *fn*: nesting-weighted def+use count.

    The returned callable is what the ``h`` and ``h*`` spill metrics
    divide by degree / edge weight.  Spill temporaries cost +inf —
    they are never profitable victims.
    """
    depth = loop_nesting_depth(fn)
    block_of: Dict[int, str] = {}
    for block in fn.blocks():
        for instr in block:
            block_of[instr.uid] = block.name

    def cost(web: Web) -> float:
        if is_spill_temp(web.register):
            return float("inf")
        total = 0.0
        for point in web.definitions:
            total += 10.0 ** depth.get(block_of.get(point.instruction.uid, ""), 0)
        for instr, _reg in web.uses:
            total += 10.0 ** depth.get(block_of.get(instr.uid, ""), 0)
        return total

    return cost


def _slot_for(web: Web) -> MemorySymbol:
    return MemorySymbol("spill.{}".format(web.name.replace(":", "_")))


def _is_float_web(web: Web) -> bool:
    """Pick FSTORE/FLOAD for values produced by floating-point ops."""
    for point in web.definitions:
        if point.instruction.unit is UnitKind.FLOAT or point.instruction.opcode in (
            Opcode.FLOAD,
        ):
            return True
    return False


@dataclass
class SpillReport:
    """What spill insertion did, for diagnostics and EXPERIMENTS.md.

    Attributes:
        stores_added: Number of spill stores inserted.
        reloads_added: Number of reloads inserted.
        rematerialized: Number of uses satisfied by recomputing a
            constant instead of reloading from a spill slot.
        spilled_webs: The webs rewritten to memory (or rematerialized).
    """

    stores_added: int
    reloads_added: int
    spilled_webs: Tuple[Web, ...]
    rematerialized: int = 0


def is_rematerializable(web: Web) -> bool:
    """Can this web be recomputed at each use instead of spilled?

    True when every definition loads the *same* constant (LOADI):
    re-emitting the constant is always cheaper than a store/reload
    pair and needs no spill slot.  (A join web merging two different
    constants is not rematerializable — the runtime value depends on
    the path taken.)
    """
    if not web.definitions:
        return False
    sources = {
        point.instruction.srcs
        for point in web.definitions
    }
    return len(sources) == 1 and all(
        point.instruction.opcode is Opcode.LOADI
        for point in web.definitions
    )


def insert_spill_code(
    fn: Function,
    spill_webs: Sequence[Web],
    rematerialize: bool = True,
) -> Tuple[Function, SpillReport]:
    """Rewrite *fn* with *spill_webs* living in memory.

    Every definition of a spilled web is followed by a store to the
    web's spill slot; every use reloads the slot into a fresh symbolic
    register just before the using instruction (keeping the new live
    ranges one statement long).  Live-out spilled registers are
    reloaded at each exit block and the function's live-out list is
    updated to the reload names.

    With *rematerialize* (default), constant-defined webs skip the
    store/reload dance entirely: each use re-emits the constant into a
    fresh register (no memory traffic, no spill slot).

    Returns:
        The rewritten function and a :class:`SpillReport`.
    """
    if not spill_webs:
        return fn, SpillReport(0, 0, ())

    remat_webs = (
        {w for w in spill_webs if is_rematerializable(w)}
        if rematerialize
        else set()
    )
    remat_value: Dict[Web, Tuple] = {
        web: next(iter(web.definitions)).instruction.srcs
        for web in remat_webs
    }

    spilled_defs: Dict[Tuple[int, Register], Web] = {}
    spilled_uses: Dict[Tuple[int, Register], Web] = {}
    for web in spill_webs:
        for point in web.definitions:
            spilled_defs[(point.instruction.uid, point.register)] = web
        for instr, reg in web.uses:
            spilled_uses[(instr.uid, reg)] = web

    spilled_live_out: Dict[Register, Web] = {}
    for web in spill_webs:
        if web.register in fn.live_out:
            spilled_live_out[web.register] = web

    stores = 0
    reloads = 0
    remats = 0
    result = Function(fn.name)
    live_out_map: Dict[Register, Register] = {}

    for block in fn.blocks():
        new_block = BasicBlock(block.name)
        for instr in block:
            use_rewrites: Dict[Register, Register] = {}
            for reg in instr.uses():
                web = spilled_uses.get((instr.uid, reg))
                if web is None:
                    continue
                fresh = VirtualRegister(
                    "{}.rl{}".format(reg, next(_RELOAD_COUNTER))
                )
                if web in remat_webs:
                    new_block.instructions.append(
                        Instruction(Opcode.LOADI, (fresh,), remat_value[web])
                    )
                    remats += 1
                else:
                    load_op = (
                        Opcode.FLOAD if _is_float_web(web) else Opcode.LOAD
                    )
                    new_block.instructions.append(
                        Instruction(load_op, (fresh,), (_slot_for(web),))
                    )
                    reloads += 1
                use_rewrites[reg] = fresh
            new_instr = (
                instr.rewrite_registers(use_rewrites) if use_rewrites else instr
            )
            # rewrite_registers also touches defs; restore spilled-def
            # names (defs keep their original register).
            if use_rewrites and any(d in use_rewrites for d in instr.defs()):
                new_instr = Instruction(
                    new_instr.opcode,
                    instr.defs(),
                    new_instr.srcs,
                    target=new_instr.target,
                    uid=instr.uid,
                )
            new_block.instructions.append(new_instr)
            for reg in instr.defs():
                web = spilled_defs.get((instr.uid, reg))
                if web is None or web in remat_webs:
                    continue  # rematerializable: no slot, no store
                store_op = Opcode.FSTORE if _is_float_web(web) else Opcode.STORE
                new_block.instructions.append(
                    Instruction(store_op, (), (reg, _slot_for(web)))
                )
                stores += 1
        result.add_block(new_block, entry=(block.name == fn.entry.name))

    for src in fn.block_names():
        for dst_block in fn.successors(fn.block(src)):
            result.add_edge(src, dst_block.name)

    # Reload (or rematerialize) live-out spilled values at exit blocks
    # under fresh names.
    for reg, web in spilled_live_out.items():
        fresh = VirtualRegister("{}.out".format(reg))
        live_out_map[reg] = fresh
        if web in remat_webs:
            reload = Instruction(Opcode.LOADI, (fresh,), remat_value[web])
        else:
            load_op = Opcode.FLOAD if _is_float_web(web) else Opcode.LOAD
            reload = Instruction(load_op, (fresh,), (_slot_for(web),))
        for exit_block in result.exit_blocks():
            materialize = reload.copy(fresh_uid=True)
            term = exit_block.terminator
            if term is not None:
                exit_block.insert(
                    len(exit_block.instructions) - 1, materialize
                )
            else:
                exit_block.instructions.append(materialize)
            if web in remat_webs:
                remats += 1
            else:
                reloads += 1

    result.live_out = tuple(live_out_map.get(r, r) for r in fn.live_out)
    report = SpillReport(
        stores_added=stores,
        reloads_added=reloads,
        spilled_webs=tuple(spill_webs),
        rematerialized=remats,
    )
    return result, report
