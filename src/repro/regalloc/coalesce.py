"""Move coalescing via biased coloring.

The lowered programs are full of register-to-register moves (join and
loop registers).  Rather than merging graph nodes (Chaitin coalescing,
which can make the graph uncolorable), we use *biased coloring*: when
several colors are legal for a web, prefer the color of a mov-related
partner.  A mov whose source and destination land in one register
becomes an identity move, deleted by :func:`remove_identity_moves`.

Bias never constrains correctness — it only breaks ties among legal
colors — so every guarantee of the coloring procedure is untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.defuse import DefUseChains
from repro.analysis.reaching import DefPoint
from repro.analysis.webs import Web, web_of_definition
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import PhysicalRegister, is_register
from repro.regalloc.interference import InterferenceGraph


def mov_related_pairs(
    interference: InterferenceGraph,
) -> List[Tuple[Web, Web]]:
    """Web pairs connected by a register-to-register MOV.

    Pairs whose webs interfere are excluded — they can never share a
    register, so biasing toward them is pointless.
    """
    fn = interference.function
    chains: DefUseChains = interference.chains
    def_to_web = web_of_definition(interference.webs)
    pairs: List[Tuple[Web, Web]] = []
    seen: Set[frozenset] = set()

    for instr in fn.instructions():
        if instr.opcode is not Opcode.MOV or not instr.dests:
            continue
        source = instr.srcs[0]
        if not is_register(source):
            continue
        dst_web = def_to_web.get(DefPoint(instr, instr.dest))
        if dst_web is None:
            continue
        for src_def in chains.defs_of.get((instr, source), frozenset()):
            src_web = def_to_web.get(src_def)
            if src_web is None or src_web is dst_web:
                continue
            key = frozenset((src_web.index, dst_web.index))
            if key in seen:
                continue
            seen.add(key)
            if not interference.interferes(src_web, dst_web):
                pairs.append((src_web, dst_web))
    return pairs


def build_bias_map(
    interference: InterferenceGraph,
) -> Dict[Web, List[Web]]:
    """web → mov partners, for the biased select phase."""
    bias: Dict[Web, List[Web]] = {}
    for a, b in mov_related_pairs(interference):
        bias.setdefault(a, []).append(b)
        bias.setdefault(b, []).append(a)
    return bias


def choose_biased_color(
    free_colors: List[int],
    node: Web,
    coloring: Dict[Web, int],
    bias: Optional[Dict[Web, List[Web]]],
) -> Optional[int]:
    """Pick from *free_colors*, preferring a mov partner's color."""
    if not free_colors:
        return None
    if bias:
        for partner in bias.get(node, ()):
            color = coloring.get(partner)
            if color in free_colors:
                return color
    return free_colors[0]


def remove_identity_moves(fn: Function) -> int:
    """Delete ``rX := mov rX`` instructions (post-allocation cleanup).

    Returns the number of moves removed.
    """
    removed = 0
    for block in fn.blocks():
        kept: List[Instruction] = []
        for instr in block:
            if (
                instr.opcode is Opcode.MOV
                and instr.dests
                and isinstance(instr.dest, PhysicalRegister)
                and instr.srcs
                and instr.srcs[0] == instr.dest
            ):
                removed += 1
                continue
            kept.append(instr)
        block.instructions = kept
    return removed
