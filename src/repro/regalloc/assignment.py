"""Register assignments: mapping a coloring onto physical registers and
rewriting the program.

Rewriting is per-web, not per-name: two webs may share a register name
(a variable redefined on different paths), so every instruction operand
is resolved through def-use chains to its owning web before the web's
color picks the physical register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reaching import DefPoint
from repro.analysis.webs import Web, web_of_definition
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.operands import PhysicalRegister, Register, is_register
from repro.regalloc.interference import InterferenceGraph
from repro.utils.errors import AllocationError


@dataclass
class RegisterAssignment:
    """A complete symbolic→physical mapping for one function.

    Attributes:
        web_colors: web → color index.
        physical_of: color index → physical register (identity layout
            ``color k → r(k)`` unless a custom pool is supplied).
        interference: The graph the coloring was computed on (carries
            the def-use chains needed to resolve operands).
    """

    web_colors: Dict[Web, int]
    physical_of: Dict[int, PhysicalRegister]
    interference: InterferenceGraph

    @property
    def num_registers_used(self) -> int:
        return len(set(self.web_colors.values()))

    def register_for_web(self, web: Web) -> PhysicalRegister:
        try:
            return self.physical_of[self.web_colors[web]]
        except KeyError:
            raise AllocationError("web {} has no color".format(web))

    def register_for_name(self, name: str) -> PhysicalRegister:
        """Physical register of a (unique) symbolic register name."""
        web = self.interference.web_by_register_name(name)
        return self.register_for_web(web)

    def mapping_by_name(self) -> Dict[str, str]:
        """symbolic-name → physical-name view (only meaningful for
        single-assignment code where names are unique per web)."""
        result: Dict[str, str] = {}
        for web, color in sorted(
            self.web_colors.items(), key=lambda kv: kv[0].index
        ):
            result[str(web.register)] = str(self.physical_of[color])
        return result


def make_assignment(
    interference: InterferenceGraph,
    coloring: Dict[Web, int],
    register_pool: Optional[List[PhysicalRegister]] = None,
) -> RegisterAssignment:
    """Bind a coloring to physical registers.

    Args:
        interference: The colored graph.
        coloring: A complete web → color map (no spilled webs).
        register_pool: Physical registers by color index; defaults to
            ``r1, r2, ...`` in color order.

    Raises:
        AllocationError: when a web lacks a color or the pool is too
            small.
    """
    missing = [w for w in interference.webs if w not in coloring]
    if missing:
        raise AllocationError(
            "webs without colors: {}".format(
                ", ".join(str(w) for w in missing)
            )
        )
    colors = sorted(set(coloring.values()))
    if register_pool is None:
        register_pool = [PhysicalRegister(i + 1) for i in range(len(colors))]
    if len(register_pool) < len(colors):
        raise AllocationError(
            "pool of {} registers cannot hold {} colors".format(
                len(register_pool), len(colors)
            )
        )
    physical_of = {color: register_pool[i] for i, color in enumerate(colors)}
    return RegisterAssignment(
        web_colors=dict(coloring),
        physical_of=physical_of,
        interference=interference,
    )


def make_banked_assignment(
    interference: InterferenceGraph,
    class_colorings: Dict[str, Dict[Web, int]],
) -> RegisterAssignment:
    """Bind per-class colorings to banked physical registers.

    Args:
        interference: The colored graph (must be covered by the union
            of the class colorings).
        class_colorings: register class (``"int"``/``"float"``) →
            web → color within that class.

    Returns:
        A single :class:`RegisterAssignment` whose color space offsets
        each class into its own range and whose pool maps int colors to
        the ``r`` bank and float colors to the ``f`` bank.
    """
    from repro.regalloc.classes import BANK_OF_CLASS

    web_colors: Dict[Web, int] = {}
    physical_of: Dict[int, PhysicalRegister] = {}
    offset = 0
    for register_class in sorted(class_colorings):
        coloring = class_colorings[register_class]
        bank = BANK_OF_CLASS[register_class]
        used = sorted(set(coloring.values()))
        for i, color in enumerate(used):
            physical_of[offset + color] = PhysicalRegister(i + 1, bank=bank)
        for web, color in coloring.items():
            web_colors[web] = offset + color
        offset += (max(used) + 1) if used else 0

    missing = [w for w in interference.webs if w not in web_colors]
    if missing:
        raise AllocationError(
            "webs without colors: {}".format(
                ", ".join(str(w) for w in missing)
            )
        )
    return RegisterAssignment(
        web_colors=web_colors,
        physical_of=physical_of,
        interference=interference,
    )


def apply_assignment(assignment: RegisterAssignment) -> Function:
    """Rewrite the function with physical registers.

    Each definition operand maps through its DefPoint's web; each use
    operand maps through the web of any definition reaching it (all
    reaching definitions share a web by construction).  Physical
    registers already present pass through untouched.

    Returns:
        A new :class:`Function` whose instructions keep their uids, so
        post-allocation dependence graphs remain comparable with the
        symbolic original (the Lemma 1 false-dependence check).
    """
    interference = assignment.interference
    fn = interference.function
    def_to_web = web_of_definition(interference.webs)
    chains = interference.chains

    def resolve_use(instr: Instruction, reg: Register) -> Register:
        if isinstance(reg, PhysicalRegister):
            return reg
        defs = chains.defs_of.get((instr, reg), frozenset())
        for point in sorted(defs, key=lambda p: p.instruction.uid):
            web = def_to_web.get(point)
            if web is not None and web in assignment.web_colors:
                return assignment.register_for_web(web)
        return reg  # no reaching definition (live-in): leave symbolic

    def resolve_def(instr: Instruction, reg: Register) -> Register:
        if isinstance(reg, PhysicalRegister):
            return reg
        web = def_to_web.get(DefPoint(instr, reg))
        if web is not None and web in assignment.web_colors:
            return assignment.register_for_web(web)
        return reg

    def rewrite(instr: Instruction) -> Instruction:
        new_dests = tuple(resolve_def(instr, d) for d in instr.defs())
        new_srcs = tuple(
            resolve_use(instr, s) if is_register(s) else s for s in instr.srcs
        )
        return Instruction(
            instr.opcode, new_dests, new_srcs, target=instr.target, uid=instr.uid
        )

    allocated = fn.map_instructions(rewrite)

    live_out_map: Dict[Register, Register] = {}
    for reg in fn.live_out:
        for web, _color in assignment.web_colors.items():
            if web.register == reg:
                live_out_map[reg] = assignment.register_for_web(web)
                break
    allocated.live_out = tuple(live_out_map.get(r, r) for r in fn.live_out)
    return allocated


def verify_assignment_against_graph(
    assignment: RegisterAssignment,
) -> None:
    """Check no interference edge is monochromatic.

    Raises:
        AllocationError: on the first violated edge.
    """
    interference = assignment.interference
    for a, b in interference.graph.edges():
        if (
            a in assignment.web_colors
            and b in assignment.web_colors
            and assignment.web_colors[a] == assignment.web_colors[b]
        ):
            raise AllocationError(
                "interfering webs {} and {} share {}".format(
                    a, b, assignment.register_for_web(a)
                )
            )
