"""Canonical content digests shared by checkpoint/resume and the
compile cache.

One input — one digest.  The run ledger (:mod:`repro.service.
checkpoint`) keys resumability on it, and the compile cache
(:mod:`repro.cache`) folds it into its content-addressed key; both
must agree byte-for-byte or a resume could skip a task the cache would
recompile (or vice versa), so the computation lives here exactly once.

The digest covers everything that changes what the driver would parse:
the program text, the function name handed to the frontend, and
whether the text is frontend source or textual IR.  It deliberately
excludes per-run knobs (machine, registers, DriverConfig) — those
belong to the *cache key*, not the input identity, and the ledger's
resume semantics predate them.
"""

from __future__ import annotations

import hashlib

#: Separator between the digest's fields; NUL can appear in none of
#: them, so the encoding is injective.
_SEP = "\x00"


def input_digest(name: str, text: str, is_ir: bool = False) -> str:
    """sha256 hex digest identifying one compile input.

    Stable across processes and releases: the run ledgers written by
    earlier versions resume correctly against it.
    """
    payload = "{}{}{}{}{}".format(int(is_ir), _SEP, name, _SEP, text)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
