"""Big-int bitset helpers.

Python integers are arbitrary-precision bit vectors whose boolean
operations (``|``, ``&``, ``~`` masked, shifts) run word-parallel in C.
The dependence kernel (:mod:`repro.deps.bitset`), the machine
contention rows and the interference builder all represent "row of a
boolean matrix" as one int; these helpers cover the few operations
that need per-bit access.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, TypeVar

T = TypeVar("T")

try:  # Python >= 3.10
    _BIT_COUNT = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _BIT_COUNT(value: int) -> int:
        return bin(value).count("1")


def popcount(mask: int) -> int:
    """Number of set bits in *mask*."""
    return _BIT_COUNT(mask)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ascending order."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


def mask_of(indices: Iterable[int]) -> int:
    """The bitmask with exactly *indices* set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def bits_above(mask: int, index: int) -> int:
    """*mask* restricted to bit positions strictly greater than *index*."""
    return mask & ~((1 << (index + 1)) - 1)


def select(items: Sequence[T], mask: int) -> List[T]:
    """The items whose positions are set in *mask*, in position order."""
    return [items[i] for i in iter_bits(mask)]
