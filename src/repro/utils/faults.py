"""Deterministic fault injection for exercising degradation paths.

The hardened driver (:mod:`repro.pipeline.driver`) promises a ladder of
fallbacks — bitset dependence kernel → reference engine, combined
Pinter coloring → Chaitin with spilling, augmented scheduler → plain
list scheduler — and the batch service (:mod:`repro.service`) promises
fleet-level containment — kill-on-timeout, retry with backoff, circuit
breaking, checkpoint/resume.  Fallback code that only runs when
production code breaks is fallback code that silently rots.  This
module lets tests (and operators, via ``REPRO_FAULTS`` or ``repro
compile --inject-fault``) force a named *fault point* to misbehave in a
chosen way, so every rung of every ladder is exercised
deterministically.

Fault points are plain string names checked by :func:`trip` calls
sprinkled at the entry of the guarded subsystems:

========================  ====================================================
point                     location
========================  ====================================================
``frontend.compile``      :func:`repro.frontend.lower.compile_source`
``ir.parse``              :func:`repro.ir.parser.parse_function`
``ir.verify``             :func:`repro.ir.verifier.verify_function`
``deps.bitset``           :meth:`repro.deps.bitset.DependenceBitKernel.build`
``deps.vector``           :meth:`repro.deps.vector.VectorDependenceKernel.build`
``core.pinter_color``     :func:`repro.core.coloring.pinter_color`
``regalloc.chaitin``      :func:`repro.regalloc.chaitin.chaitin_color`
``regalloc.compact``      :func:`repro.regalloc.compact.compact_chaitin_allocate`
``sched.augmented``       :func:`repro.sched.augmented.augmented_schedule`
                          (also fired by the compact scheduler, so the
                          point degrades both back-end rungs)
``sched.compact``         :func:`repro.sched.augmented.compact_augmented_schedule`
``service.worker``        :mod:`repro.service.worker` child entry (batch
                          service; supports the worker-level actions)
``service.server``        :mod:`repro.service.server` per-request handler
                          (``raise`` = 500 response, ``stall``/``hang`` =
                          slow/wedged handler, ``crash`` = server dies
                          mid-request, ``poison-result`` = garbage
                          response body)
``fs.<scope>.<op>``       the filesystem fault shim
                          (:mod:`repro.utils.fsfaults`): *scope* is
                          ``cache`` (the compile-cache disk tier) or
                          ``ledger`` (the run-ledger journal), *op* is
                          one of ``open``/``write``/``fsync``/
                          ``rename``/``unlink``.  Only the fs actions
                          below fire here, and they fire **once**
                          (one-shot), so recovery paths stay testable.
``phase.<name>``          start of each driver phase (see
                          :attr:`repro.pipeline.driver.CompilationDriver.PHASES`)
========================  ====================================================

Actions:

* ``raise`` — raise the spec's error class at the point (default);
* ``stall`` — sleep a short, configurable time, then continue (used to
  trip wall-clock budgets at phase boundaries);
* ``hang`` — sleep for a *long* time (default one hour): simulates a
  wedged phase or worker; only a hard kill (the batch service's
  ``--task-timeout``) or mid-phase deadline preemption ends it;
* ``crash`` — ``os._exit`` the process immediately with exit code
  :data:`CRASH_EXIT_CODE`, bypassing ``finally``/``atexit`` — the
  closest pure-Python stand-in for a segfault or OOM kill;
* ``poison-result`` — no-op at the trip point; consulted by the batch
  worker, which then streams a malformed result object back to the
  parent so result validation and the retry path are exercised.

Filesystem actions (only valid on ``fs.*`` points; consulted by
:mod:`repro.utils.fsfaults`, never by :func:`trip`, and disarmed after
firing once):

* ``torn-write`` (``=k``) — the write *silently* persists only the
  first *k* bytes (default: half the payload) and reports success:
  what a crash between write and durability leaves on disk;
* ``short-write`` (``=k``) — persists the first *k* bytes, then raises
  ``OSError(EIO)`` so the caller knows the write was cut short;
* ``enospc`` — raise ``OSError(ENOSPC)`` before touching the file;
* ``eio`` — raise ``OSError(EIO)`` before touching the file;
* ``crash-after-write-before-rename`` — at a ``rename`` point:
  ``os._exit`` with :data:`CRASH_EXIT_CODE` *before* performing the
  rename, leaving a fully-written temp file orphaned next to the old
  entry — the classic atomic-replace crash window.

Text specs named in ``$REPRO_FAULTS`` / ``--inject-fault`` are
validated **at arm time**: an unknown trip-point name or a malformed
``point:action=value`` entry raises
:class:`~repro.utils.errors.InputError` naming the offending token,
instead of arming silently and never firing.  Programmatic
:func:`install`/:func:`inject` accept arbitrary point names so tests
can guard private seams.

When no fault is armed, :func:`trip` is a single truthiness test on an
empty dict — cheap enough to live on hot paths.

Usage::

    from repro.utils.faults import inject

    with inject("deps.bitset"):
        outcome = driver.compile_function(fn)   # exercises the
                                                # reference-engine rung

Specs are also parseable from text (CLI/env form)::

    REPRO_FAULTS="deps.bitset,sched.augmented:stall=0.2" repro compile f.src
    repro batch manifest.json --inject-fault service.worker:crash
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type

from repro.utils import errors as _errors
from repro.utils.errors import FaultInjectedError, InputError, ReproError

#: Environment variable scanned by :func:`install_from_env`.
ENV_VAR = "REPRO_FAULTS"

#: Filesystem fault actions (fire only at ``fs.*`` points, via the
#: :mod:`repro.utils.fsfaults` shim, one-shot).
FS_ACTIONS = (
    "torn-write",
    "short-write",
    "enospc",
    "eio",
    "crash-after-write-before-rename",
)

#: Valid fault actions.
ACTIONS = ("raise", "stall", "hang", "crash", "poison-result") + FS_ACTIONS

#: Actions accepting an ``=seconds`` argument in text specs.
_TIMED_ACTIONS = ("stall", "hang")

#: Fs actions accepting an ``=bytes`` argument in text specs.
_SIZED_ACTIONS = ("torn-write", "short-write")

#: Default stall duration in seconds when a spec says ``stall`` with no
#: explicit duration.
DEFAULT_STALL_SECONDS = 0.05

#: Default ``hang`` duration: long enough that only a kill or a
#: mid-phase deadline ends it, short enough that an orphaned process
#: eventually exits on its own.
DEFAULT_HANG_SECONDS = 3600.0

#: Process exit code used by the ``crash`` action (and therefore the
#: exit code the batch service sees from a crashed worker).
CRASH_EXIT_CODE = 70

#: Library-level trip points (see the module docstring table).
LIBRARY_POINTS = frozenset({
    "frontend.compile",
    "ir.parse",
    "ir.verify",
    "deps.bitset",
    "deps.vector",
    "core.pinter_color",
    "regalloc.chaitin",
    "regalloc.compact",
    "sched.augmented",
    "sched.compact",
    "service.worker",
    "service.server",
})

#: Driver phases with a ``phase.<name>`` point (kept in sync with
#: :attr:`repro.pipeline.driver.CompilationDriver.PHASES` plus the
#: ``strategy`` phase of :meth:`CompilationDriver.run_strategy`;
#: hardcoded here to keep this leaf module import-free).
_PHASE_NAMES = frozenset({
    "parse", "verify", "opt", "preschedule", "pig", "color",
    "assign", "schedule", "theorem1", "strategy",
})

#: Subsystems guarded by the filesystem fault shim
#: (:mod:`repro.utils.fsfaults`).
FS_SCOPES = ("cache", "ledger")

#: Filesystem operations the shim interposes on.
FS_OPS = ("open", "write", "fsync", "rename", "unlink")

#: ``fs.<scope>.<op>`` points, fully expanded.
FS_POINTS = frozenset(
    "fs.{}.{}".format(scope, op) for scope in FS_SCOPES for op in FS_OPS
)


def is_fs_point(point: str) -> bool:
    return point in FS_POINTS


def known_points() -> Tuple[str, ...]:
    """Every documented trip-point name, sorted (``phase.*`` expanded)."""
    return tuple(sorted(
        LIBRARY_POINTS
        | FS_POINTS
        | {"phase." + name for name in _PHASE_NAMES}
    ))


def is_known_point(point: str) -> bool:
    if point in LIBRARY_POINTS or point in FS_POINTS:
        return True
    prefix, _, rest = point.partition(".")
    return prefix == "phase" and rest in _PHASE_NAMES


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault.

    Attributes:
        point: The fault-point name the spec arms.
        action: One of :data:`ACTIONS` (see the module docstring).
        seconds: Sleep duration for ``"stall"`` / ``"hang"``.
        error: Exception class for ``"raise"``; must derive from
            :class:`ReproError` so guards can catch it.
        message: Override for the raised message.
        nbytes: Byte count for ``"torn-write"`` / ``"short-write"``
            (None = half the payload being written).
    """

    point: str
    action: str = "raise"
    seconds: float = DEFAULT_STALL_SECONDS
    error: Type[ReproError] = FaultInjectedError
    message: Optional[str] = None
    nbytes: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        """Primitive form, picklable across process boundaries (the
        batch service ships armed specs to its workers this way)."""
        return {
            "point": self.point,
            "action": self.action,
            "seconds": self.seconds,
            "error": self.error.__name__,
            "message": self.message,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        """Inverse of :meth:`as_dict`.  Unknown error-class names fall
        back to :class:`FaultInjectedError` (never silently drop the
        fault itself)."""
        error = getattr(_errors, str(data.get("error", "")), None)
        if not (isinstance(error, type) and issubclass(error, ReproError)):
            error = FaultInjectedError
        message = data.get("message")
        nbytes = data.get("nbytes")
        return cls(
            point=str(data["point"]),
            action=str(data.get("action", "raise")),
            seconds=float(data.get("seconds", DEFAULT_STALL_SECONDS)),
            error=error,
            message=None if message is None else str(message),
            nbytes=None if nbytes is None else int(nbytes),
        )


#: point name → armed spec.  Module-level so trip() is reachable from
#: every subsystem without threading a registry object through APIs.
_active: Dict[str, FaultSpec] = {}


def install(spec: FaultSpec) -> None:
    """Arm *spec*, replacing any spec already armed at its point.

    Raises:
        InputError: on an unknown action or a non-``ReproError`` error
            class (a guard could not catch it).
    """
    if spec.action not in ACTIONS:
        raise InputError(
            "unknown fault action {!r}; choose from {}".format(
                spec.action, ", ".join(ACTIONS)
            )
        )
    if not (isinstance(spec.error, type) and issubclass(spec.error, ReproError)):
        raise InputError(
            "fault error class must derive from ReproError, got {!r}".format(
                spec.error
            )
        )
    if spec.action in FS_ACTIONS and not spec.point.startswith("fs."):
        raise InputError(
            "fs fault action {!r} only fires at fs.* points, "
            "not {!r}".format(spec.action, spec.point)
        )
    _active[spec.point] = spec


def clear(point: Optional[str] = None) -> None:
    """Disarm *point*, or every armed fault when *point* is None."""
    if point is None:
        _active.clear()
    else:
        _active.pop(point, None)


def active_points() -> Tuple[str, ...]:
    """Names of currently armed fault points, sorted."""
    return tuple(sorted(_active))


def active_specs() -> Tuple[FaultSpec, ...]:
    """The currently armed specs, point-sorted (for shipping to batch
    workers)."""
    return tuple(_active[p] for p in sorted(_active))


def spec_at(point: str) -> Optional[FaultSpec]:
    """The spec armed at *point*, or None.  Lets subsystems with
    non-raising fault semantics (the batch worker's ``poison-result``)
    consult the registry directly."""
    return _active.get(point)


def trip(point: str) -> None:
    """Fire the fault armed at *point*, if any.

    ``raise`` faults raise their error class; ``stall``/``hang`` faults
    sleep and return; ``crash`` faults ``os._exit`` the process;
    ``poison-result`` faults return (they act at result-serialization
    time, not at the trip point).  A dormant point (the production
    case) costs one dict truthiness test.
    """
    if not _active:
        return
    spec = _active.get(point)
    if spec is None:
        return
    if spec.action in _TIMED_ACTIONS:
        time.sleep(spec.seconds)
        return
    if spec.action == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.action == "poison-result" or spec.action in FS_ACTIONS:
        # poison-result acts at result-serialization time; fs actions
        # act inside the fsfaults shim.  Neither fires at trip points.
        return
    raise spec.error(
        spec.message or "injected fault at {!r}".format(point)
    )


@contextmanager
def inject(
    point: str,
    action: str = "raise",
    seconds: float = DEFAULT_STALL_SECONDS,
    error: Type[ReproError] = FaultInjectedError,
    message: Optional[str] = None,
    nbytes: Optional[int] = None,
) -> Iterator[FaultSpec]:
    """Arm a fault for the duration of the ``with`` block.

    Nests correctly: arming a point that is already armed shadows the
    outer spec and restores it on exit.  (One-shot fs faults may have
    already disarmed themselves by the time the block exits — the
    restore tolerates that.)
    """
    spec = FaultSpec(
        point=point, action=action, seconds=seconds, error=error,
        message=message, nbytes=nbytes,
    )
    previous = _active.get(point)
    install(spec)
    try:
        yield spec
    finally:
        if previous is None:
            _active.pop(point, None)
        else:
            _active[point] = previous


def parse_fault_specs(text: str, known_only: bool = True) -> List[FaultSpec]:
    """Parse the CLI/env fault syntax.

    Comma-separated entries of ``point``, ``point:action``, or
    ``point:stall[=seconds]`` / ``point:hang[=seconds]``::

        "deps.bitset"                          -> raise at deps.bitset
        "core.pinter_color:raise,phase.opt"    -> two raise faults
        "sched.augmented:stall=0.25"           -> stall 250 ms
        "service.worker:crash"                 -> os._exit in the worker
        "fs.cache.write:torn-write=16"         -> 16-byte torn cache write
        "fs.ledger.fsync:enospc"               -> ledger fsync ENOSPC
        "fs.cache.rename:crash-after-write-before-rename"
                                               -> die in the swap window

    Entries are validated here — at arm time — so a typo can never arm
    a point that no :func:`trip` call will ever fire.

    Args:
        text: The spec string.
        known_only: Reject trip points absent from :func:`known_points`
            (the default; pass False for tests arming private seams).

    Raises:
        InputError: on empty points, unknown actions, a bad sleep
            duration, or (with *known_only*) an unknown trip-point
            name — the message names the offending token.
    """
    specs: List[FaultSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        point, _, action_text = chunk.partition(":")
        point = point.strip()
        if not point:
            raise InputError("fault spec {!r} has an empty point".format(chunk))
        # A bare fs point defaults to the generic I/O error; every
        # other bare point defaults to raising its guard error.
        default_action = "eio" if point.startswith("fs.") else "raise"
        action_text = action_text.strip() or default_action
        action, _, arg_text = action_text.partition("=")
        seconds = (
            DEFAULT_HANG_SECONDS if action == "hang" else DEFAULT_STALL_SECONDS
        )
        nbytes: Optional[int] = None
        if arg_text:
            if action in _TIMED_ACTIONS:
                try:
                    seconds = float(arg_text)
                except ValueError:
                    raise InputError(
                        "bad {} duration {!r} in fault spec {!r}".format(
                            action, arg_text, chunk
                        )
                    ) from None
                if seconds < 0:
                    raise InputError(
                        "{} duration must be >= 0, got {}".format(
                            action, seconds
                        )
                    )
            elif action in _SIZED_ACTIONS:
                try:
                    nbytes = int(arg_text)
                except ValueError:
                    raise InputError(
                        "bad {} byte count {!r} in fault spec {!r}".format(
                            action, arg_text, chunk
                        )
                    ) from None
                if nbytes < 0:
                    raise InputError(
                        "{} byte count must be >= 0, got {}".format(
                            action, nbytes
                        )
                    )
            else:
                raise InputError(
                    "fault action {!r} takes no '=' argument".format(action)
                )
        if action not in ACTIONS:
            raise InputError(
                "unknown fault action {!r} in spec {!r}; choose from {}".format(
                    action, chunk, ", ".join(ACTIONS)
                )
            )
        if known_only and not is_known_point(point):
            raise InputError(
                "unknown fault point {!r} in spec {!r}; known points: "
                "{}".format(point, chunk, ", ".join(known_points()))
            )
        if point.startswith("fs.") and action not in FS_ACTIONS:
            raise InputError(
                "fs point {!r} in spec {!r} only takes the fs actions: "
                "{}".format(point, chunk, ", ".join(FS_ACTIONS))
            )
        if action in FS_ACTIONS:
            if not point.startswith("fs."):
                raise InputError(
                    "fs fault action {!r} in spec {!r} only fires at "
                    "fs.* points".format(action, chunk)
                )
            op = point.rsplit(".", 1)[-1]
            if action in _SIZED_ACTIONS and op != "write":
                raise InputError(
                    "fault action {!r} in spec {!r} only applies to "
                    "fs.*.write points".format(action, chunk)
                )
            if action == "crash-after-write-before-rename" and \
                    op != "rename":
                raise InputError(
                    "fault action {!r} in spec {!r} only applies to "
                    "fs.*.rename points".format(action, chunk)
                )
        specs.append(FaultSpec(
            point=point, action=action, seconds=seconds, nbytes=nbytes,
        ))
    return specs


def install_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> List[FaultSpec]:
    """Arm every fault named in ``$REPRO_FAULTS`` (if set).

    Returns the installed specs (empty list when the variable is unset
    or blank), so callers can report what was armed.

    Raises:
        InputError: on a malformed or unknown-point entry (see
            :func:`parse_fault_specs`) — fail loudly at arm time rather
            than arming a fault that never fires.
    """
    text = (os.environ if environ is None else environ).get(ENV_VAR, "")
    if not text.strip():
        return []
    specs = parse_fault_specs(text)
    for spec in specs:
        install(spec)
    return specs
