"""Deterministic fault injection for exercising degradation paths.

The hardened driver (:mod:`repro.pipeline.driver`) promises a ladder of
fallbacks — bitset dependence kernel → reference engine, combined
Pinter coloring → Chaitin with spilling, augmented scheduler → plain
list scheduler — but fallback code that only runs when production code
breaks is fallback code that silently rots.  This module lets tests
(and operators, via ``REPRO_FAULTS`` or ``repro compile
--inject-fault``) force a named *fault point* to raise a
:class:`~repro.utils.errors.ReproError` or stall for a fixed time, so
every rung of the ladder is exercised deterministically.

Fault points are plain string names checked by :func:`trip` calls
sprinkled at the entry of the guarded subsystems:

========================  ====================================================
point                     location
========================  ====================================================
``frontend.compile``      :func:`repro.frontend.lower.compile_source`
``ir.parse``              :func:`repro.ir.parser.parse_function`
``ir.verify``             :func:`repro.ir.verifier.verify_function`
``deps.bitset``           :meth:`repro.deps.bitset.DependenceBitKernel.build`
``core.pinter_color``     :func:`repro.core.coloring.pinter_color`
``regalloc.chaitin``      :func:`repro.regalloc.chaitin.chaitin_color`
``sched.augmented``       :func:`repro.sched.augmented.augmented_schedule`
``phase.<name>``          start of each driver phase (see
                          :attr:`repro.pipeline.driver.CompilationDriver.PHASES`)
========================  ====================================================

When no fault is armed, :func:`trip` is a single truthiness test on an
empty dict — cheap enough to live on hot paths.

Usage::

    from repro.utils.faults import inject

    with inject("deps.bitset"):
        outcome = driver.compile_function(fn)   # exercises the
                                                # reference-engine rung

Specs are also parseable from text (CLI/env form)::

    REPRO_FAULTS="deps.bitset,sched.augmented:stall=0.2" repro compile f.src
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type

from repro.utils.errors import FaultInjectedError, InputError, ReproError

#: Environment variable scanned by :func:`install_from_env`.
ENV_VAR = "REPRO_FAULTS"

#: Valid fault actions.
ACTIONS = ("raise", "stall")

#: Default stall duration in seconds when a spec says ``stall`` with no
#: explicit duration.
DEFAULT_STALL_SECONDS = 0.05


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault.

    Attributes:
        point: The fault-point name the spec arms.
        action: ``"raise"`` (raise *error* at the point) or ``"stall"``
            (sleep *seconds*, then continue — used to trip wall-clock
            budgets).
        seconds: Stall duration for ``"stall"``.
        error: Exception class for ``"raise"``; must derive from
            :class:`ReproError` so guards can catch it.
        message: Override for the raised message.
    """

    point: str
    action: str = "raise"
    seconds: float = DEFAULT_STALL_SECONDS
    error: Type[ReproError] = FaultInjectedError
    message: Optional[str] = None


#: point name → armed spec.  Module-level so trip() is reachable from
#: every subsystem without threading a registry object through APIs.
_active: Dict[str, FaultSpec] = {}


def install(spec: FaultSpec) -> None:
    """Arm *spec*, replacing any spec already armed at its point.

    Raises:
        InputError: on an unknown action or a non-``ReproError`` error
            class (a guard could not catch it).
    """
    if spec.action not in ACTIONS:
        raise InputError(
            "unknown fault action {!r}; choose from {}".format(
                spec.action, ", ".join(ACTIONS)
            )
        )
    if not (isinstance(spec.error, type) and issubclass(spec.error, ReproError)):
        raise InputError(
            "fault error class must derive from ReproError, got {!r}".format(
                spec.error
            )
        )
    _active[spec.point] = spec


def clear(point: Optional[str] = None) -> None:
    """Disarm *point*, or every armed fault when *point* is None."""
    if point is None:
        _active.clear()
    else:
        _active.pop(point, None)


def active_points() -> Tuple[str, ...]:
    """Names of currently armed fault points, sorted."""
    return tuple(sorted(_active))


def trip(point: str) -> None:
    """Fire the fault armed at *point*, if any.

    ``raise`` faults raise their error class; ``stall`` faults sleep
    and return.  A dormant point (the production case) costs one dict
    truthiness test.
    """
    if not _active:
        return
    spec = _active.get(point)
    if spec is None:
        return
    if spec.action == "stall":
        time.sleep(spec.seconds)
        return
    raise spec.error(
        spec.message or "injected fault at {!r}".format(point)
    )


@contextmanager
def inject(
    point: str,
    action: str = "raise",
    seconds: float = DEFAULT_STALL_SECONDS,
    error: Type[ReproError] = FaultInjectedError,
    message: Optional[str] = None,
) -> Iterator[FaultSpec]:
    """Arm a fault for the duration of the ``with`` block.

    Nests correctly: arming a point that is already armed shadows the
    outer spec and restores it on exit.
    """
    spec = FaultSpec(
        point=point, action=action, seconds=seconds, error=error,
        message=message,
    )
    previous = _active.get(point)
    install(spec)
    try:
        yield spec
    finally:
        if previous is None:
            _active.pop(point, None)
        else:
            _active[point] = previous


def parse_fault_specs(text: str) -> List[FaultSpec]:
    """Parse the CLI/env fault syntax.

    Comma-separated entries of ``point``, ``point:raise``, or
    ``point:stall[=seconds]``::

        "deps.bitset"                          -> raise at deps.bitset
        "core.pinter_color:raise,phase.opt"    -> two raise faults
        "sched.augmented:stall=0.25"           -> stall 250 ms

    Raises:
        InputError: on empty points, unknown actions, or a bad stall
            duration.
    """
    specs: List[FaultSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        point, _, action_text = chunk.partition(":")
        point = point.strip()
        if not point:
            raise InputError("fault spec {!r} has an empty point".format(chunk))
        action_text = action_text.strip() or "raise"
        action, _, seconds_text = action_text.partition("=")
        seconds = DEFAULT_STALL_SECONDS
        if seconds_text:
            if action != "stall":
                raise InputError(
                    "fault action {!r} takes no '=' argument".format(action)
                )
            try:
                seconds = float(seconds_text)
            except ValueError:
                raise InputError(
                    "bad stall duration {!r} in fault spec {!r}".format(
                        seconds_text, chunk
                    )
                ) from None
            if seconds < 0:
                raise InputError(
                    "stall duration must be >= 0, got {}".format(seconds)
                )
        if action not in ACTIONS:
            raise InputError(
                "unknown fault action {!r} in spec {!r}; choose from {}".format(
                    action, chunk, ", ".join(ACTIONS)
                )
            )
        specs.append(FaultSpec(point=point, action=action, seconds=seconds))
    return specs


def install_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> List[FaultSpec]:
    """Arm every fault named in ``$REPRO_FAULTS`` (if set).

    Returns the installed specs (empty list when the variable is unset
    or blank), so callers can report what was armed.
    """
    text = (os.environ if environ is None else environ).get(ENV_VAR, "")
    if not text.strip():
        return []
    specs = parse_fault_specs(text)
    for spec in specs:
        install(spec)
    return specs
