"""Filesystem fault-injection shim for the durable state stores.

The compile cache's disk tier (:mod:`repro.cache.store`) and the run
ledger (:mod:`repro.service.checkpoint`) promise crash consistency:
torn writes quarantine instead of poisoning, a crash in the
write-temp/rename window leaves either the old entry or the new one,
and a full or failing disk degrades service instead of corrupting
state.  Promises like that rot unless they are exercised, so both
stores route **every** open/write/fsync/rename/unlink through this
module, which consults the process-wide fault registry
(:mod:`repro.utils.faults`) at ``fs.<scope>.<op>`` points before
touching the real filesystem:

========  ============================================================
scope     store
========  ============================================================
cache     the compile cache disk tier (``repro.cache.store``)
ledger    the run-ledger journal (``repro.service.checkpoint``)
========  ============================================================

with *op* one of ``open``, ``write``, ``fsync``, ``rename``,
``unlink``.  The armable actions (see :data:`repro.utils.faults.
FS_ACTIONS`) model the failures real filesystems produce:

* ``torn-write=k`` — persist only the first *k* bytes and **report
  success** (what power loss between write and durability leaves);
* ``short-write=k`` — persist *k* bytes, then raise ``OSError(EIO)``;
* ``enospc`` / ``eio`` — raise the matching ``OSError`` untouched;
* ``crash-after-write-before-rename`` — ``os._exit`` in the atomic-
  replace window: temp file fully written, destination not yet
  swapped.

Every fs fault is **one-shot**: it disarms itself when it fires, so
the very next retry/recovery attempt sees a healthy filesystem — which
is exactly the scenario the recovery sweeps must survive.  Arm via the
usual channels (``--inject-fault fs.cache.write:torn-write=16``,
``$REPRO_FAULTS``, or :func:`repro.utils.faults.inject` in tests).

When nothing is armed every shim call costs one dict lookup on the
(usually empty) fault registry before delegating to the real
``os``/``open`` call.
"""

from __future__ import annotations

import builtins
import errno
import os
from typing import IO, Optional, Union

from repro.utils import faults

#: Re-exported for callers that want to enumerate the surface.
SCOPES = faults.FS_SCOPES
OPS = faults.FS_OPS

__all__ = [
    "GuardedFile",
    "OPS",
    "SCOPES",
    "consume",
    "fsync",
    "open",
    "point_name",
    "replace",
    "sync_directory",
    "unlink",
    "wrap",
]


def point_name(scope: str, op: str) -> str:
    """The fault-point name the shim consults for (*scope*, *op*)."""
    return "fs.{}.{}".format(scope, op)


def consume(scope: str, op: str) -> Optional[faults.FaultSpec]:
    """Pop the fs fault armed at ``fs.<scope>.<op>``, if any.

    Fs faults are one-shot: consuming disarms.  Non-fs actions armed
    at an fs point (possible only via programmatic :func:`faults.
    install`) are ignored rather than fired here — the shim's contract
    is the fs action set only.
    """
    point = point_name(scope, op)
    spec = faults.spec_at(point)
    if spec is None or spec.action not in faults.FS_ACTIONS:
        return None
    faults.clear(point)
    return spec


def _raise_errno(spec: faults.FaultSpec, path: object) -> None:
    if spec.action == "enospc":
        raise OSError(
            errno.ENOSPC,
            "injected ENOSPC at {!r}".format(spec.point),
            str(path),
        )
    raise OSError(
        errno.EIO, "injected EIO at {!r}".format(spec.point), str(path)
    )


def _torn_length(spec: faults.FaultSpec, total: int) -> int:
    if spec.nbytes is None:
        return total // 2
    return max(0, min(spec.nbytes, total))


class GuardedFile:
    """A file-object proxy whose :meth:`write` consults the
    ``fs.<scope>.write`` fault point.

    Everything else (flush, close, fileno, context management,
    iteration) delegates to the wrapped handle untouched.
    """

    def __init__(self, handle: IO, scope: str) -> None:
        self._fh = handle
        self._scope = scope

    def write(self, data):
        spec = consume(self._scope, "write")
        if spec is None:
            return self._fh.write(data)
        if spec.action == "torn-write":
            # The crash-shaped lie: part of the payload lands, the
            # caller is told everything did.  Flush so the torn bytes
            # really reach the OS before whatever happens next.
            self._fh.write(data[:_torn_length(spec, len(data))])
            self._fh.flush()
            return len(data)
        if spec.action == "short-write":
            self._fh.write(data[:_torn_length(spec, len(data))])
            self._fh.flush()
            raise OSError(
                errno.EIO,
                "injected short write at {!r}".format(spec.point),
            )
        _raise_errno(spec, getattr(self._fh, "name", "<file>"))

    # -- transparent delegation ----------------------------------------

    def __getattr__(self, name):
        return getattr(self._fh, name)

    def __iter__(self):
        return iter(self._fh)

    def __enter__(self) -> "GuardedFile":
        return self

    def __exit__(self, *exc) -> None:
        self._fh.close()


def wrap(handle: IO, scope: str) -> GuardedFile:
    """Interpose on writes through an already-open *handle* (e.g. one
    obtained from ``os.fdopen`` after ``tempfile.mkstemp``)."""
    return GuardedFile(handle, scope)


def open(  # noqa: A001 - deliberate os.open-style shadowing
    path: str, mode: str = "r", scope: str = "cache", **kwargs
) -> Union[IO, GuardedFile]:
    """``builtins.open`` behind the ``fs.<scope>.open`` point.

    Handles opened for writing/appending come back wrapped in
    :class:`GuardedFile` so their writes hit the ``write`` point too.
    """
    spec = consume(scope, "open")
    if spec is not None:
        _raise_errno(spec, path)
    handle = builtins.open(path, mode, **kwargs)
    if any(flag in mode for flag in ("w", "a", "+", "x")):
        return GuardedFile(handle, scope)
    return handle


def fsync(target: Union[int, IO, GuardedFile], scope: str) -> None:
    """``os.fsync`` behind the ``fs.<scope>.fsync`` point.  *target*
    is a file descriptor or an object with ``fileno()``."""
    spec = consume(scope, "fsync")
    if spec is not None:
        _raise_errno(spec, getattr(target, "name", target))
    fd = target if isinstance(target, int) else target.fileno()
    os.fsync(fd)


def replace(src: str, dst: str, scope: str) -> None:
    """``os.replace`` behind the ``fs.<scope>.rename`` point.

    ``crash-after-write-before-rename`` fires here: the process dies
    with the temp file fully written and the destination untouched —
    the recovery sweep must classify that orphan.
    """
    spec = consume(scope, "rename")
    if spec is not None:
        if spec.action == "crash-after-write-before-rename":
            os._exit(faults.CRASH_EXIT_CODE)
        _raise_errno(spec, src)
    os.replace(src, dst)


def unlink(path: str, scope: str) -> None:
    """``os.unlink`` behind the ``fs.<scope>.unlink`` point."""
    spec = consume(scope, "unlink")
    if spec is not None:
        _raise_errno(spec, path)
    os.unlink(path)


def sync_directory(path: str, scope: str) -> None:
    """Fsync the directory entry at *path* (making renames/creations
    durable), behind the same ``fs.<scope>.fsync`` point.

    Injected faults propagate; *real* platform refusals (filesystems
    without directory fsync) are swallowed, matching the stores'
    best-effort stance on exotic hosts.
    """
    spec = consume(scope, "fsync")
    if spec is not None:
        _raise_errno(spec, path)
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:  # pragma: no cover - exotic platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)
