"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: undefined operands, bad CFG edges, parse failures."""


class AllocationError(ReproError):
    """Register allocation failed (e.g. not enough registers and spilling
    was disabled, or an assignment violates an interference edge)."""


class SchedulingError(ReproError):
    """Instruction scheduling failed (e.g. cyclic schedule graph, or a
    resource request the machine model cannot satisfy)."""


class InputError(ReproError, ValueError):
    """Invalid user-supplied input: unknown strategy/machine/workload
    names, malformed numeric options, bad fault specs.  Also a
    ``ValueError`` so pre-existing callers that caught ``ValueError``
    keep working."""


class BudgetExceededError(ReproError):
    """A compilation phase exceeded a configured resource budget
    (instruction-count limit or wall-clock deadline)."""


class DivergenceError(ReproError):
    """Paranoid cross-check failure: the bitset and reference
    dependence engines produced different parallelizable interference
    graphs for the same input."""


class FaultInjectedError(ReproError):
    """Raised by an armed fault-injection point
    (:mod:`repro.utils.faults`); never raised in production runs."""
