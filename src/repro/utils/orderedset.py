"""A deterministic insertion-ordered set.

Compiler passes must be reproducible run to run: iteration order of
work-lists and node sets feeds directly into tie-breaking decisions in
coloring and scheduling.  Python's built-in ``set`` iterates in hash
order, which for most of our node types is insertion-order-stable in
CPython but not guaranteed by the language.  ``OrderedSet`` makes the
determinism explicit and cheap (it is a thin wrapper over ``dict``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet:
    """A set that iterates in insertion order.

    Supports the common set operations used by the analyses:
    membership, add/discard, union/intersection/difference (all of
    which preserve the order of the left operand), and equality (which,
    like ``set``, ignores order).
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._items: dict = dict.fromkeys(items)

    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        del self._items[item]

    def pop_first(self) -> T:
        """Remove and return the oldest item (FIFO)."""
        item = next(iter(self._items))
        del self._items[item]
        return item

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def union(self, other: Iterable[T]) -> "OrderedSet":
        result = OrderedSet(self._items)
        result.update(other)
        return result

    def intersection(self, other: Iterable[T]) -> "OrderedSet":
        other_set = set(other)
        return OrderedSet(item for item in self._items if item in other_set)

    def difference(self, other: Iterable[T]) -> "OrderedSet":
        other_set = set(other)
        return OrderedSet(item for item in self._items if item not in other_set)

    def copy(self) -> "OrderedSet":
        return OrderedSet(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    #: Mutable sets are unhashable, like the built-in ``set``.
    __hash__ = None  # type: ignore[assignment]

    def __or__(self, other: "OrderedSet") -> "OrderedSet":
        return self.union(other)

    def __and__(self, other: "OrderedSet") -> "OrderedSet":
        return self.intersection(other)

    def __sub__(self, other: "OrderedSet") -> "OrderedSet":
        return self.difference(other)

    def __repr__(self) -> str:
        return "OrderedSet([{}])".format(", ".join(repr(item) for item in self._items))
