"""Small shared utilities: ordered sets, bitset helpers, errors."""

from repro.utils.bits import bits_above, iter_bits, mask_of, popcount, select
from repro.utils.errors import ReproError, IRError, AllocationError, SchedulingError
from repro.utils.orderedset import OrderedSet

__all__ = [
    "ReproError",
    "IRError",
    "AllocationError",
    "SchedulingError",
    "OrderedSet",
    "bits_above",
    "iter_bits",
    "mask_of",
    "popcount",
    "select",
]
