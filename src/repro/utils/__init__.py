"""Small shared utilities: ordered sets, bitset helpers, errors, and
deterministic fault injection."""

from repro.utils.bits import bits_above, iter_bits, mask_of, popcount, select
from repro.utils.digest import input_digest
from repro.utils.errors import (
    AllocationError,
    BudgetExceededError,
    DivergenceError,
    FaultInjectedError,
    InputError,
    IRError,
    ReproError,
    SchedulingError,
)
from repro.utils.faults import (
    FaultSpec,
    clear as clear_faults,
    inject,
    install_from_env,
    parse_fault_specs,
    trip,
)
from repro.utils.orderedset import OrderedSet

__all__ = [
    "AllocationError",
    "BudgetExceededError",
    "DivergenceError",
    "FaultInjectedError",
    "FaultSpec",
    "IRError",
    "InputError",
    "OrderedSet",
    "ReproError",
    "SchedulingError",
    "bits_above",
    "clear_faults",
    "inject",
    "input_digest",
    "install_from_env",
    "iter_bits",
    "mask_of",
    "parse_fault_specs",
    "popcount",
    "select",
    "trip",
]
