"""Small shared utilities: ordered sets, graph helpers, errors."""

from repro.utils.errors import ReproError, IRError, AllocationError, SchedulingError
from repro.utils.orderedset import OrderedSet

__all__ = [
    "ReproError",
    "IRError",
    "AllocationError",
    "SchedulingError",
    "OrderedSet",
]
