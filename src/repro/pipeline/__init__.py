"""End-to-end pipelines: phase-ordering strategies, the hardened
compilation driver, and the post-allocation false-dependence
verifier."""

from repro.pipeline.driver import (
    CompilationDriver,
    CompileReport,
    Diagnostic,
    DriverConfig,
    DriverResult,
    EXIT_INPUT,
    EXIT_INTERNAL,
    EXIT_OK,
    PhaseGuard,
)
from repro.pipeline.strategies import (
    AllocateThenSchedule,
    CombinedPinter,
    GoodmanHsuIPS,
    ScheduleThenAllocate,
    Strategy,
    StrategyResult,
    default_strategies,
    extended_strategies,
    run_all_strategies,
)
from repro.pipeline.verify import (
    FalseDependenceViolation,
    assert_no_false_dependences,
    count_false_dependences,
    find_false_dependences,
)

__all__ = [
    "AllocateThenSchedule",
    "CombinedPinter",
    "CompilationDriver",
    "CompileReport",
    "Diagnostic",
    "DriverConfig",
    "DriverResult",
    "EXIT_INPUT",
    "EXIT_INTERNAL",
    "EXIT_OK",
    "FalseDependenceViolation",
    "PhaseGuard",
    "GoodmanHsuIPS",
    "ScheduleThenAllocate",
    "Strategy",
    "StrategyResult",
    "assert_no_false_dependences",
    "count_false_dependences",
    "default_strategies",
    "extended_strategies",
    "find_false_dependences",
    "run_all_strategies",
]
