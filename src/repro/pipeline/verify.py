"""Post-allocation false-dependence detection (the Lemma 1 test).

"Let (u, v) be a data dependence edge in the scheduling graph generated
after register allocation; the edge (u, v) is a false dependence edge
iff u and v can be scheduled together according to the schedule graph
for the code when presented with symbolic registers" — and Lemma 1
shows that test is exactly membership in E_f.

:func:`find_false_dependences` compares the allocated program (same
instruction uids) against the symbolic original region by region and
reports every data dependence the allocation *introduced* that lands in
E_f — i.e. every co-issue opportunity destroyed by register reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.regions import Region, schedule_regions
from repro.deps.datadeps import DependenceKind, register_dependences
from repro.deps.false_dependence import false_dependence_graph
from repro.deps.schedule_graph import region_schedule_graph
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.machine.model import MachineDescription
from repro.utils.errors import IRError


@dataclass(frozen=True)
class FalseDependenceViolation:
    """One false dependence introduced by register allocation.

    Attributes:
        source / target: The allocated instructions (carrying physical
            registers) between which the spurious edge runs.
        kind: The dependence kind register reuse created (anti, output,
            or an accidental flow through a reused register).
        region_index: The scheduling region the pair belongs to.
    """

    source: Instruction
    target: Instruction
    kind: DependenceKind
    region_index: int

    def __str__(self) -> str:
        return "false {} dependence: {}  ->  {}".format(
            self.kind.value, self.source, self.target
        )


def _symbolic_dependence_pairs(
    instructions: Sequence[Instruction],
) -> set:
    """uid pairs with a *real* (symbolic-register or memory) dependence."""
    pairs = set()
    from repro.deps.datadeps import all_dependences

    for dep in all_dependences(instructions):
        pairs.add((dep.source.uid, dep.target.uid))
    return pairs


def find_false_dependences(
    original: Function,
    allocated: Function,
    machine: MachineDescription,
    use_regions: bool = True,
    include_anti: bool = False,
    engine: str = "bitset",
    region_cache=None,
    config_fingerprint: str = "",
) -> List[FalseDependenceViolation]:
    """All false dependences the allocation introduced.

    A false dependence is an introduced edge that destroys a co-issue
    opportunity — "(u, v) is a false dependence edge iff u and v can be
    scheduled together according to the schedule graph for the code
    when presented with symbolic registers".  Introduced *anti* edges
    are excluded by default: the hardware reads operands before
    writing results, so an anti edge still permits same-cycle issue
    (this is why Theorem 1's proof can show "no false anti dependence
    is generated" under the open-interval reuse convention).  Pass
    ``include_anti=True`` for the stricter reordering-loss analysis.

    Args:
        original: The symbolic-register function.
        allocated: Its rewrite with physical registers — instruction
            uids must match (``apply_assignment`` preserves them).
        machine: Machine model (shapes E_t, hence E_f).
        use_regions: Evaluate per scheduling region (the global form);
            otherwise per block.
        include_anti: Also report introduced anti edges landing in E_f.
        engine: ``"bitset"`` (default) derives E_f via the word-parallel
            kernel; ``"vector"`` uses the packed-uint64 kernel
            (:mod:`repro.deps.vector`); ``"reference"`` uses the
            retained set-based pipeline
            — the hardened driver passes the engine its PIG phase
            settled on so a degraded compile stays off the failed
            kernel.
        region_cache: Optional region-kernel
            :class:`~repro.cache.store.CompileCache`.  The check runs
            the same per-region kernels the PIG phase does over the
            same symbolic function, so a cache the driver already
            populated serves every region here for free.  The caller
            owns the honesty gates (primary engine only, no armed
            faults) — pass None otherwise.
        config_fingerprint: ``DriverConfig.fingerprint()`` component
            of the region keys (only read when *region_cache* is set).

    Raises:
        IRError: when the two functions' instructions do not correspond.
    """
    if engine not in ("vector", "bitset", "reference"):
        raise IRError("unknown dependence engine {!r}".format(engine))
    allocated_by_uid: Dict[int, Instruction] = {
        instr.uid: instr for instr in allocated.instructions()
    }
    original_by_uid: Dict[int, Instruction] = {
        instr.uid: instr for instr in original.instructions()
    }
    if set(allocated_by_uid) != set(original_by_uid):
        raise IRError(
            "allocated function does not mirror the original "
            "(instruction uids differ)"
        )

    if use_regions:
        regions = schedule_regions(original)
    else:
        regions = [
            Region(blocks=(name,), index=i)
            for i, name in enumerate(original.block_names())
        ]

    # One whole-function dependence graph serves every multi-block
    # region's transit pass (lazy: all-single-block splits skip it).
    fdep: List[object] = [None]

    def _dependence_graph():
        if fdep[0] is None:
            from repro.deps.global_deps import (
                shared_function_dependence_graph,
            )

            fdep[0] = shared_function_dependence_graph(original)
        return fdep[0]

    violations: List[FalseDependenceViolation] = []
    for region in regions:
        symbolic_instrs: List[Instruction] = []
        for name in region.blocks:
            symbolic_instrs.extend(original.block(name).instructions)
        if not symbolic_instrs:
            continue
        if engine == "reference":
            from repro.deps.reference import reference_false_dependence_graph

            sg = region_schedule_graph(
                original, region.blocks, machine=machine,
                dependence_graph=(
                    _dependence_graph() if len(region.blocks) > 1 else None
                ),
            )
            fdg = reference_false_dependence_graph(sg, machine)
        else:
            # The IR-keyed path: a warm region cache replays the
            # kernel without rebuilding the schedule graph; with no
            # cache it degrades to a plain build that still shares
            # the function dependence graph.
            from repro.pipeline.incremental import cached_region_fdg_ir

            fdg = cached_region_fdg_ir(
                original, region, machine, engine, region_cache,
                config_fingerprint=config_fingerprint,
                dependence_graph=_dependence_graph,
            )

        allocated_instrs = [allocated_by_uid[i.uid] for i in symbolic_instrs]
        real_pairs = _symbolic_dependence_pairs(symbolic_instrs)
        for dep in register_dependences(allocated_instrs):
            if dep.kind is DependenceKind.ANTI and not include_anti:
                continue  # anti edges permit same-cycle issue
            if (dep.source.uid, dep.target.uid) in real_pairs:
                continue  # the dependence existed before allocation
            source_sym = original_by_uid[dep.source.uid]
            target_sym = original_by_uid[dep.target.uid]
            if fdg.has_false_edge(source_sym, target_sym):
                violations.append(
                    FalseDependenceViolation(
                        source=dep.source,
                        target=dep.target,
                        kind=dep.kind,
                        region_index=region.index,
                    )
                )
    return violations


def count_false_dependences(
    original: Function,
    allocated: Function,
    machine: MachineDescription,
    use_regions: bool = True,
) -> int:
    """Convenience: just the violation count."""
    return len(
        find_false_dependences(original, allocated, machine, use_regions)
    )


def assert_no_false_dependences(
    original: Function,
    allocated: Function,
    machine: MachineDescription,
) -> None:
    """Raise :class:`IRError` listing any false dependences found —
    the executable form of Theorem 1's guarantee."""
    violations = find_false_dependences(original, allocated, machine)
    if violations:
        raise IRError(
            "allocation introduced {} false dependence(s): {}".format(
                len(violations),
                "; ".join(str(v) for v in violations[:5]),
            )
        )
